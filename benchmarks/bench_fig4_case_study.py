"""Figure 4 — case study: per-triple scores and neighborhoods.

Mirrors the paper's two case studies: for a positive target triple with an
unseen relation, print (i) its one-hop and two-hop relational neighborhoods
and (ii) the scores assigned by TACT-base, RMPI-base, their schema-enhanced
versions (NELL case) and RMPI-TA (FB case).  Expected shape: RMPI's
multi-hop aggregation scores the unseen-relation positives higher than
TACT-base's one-hop correlation; schema enhancement raises both.
"""

import numpy as np

from repro.experiments import (
    bench_settings,
    format_table,
    make_model,
    schema_vectors_for,
)
from repro.kg import build_full_benchmark
from repro.subgraph import (
    build_relational_graph,
    extract_enclosing_subgraph,
    incoming_hops,
)
from repro.train import train_model


def neighborhood_relations(graph, triple, num_hops=2):
    """Relations at hop 1 and hop 2 of the target in relation view."""
    sub = extract_enclosing_subgraph(graph, triple, num_hops)
    rg = build_relational_graph(sub)
    hops = incoming_hops(rg, num_hops)
    one_hop = sorted({int(rg.node_relations[n]) for n, h in hops.items() if h == 1})
    two_hop = sorted({int(rg.node_relations[n]) for n, h in hops.items() if h == 2})
    return one_hop, two_hop


def pick_case_triple(bench):
    """A semi-test positive with an unseen relation and non-empty subgraph."""
    unseen = bench.unseen_relations()
    for triple in bench.semi_test_triples:
        if triple[1] not in unseen:
            continue
        sub = extract_enclosing_subgraph(bench.semi_test_graph, triple, 2)
        if not sub.is_empty:
            return triple
    return bench.semi_test_triples[0]


def test_fig4_case_study(benchmark, emit):
    settings = bench_settings()
    training = settings.training_config()

    def run():
        blocks = []
        for family, i, j, methods in (
            (
                "NELL-995",
                4,
                3,
                (
                    ("TACT-base", False),
                    ("RMPI-base", False),
                    ("TACT-base", True),
                    ("RMPI-base", True),
                ),
            ),
            (
                "FB15k-237",
                1,
                4,
                (("TACT-base", False), ("RMPI-base", False), ("RMPI-TA", False)),
            ),
        ):
            bench = build_full_benchmark(
                family, i, j, scale=settings.scale, seed=settings.seed
            )
            triple = pick_case_triple(bench)
            one_hop, two_hop = neighborhood_relations(bench.semi_test_graph, triple)
            rows = []
            for method, use_schema in methods:
                vectors = (
                    schema_vectors_for(bench.ontology, seed=settings.seed)
                    if use_schema
                    else None
                )
                model = make_model(
                    method,
                    bench.num_relations,
                    seed=settings.seed,
                    schema_vectors=vectors,
                )
                train_model(
                    model, bench.train_graph, bench.train_triples, config=training
                )
                score = float(
                    model.score_triples(bench.semi_test_graph, [triple])[0]
                )
                label = method + ("+schema" if use_schema else "")
                rows.append([label, score])
            seen = bench.seen_relations
            mark = lambda rels: ", ".join(
                f"r{r}" + ("*" if r not in seen else "") for r in rels
            )
            header = (
                f"{bench.name}: target triple ({triple[0]}, r{triple[1]}"
                f"{'*' if triple[1] not in seen else ''}, {triple[2]})\n"
                f"  1-hop neighbor relations: {mark(one_hop) or '(none)'}\n"
                f"  2-hop neighbor relations: {mark(two_hop) or '(none)'}\n"
                f"  (* = unseen relation)"
            )
            blocks.append(
                header
                + "\n"
                + format_table(["model", "predicted score"], rows, float_format="{:.4f}")
            )
        return "\n\n".join(blocks)

    emit("fig4_case_study", benchmark.pedantic(run, rounds=1, iterations=1))
