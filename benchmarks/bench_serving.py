"""Serving-layer microbenchmark: sequential vs micro-batched throughput.

Measures steady-state online query throughput (queries/sec) through the
:class:`~repro.serve.scheduler.MicroBatchScheduler` on a generated KG:

* **sequential** — ``max_batch_size=1``: every request becomes its own
  model call (the no-coalescing baseline);
* **micro-batched** — requests coalesce into fused batched
  ``score_triples`` calls (the serving default).

Both arms share one warmed :class:`InferenceSession` (score cache
disabled, sample caches warm — the pinned-graph steady state a serving
process runs in), so the measured difference is pure scoring-path cost:
per-call overhead plus per-sample vs fused disjoint-union forwards.
The gate asserts micro-batching reaches ``REPRO_BENCH_MIN_SERVING_SPEEDUP``
(default 2) times the sequential throughput.
"""

import os

import numpy as np

from repro.benchmarks.timing import timed
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings, format_table
from repro.kg import build_partial_benchmark, ranking_candidates
from repro.serve import InferenceSession, MicroBatchScheduler, ModelRegistry
from repro.utils.seeding import seeded_rng


def _serving_workload(bench, num_queries=4, num_negatives=29):
    """Online ranking traffic: per query, the truth + corruptions of one
    side — the candidate lists a /topk endpoint scores."""
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool = sorted(graph.triples.entities())
    queries = list(bench.test_triples)[:num_queries] or list(bench.train_triples)[:num_queries]
    workload = []
    for i, query in enumerate(queries):
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng,
                num_negatives=num_negatives,
                candidate_entities=pool,
                corrupt_head=bool(i % 2),
            )
        )
    return graph, workload


def _drive(session, workload, max_batch_size, max_wait_ms):
    """One timed pass: submit every triple as its own request, wait for all."""
    scheduler = MicroBatchScheduler(
        session, max_batch_size=max_batch_size, max_wait_ms=max_wait_ms
    )

    def drive():
        futures = [scheduler.submit([triple]) for triple in workload]
        for future in futures:
            future.result(timeout=120)

    with scheduler:
        elapsed, _ = timed(drive, "bench.serving.drive")
    return elapsed, scheduler.stats


def test_perf_micro_batched_serving_throughput(emit):
    settings = bench_settings()
    bench = build_partial_benchmark("FB15k-237", 2, scale=settings.scale, seed=settings.seed)
    graph, workload = _serving_workload(bench)

    registry = ModelRegistry()
    registry.register(
        "rmpi",
        RMPI(bench.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16, dropout=0.0)),
    )
    # Score cache off: measure the scoring path, not repeated-query caching.
    session = InferenceSession(registry, graph, cache_size=0)
    session.score(workload)  # steady state: samples prepared, indices warm

    repeats = int(os.environ.get("REPRO_BENCH_SERVING_REPEATS", "3"))
    best_seq, best_batched = float("inf"), float("inf")
    seq_stats = batched_stats = None
    for _ in range(repeats):
        elapsed, stats = _drive(session, workload, max_batch_size=1, max_wait_ms=0.0)
        if elapsed < best_seq:
            best_seq, seq_stats = elapsed, stats
        elapsed, stats = _drive(session, workload, max_batch_size=64, max_wait_ms=5.0)
        if elapsed < best_batched:
            best_batched, batched_stats = elapsed, stats

    queries = len(workload)
    qps_seq = queries / best_seq
    qps_batched = queries / best_batched
    speedup = qps_batched / qps_seq
    table = format_table(
        ["mode", "queries/s", "model calls", "largest batch"],
        [
            ["sequential", f"{qps_seq:.0f}", seq_stats.dispatches, seq_stats.largest_batch_triples],
            ["micro-batched", f"{qps_batched:.0f}", batched_stats.dispatches, batched_stats.largest_batch_triples],
            ["speedup", f"{speedup:.2f}x", "", ""],
        ],
        title=f"serving throughput ({queries} queries, fused scoring)",
    )
    emit("serving_throughput", table)

    assert batched_stats.dispatches < seq_stats.dispatches, "no coalescing happened"
    min_speedup = float(os.environ.get("REPRO_BENCH_MIN_SERVING_SPEEDUP", "2"))
    assert speedup >= min_speedup, (
        f"micro-batched serving {qps_batched:.0f} q/s is only {speedup:.2f}x "
        f"sequential {qps_seq:.0f} q/s (floor {min_speedup}x)"
    )
