"""Shared fixtures for the benchmark suite.

Each ``bench_*.py`` file regenerates one table or figure of the paper.
Result tables are printed through ``capsys.disabled()`` so they appear in
``pytest benchmarks/ --benchmark-only`` output, and are also written under
``benchmarks/results/`` for the record.
"""

from __future__ import annotations

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def emit(capsys):
    """Print a rendered table to the live terminal and archive it."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as fh:
            fh.write(text + "\n")

    return _emit
