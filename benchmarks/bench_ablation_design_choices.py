"""Ablation — design choices called out in DESIGN.md / paper future work.

Sweeps the RMPI design axes on one benchmark:

* attention: none vs dot (paper eq. 7) vs scaled-dot (§VI future work),
* fusion: SUM vs CONCAT vs GATED (NE variants),
* entity clues: off vs on (§VI future work item 2).
"""

import numpy as np

from repro.core import RMPI, RMPIConfig
from repro.eval import evaluate_both
from repro.experiments import bench_settings, format_table
from repro.kg import build_partial_benchmark
from repro.train import train_model
from repro.utils.seeding import seeded_rng

SWEEPS = [
    ("base", RMPIConfig()),
    ("TA(dot)", RMPIConfig(use_target_attention=True, attention_kind="dot")),
    ("TA(scaled)", RMPIConfig(use_target_attention=True, attention_kind="scaled_dot")),
    ("NE(sum)", RMPIConfig(use_disclosing=True, fusion="sum")),
    ("NE(concat)", RMPIConfig(use_disclosing=True, fusion="concat")),
    ("NE(gated)", RMPIConfig(use_disclosing=True, fusion="gated")),
    ("EC", RMPIConfig(use_entity_clues=True)),
    ("NE+EC", RMPIConfig(use_disclosing=True, use_entity_clues=True)),
]


def test_ablation_design_choices(benchmark, emit):
    settings = bench_settings()
    training = settings.training_config()

    def run():
        bench = build_partial_benchmark(
            "NELL-995", 2, scale=settings.scale, seed=settings.seed
        )
        rows = []
        for label, config in SWEEPS:
            model = RMPI(
                bench.num_relations,
                seeded_rng(settings.seed),
                config,
            )
            train_model(
                model, bench.train_graph, bench.train_triples, config=training
            )
            report = evaluate_both(
                model,
                bench.test_graph,
                bench.test_triples,
                seed=settings.seed,
                num_negatives=settings.num_negatives,
            )
            metrics = report.as_dict()
            rows.append(
                [label, metrics["AUC-PR"], metrics["MRR"], metrics["Hits@10"]]
            )
        return format_table(
            ["variant", "AUC-PR", "MRR", "Hits@10"],
            rows,
            title=f"Design-choice ablation on {bench.name}",
        )

    emit("ablation_design_choices", benchmark.pedantic(run, rounds=1, iterations=1))
