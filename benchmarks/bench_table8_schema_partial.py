"""Table VIII — partially inductive KGC with and without ontological schemas.

Runs TACT-base, RMPI-base and RMPI-NE (both fusions) on the NELL-995.v2 and
.v4 analogues, with and without schema-projected initial relation
representations.  Expected shape (paper): schema helps most rows, with the
largest lift for TACT-base on the v4-like set.
"""

from repro.experiments import bench_settings, format_table, run_experiment
from repro.kg import build_partial_benchmark

METRICS = ("AUC-PR", "MRR", "Hits@10")
VERSIONS = (2, 4)


def test_table8_schema_partially_inductive(benchmark, emit):
    settings = bench_settings()
    training = settings.training_config()

    def run():
        benchmarks = {
            version: build_partial_benchmark(
                "NELL-995", version, scale=settings.scale, seed=settings.seed
            )
            for version in VERSIONS
        }
        specs = [
            ("TACT-base", "sum"),
            ("RMPI-base", "sum"),
            ("RMPI-NE(S)", "sum"),
            ("RMPI-NE(C)", "concat"),
        ]
        rows = []
        for use_schema in (False, True):
            prefix = "w/ " if use_schema else "w/o"
            for label, fusion in specs:
                method = label.split("(")[0]
                row = [f"{prefix} {label}"]
                for version in VERSIONS:
                    result = run_experiment(
                        benchmarks[version],
                        method,
                        training,
                        seed=settings.seed,
                        use_schema=use_schema,
                        fusion=fusion,
                        num_negatives=settings.num_negatives,
                    )
                    row.extend(result.metrics[m] for m in METRICS)
                rows.append(row)
        headers = ["method"] + [
            f"NELL-995.v{v}:{m}" for v in VERSIONS for m in METRICS
        ]
        return format_table(
            headers,
            rows,
            title="Table VIII: partially inductive KGC with (w/) and without (w/o) schemas",
        )

    emit("table8_schema_partial", benchmark.pedantic(run, rounds=1, iterations=1))
