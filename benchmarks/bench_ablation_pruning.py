"""Ablation — Algorithm-1 pruning vs full-graph relational message passing.

The paper motivates target-relation-guided pruning with computational
efficiency (§III-C): the relation-view graph is denser than the entity
view, so updating every node at every layer wastes work.  This bench
quantifies both the node-update savings and the wall-clock forward-pass
speedup on real extracted subgraphs.
"""

import numpy as np

from repro.benchmarks.timing import timed
from repro.core import RMPI, RMPIConfig
from repro.core.model import RMPISample
from repro.experiments import bench_settings, format_table
from repro.kg import build_partial_benchmark
from repro.subgraph import (
    build_message_plan,
    build_relational_graph,
    extract_enclosing_subgraph,
    full_graph_plan,
)
from repro.utils.seeding import seeded_rng


def test_ablation_pruning_efficiency(benchmark, emit):
    settings = bench_settings()

    def run():
        bench = build_partial_benchmark(
            "FB15k-237", 2, scale=settings.scale, seed=settings.seed
        )
        model = RMPI(bench.num_relations, seeded_rng(0), RMPIConfig())
        model.eval()
        triples = list(bench.train_triples)[:60]

        pruned_samples, full_samples = [], []
        pruned_updates = full_updates = 0
        for triple in triples:
            sub = extract_enclosing_subgraph(bench.train_graph, triple, 2)
            rg = build_relational_graph(sub)
            pruned_plan = build_message_plan(rg, model.config.num_layers)
            full_plan = full_graph_plan(rg, model.config.num_layers)
            pruned_updates += pruned_plan.total_updates()
            full_updates += full_plan.total_updates()
            pruned_samples.append(RMPISample(triple, pruned_plan, None, sub.is_empty))
            full_samples.append(RMPISample(triple, full_plan, None, sub.is_empty))

        def score_all(samples):
            elapsed, _ = timed(
                lambda: [model.score_sample(s) for s in samples],
                "bench.ablation.forward",
            )
            return elapsed

        # Warm-up then measure.
        score_all(pruned_samples[:5])
        pruned_time = score_all(pruned_samples)
        full_time = score_all(full_samples)

        rows = [
            ["pruned (Algorithm 1)", pruned_updates, pruned_time * 1000],
            ["full graph", full_updates, full_time * 1000],
            [
                "savings",
                full_updates - pruned_updates,
                (full_time - pruned_time) * 1000,
            ],
        ]
        table = format_table(
            ["message passing", "node updates", "forward time (ms)"],
            rows,
            title=f"Pruning ablation over {len(triples)} subgraphs "
            f"({bench.name}, K=2 layers)",
        )
        assert pruned_updates <= full_updates
        return table

    emit("ablation_pruning", benchmark.pedantic(run, rounds=1, iterations=1))
