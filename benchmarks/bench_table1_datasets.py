"""Table I — benchmark statistics.

Regenerates both halves of the paper's Table I on the synthetic analogues:
(a) the 12 partially inductive benchmarks, (b) the 4 re-combined fully
inductive benchmarks (with unseen-relation counts), plus the two Ext
benchmarks used for Tables IV/V.
"""

from repro.experiments import bench_settings, format_table
from repro.kg import (
    FULL_BENCHMARK_SPECS,
    build_ext_benchmark,
    build_full_benchmark,
    build_partial_benchmark,
)

FAMILY_VERSIONS = [
    (family, version)
    for family in ("WN18RR", "FB15k-237", "NELL-995")
    for version in (1, 2, 3, 4)
]


def test_table1_dataset_statistics(benchmark, emit):
    settings = bench_settings()

    def build():
        rows_a = []
        for family, version in FAMILY_VERSIONS:
            b = build_partial_benchmark(
                family, version, scale=settings.scale, seed=settings.seed
            )
            stats = b.statistics()
            rows_a.append(
                [
                    b.name,
                    stats["train"]["relations"],
                    stats["train"]["entities"],
                    stats["train"]["triples"],
                    stats["test"]["relations"],
                    stats["test"]["entities"],
                    stats["test"]["triples"],
                ]
            )
        rows_b = []
        for family, i, j in FULL_BENCHMARK_SPECS:
            b = build_full_benchmark(family, i, j, scale=settings.scale, seed=settings.seed)
            semi_rels = (
                b.semi_test_graph.triples.relation_ids()
                | b.semi_test_triples.relation_ids()
            )
            fully_rels = (
                b.fully_test_graph.triples.relation_ids()
                | b.fully_test_triples.relation_ids()
            )
            rows_b.append(
                [
                    b.name,
                    len(b.seen_relations),
                    f"{len(semi_rels)} ({len(semi_rels - b.seen_relations)})",
                    len(b.semi_test_graph.triples) + len(b.semi_test_triples),
                    f"{len(fully_rels)} ({len(fully_rels)})",
                    len(b.fully_test_graph.triples) + len(b.fully_test_triples),
                ]
            )
        rows_c = []
        for family in ("FB15k-237", "NELL-995"):
            b = build_ext_benchmark(family, scale=settings.scale, seed=settings.seed)
            rows_c.append(
                [
                    b.name,
                    len(b.seen_relations),
                    len(b.seen_entities),
                    len(b.train_graph.triples),
                    len(b.targets["u_ent"]),
                    len(b.targets["u_rel"]),
                    len(b.targets["u_both"]),
                ]
            )
        return rows_a, rows_b, rows_c

    rows_a, rows_b, rows_c = benchmark.pedantic(build, rounds=1, iterations=1)
    text = "\n\n".join(
        [
            format_table(
                ["benchmark", "TR #R", "TR #E", "TR #T", "TE #R", "TE #E", "TE #T"],
                rows_a,
                title="Table I(a): partially inductive benchmarks (scaled analogues)",
            ),
            format_table(
                [
                    "benchmark",
                    "TR #R",
                    "TE(semi) #R (unseen)",
                    "TE(semi) #T",
                    "TE(fully) #R (unseen)",
                    "TE(fully) #T",
                ],
                rows_b,
                title="Table I(b): fully inductive benchmarks",
            ),
            format_table(
                ["benchmark", "#R", "#E", "TR #T", "u_ent", "u_rel", "u_both"],
                rows_c,
                title="Ext benchmarks (Tables IV/V)",
            ),
        ]
    )
    emit("table1_datasets", text)
