"""Table VI — partially inductive KGC across all methods and benchmarks.

(a) entity prediction Hits@10 and (b) triple classification AUC-PR for
GraIL / TACT-base / TACT / CoMPILE / RMPI-{base,NE,TA,NE-TA} on the 12
benchmark versions.  Expected shape (paper): RMPI variants lead entity
prediction on most sets (NE strongest on the sparse WN-like sets); on
triple classification RMPI is second-best-or-comparable.
"""

from repro.experiments import (
    bench_settings,
    format_table,
    run_experiment,
)
from repro.kg import build_partial_benchmark

METHODS = (
    "GraIL",
    "TACT-base",
    "TACT",
    "CoMPILE",
    "RMPI-base",
    "RMPI-NE",
    "RMPI-TA",
    "RMPI-NE-TA",
)
FAMILY_VERSIONS = [
    (family, version)
    for family in ("WN18RR", "FB15k-237", "NELL-995")
    for version in (1, 2, 3, 4)
]


def test_table6_partially_inductive(benchmark, emit):
    settings = bench_settings()
    training = settings.training_config()

    def run():
        benchmarks = [
            build_partial_benchmark(f, v, scale=settings.scale, seed=settings.seed)
            for f, v in FAMILY_VERSIONS
        ]
        hits_rows, auc_rows = [], []
        for method in METHODS:
            hits_row, auc_row = [method], [method]
            for bench in benchmarks:
                result = run_experiment(
                    bench,
                    method,
                    training,
                    seed=settings.seed,
                    num_negatives=settings.num_negatives,
                )
                hits_row.append(result.metrics["Hits@10"])
                auc_row.append(result.metrics["AUC-PR"])
            hits_rows.append(hits_row)
            auc_rows.append(auc_row)
        headers = ["method"] + [b.name for b in benchmarks]
        return "\n\n".join(
            [
                format_table(
                    headers,
                    hits_rows,
                    title="Table VI(a): entity prediction Hits@10",
                ),
                format_table(
                    headers,
                    auc_rows,
                    title="Table VI(b): triple classification AUC-PR",
                ),
            ]
        )

    emit("table6_partial", benchmark.pedantic(run, rounds=1, iterations=1))
