"""Table II — fully inductive KGC, testing with *semi* unseen relations.

The testing graph mixes seen and unseen relations.  Methods: TACT-base,
RMPI-base, RMPI-NE; settings: Random Initialized and Schema Enhanced.
Expected shape (paper): RMPI variants beat TACT-base under random init on
the NELL benchmarks; schema enhancement lifts everyone substantially.
"""

from _fully_inductive import run_fully_inductive_table


def test_table2_semi_unseen_relations(benchmark, emit):
    text = benchmark.pedantic(
        lambda: run_fully_inductive_table("semi"), rounds=1, iterations=1
    )
    emit("table2_semi_unseen", text)
