"""Shared driver for Tables IV and V (comparison with MaKEr on Ext sets)."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines import MaKEr, ScopedMaKEr, train_maker
from repro.eval import evaluate_entity_prediction
from repro.experiments import bench_settings, make_model, schema_vectors_for
from repro.kg.hashing import stable_hash
from repro.kg import build_ext_benchmark
from repro.kg.benchmarks import ExtBenchmark
from repro.utils.seeding import seeded_rng

CATEGORIES = ("u_ent", "u_rel", "u_both")
RMPI_METHODS = ("RMPI-base", "RMPI-NE")


def evaluate_on_categories(scorer, bench: ExtBenchmark, seed: int, num_negatives: int):
    """MRR / Hits@10 per target category (the Table IV layout)."""
    row: List[float] = []
    for category in CATEGORIES:
        targets = bench.targets[category]
        result = evaluate_entity_prediction(
            scorer,
            bench.test_graph,
            targets,
            seeded_rng((seed, stable_hash(category, 0xFF))),
            num_negatives=num_negatives,
        )
        row.extend([result.mrr, result.hits_at_10])
    return row


def run_ext_comparison(
    family: str, use_schema_for_rmpi: bool = False
) -> Dict[str, List[float]]:
    """Train MaKEr and the RMPI variants on one Ext benchmark.

    Returns ``{method: [u_ent MRR, u_ent H@10, u_rel ..., u_both ...]}``.
    MaKEr always runs random-initialized (its Table V row repeats Table IV,
    as in the paper).
    """
    settings = bench_settings()
    bench = build_ext_benchmark(family, scale=settings.scale, seed=settings.seed)
    rows: Dict[str, List[float]] = {}

    maker = MaKEr(bench.num_relations, seeded_rng(settings.seed), embed_dim=32)
    train_maker(
        maker,
        bench.train_graph,
        bench.train_triples,
        episodes=settings.epochs * 15,
        seed=settings.seed,
    )
    rows["MaKEr"] = evaluate_on_categories(
        ScopedMaKEr(maker, bench.seen_relations),
        bench,
        settings.seed,
        settings.num_negatives,
    )

    schema_vectors: Optional[np.ndarray] = (
        schema_vectors_for(bench.ontology, seed=settings.seed)
        if use_schema_for_rmpi
        else None
    )
    from repro.train import train_model

    for method in RMPI_METHODS:
        model = make_model(
            method,
            bench.num_relations,
            seed=settings.seed,
            schema_vectors=schema_vectors,
        )
        train_model(
            model,
            bench.train_graph,
            bench.train_triples,
            bench.valid_triples,
            settings.training_config(),
        )
        label = method + ("+schema" if use_schema_for_rmpi else "")
        rows[label] = evaluate_on_categories(
            model, bench, settings.seed, settings.num_negatives
        )
    return rows


EXT_HEADERS = ["method"] + [
    f"{category}:{metric}" for category in CATEGORIES for metric in ("MRR", "Hits@10")
]
