"""Table IV — comparison with MaKEr on FB-Ext and NELL-Ext (random init).

Targets split into u_ent (unseen entities, seen relations), u_rel (seen
entities, unseen relations) and u_both.  Expected shape (paper): RMPI wins
u_rel and u_both; MaKEr is competitive or better on u_ent.
"""

from _ext_comparison import EXT_HEADERS, run_ext_comparison

from repro.experiments import format_table


def test_table4_maker_comparison(benchmark, emit):
    def run():
        tables = []
        for family in ("FB15k-237", "NELL-995"):
            rows = run_ext_comparison(family, use_schema_for_rmpi=False)
            tables.append(
                format_table(
                    EXT_HEADERS,
                    [[name, *vals] for name, vals in rows.items()],
                    title=f"Table IV: {family}-Ext (Random Initialized)",
                )
            )
        return "\n\n".join(tables)

    emit("table4_maker", benchmark.pedantic(run, rounds=1, iterations=1))
