"""Table V — MaKEr comparison on NELL-Ext with schema-enhanced RMPI.

RMPI's initial relation representations are projected TransE schema
vectors; MaKEr's row repeats its random-initialized result (as in the
paper).  Expected shape: the schema lifts RMPI's u_rel and u_both results
well past MaKEr.
"""

from _ext_comparison import EXT_HEADERS, run_ext_comparison

from repro.experiments import format_table


def test_table5_maker_schema(benchmark, emit):
    def run():
        rows = run_ext_comparison("NELL-995", use_schema_for_rmpi=True)
        return format_table(
            EXT_HEADERS,
            [[name, *vals] for name, vals in rows.items()],
            title="Table V: NELL-995-Ext (RMPI schema enhanced)",
        )

    emit("table5_maker_schema", benchmark.pedantic(run, rounds=1, iterations=1))
