"""Table VII — SUM vs CONC fusion for RMPI-NE.

Compares the summation-based (eq. 15) and concatenation-based (eq. 16)
fusion of enclosing and disclosing representations across (a) partially
inductive, (b) fully inductive semi-unseen with random init, and (c) fully
inductive semi-unseen schema-enhanced settings.  Expected shape (paper):
no global winner — the better fusion varies by dataset and setting.
"""

from repro.experiments import (
    bench_settings,
    format_table,
    run_experiment,
    run_full_experiment,
)
from repro.kg import build_full_benchmark, build_partial_benchmark

METRICS = ("AUC-PR", "Hits@10")
PARTIAL_SETS = [("NELL-995", 2), ("NELL-995", 4), ("FB15k-237", 1)]
FULL_SETS = [("NELL-995", 2, 3), ("NELL-995", 4, 3), ("FB15k-237", 1, 4)]


def test_table7_fusion_functions(benchmark, emit):
    settings = bench_settings()
    training = settings.training_config()

    def run():
        tables = []
        # (a) Partially inductive.
        rows = []
        for fusion in ("sum", "concat"):
            row = [fusion.upper()]
            for family, version in PARTIAL_SETS:
                bench = build_partial_benchmark(
                    family, version, scale=settings.scale, seed=settings.seed
                )
                result = run_experiment(
                    bench,
                    "RMPI-NE",
                    training,
                    seed=settings.seed,
                    fusion=fusion,
                    num_negatives=settings.num_negatives,
                )
                row.extend(result.metrics[m] for m in METRICS)
            rows.append(row)
        headers = ["fusion"] + [
            f"{f}.v{v}:{m}" for f, v in PARTIAL_SETS for m in METRICS
        ]
        tables.append(
            format_table(headers, rows, title="Table VII(a): partially inductive")
        )

        # (b)/(c) Fully inductive semi-unseen, random init and schema.
        for use_schema, label in ((False, "Random Initialized"), (True, "Schema Enhanced")):
            rows = []
            sets = [s for s in FULL_SETS if not use_schema or s[0] == "NELL-995"]
            for fusion in ("sum", "concat"):
                row = [fusion.upper()]
                for family, i, j in sets:
                    bench = build_full_benchmark(
                        family, i, j, scale=settings.scale, seed=settings.seed
                    )
                    result = run_full_experiment(
                        bench,
                        "RMPI-NE",
                        "semi",
                        training,
                        seed=settings.seed,
                        use_schema=use_schema,
                        fusion=fusion,
                    )
                    row.extend(result.metrics[m] for m in METRICS)
                rows.append(row)
            headers = ["fusion"] + [
                f"{f}.v{i}.v{j}:{m}" for f, i, j in sets for m in METRICS
            ]
            part = "b" if not use_schema else "c"
            tables.append(
                format_table(
                    headers,
                    rows,
                    title=f"Table VII({part}): fully inductive semi-unseen — {label}",
                )
            )
        return "\n\n".join(tables)

    emit("table7_fusion", benchmark.pedantic(run, rounds=1, iterations=1))
