"""Table III — fully inductive KGC, testing with *fully* unseen relations.

The testing graph contains only unseen relations: random-initialized
embeddings get no help from seen neighbors, so performance drops sharply
versus Table II — the paper's hardest setting.  RMPI should degrade less
than TACT-base (it can still exploit relation co-occurrence patterns), and
schema enhancement should recover most of the gap on NELL benchmarks.
"""

from _fully_inductive import run_fully_inductive_table


def test_table3_fully_unseen_relations(benchmark, emit):
    text = benchmark.pedantic(
        lambda: run_fully_inductive_table("fully"), rounds=1, iterations=1
    )
    emit("table3_fully_unseen", text)
