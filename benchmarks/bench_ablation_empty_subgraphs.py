"""Ablation — empty enclosing subgraphs and the NE module (§III-F).

The paper motivates the disclosing-subgraph (NE) module with the
observation that many triples — especially sampled negatives and sparse
WN18RR-like graphs — have *empty* enclosing subgraphs, leaving the scorer
with no structural evidence.  This bench (i) measures the empty-subgraph
rate for positives and negatives on each dataset family, and (ii) compares
RMPI-base vs RMPI-NE where the rate is highest.
"""

import numpy as np

from repro.experiments import bench_settings, format_table, run_experiment
from repro.kg import build_partial_benchmark
from repro.kg.sampling import negative_triples
from repro.subgraph import extract_enclosing_subgraph
from repro.utils.seeding import seeded_rng


def empty_rate(graph, triples, num_hops=2):
    if not triples:
        return 0.0
    empty = sum(
        extract_enclosing_subgraph(graph, t, num_hops).is_empty for t in triples
    )
    return 100.0 * empty / len(triples)


def test_ablation_empty_subgraphs(benchmark, emit):
    settings = bench_settings()
    training = settings.training_config()

    def run():
        rate_rows = []
        sparsest = None
        for family in ("WN18RR", "FB15k-237", "NELL-995"):
            bench = build_partial_benchmark(
                family, 1, scale=settings.scale, seed=settings.seed
            )
            rng = seeded_rng(settings.seed)
            positives = list(bench.test_triples)[:40]
            negatives = negative_triples(
                bench.test_triples, bench.test_graph.num_entities, rng,
                candidate_entities=sorted(bench.test_graph.triples.entities()),
            )[:40]
            pos_rate = empty_rate(bench.test_graph, positives)
            neg_rate = empty_rate(bench.test_graph, negatives)
            rate_rows.append([bench.name, pos_rate, neg_rate])
            if sparsest is None or pos_rate + neg_rate > sparsest[1]:
                sparsest = (bench, pos_rate + neg_rate)

        rate_table = format_table(
            ["benchmark", "empty % (positives)", "empty % (negatives)"],
            rate_rows,
            title="Empty enclosing subgraph rates (2-hop)",
        )

        bench = sparsest[0]
        compare_rows = []
        for method in ("RMPI-base", "RMPI-NE"):
            result = run_experiment(
                bench,
                method,
                training,
                seed=settings.seed,
                num_negatives=settings.num_negatives,
            )
            compare_rows.append(
                [method, result.metrics["AUC-PR"], result.metrics["Hits@10"]]
            )
        compare_table = format_table(
            ["method", "AUC-PR", "Hits@10"],
            compare_rows,
            title=f"NE contribution on the sparsest set ({bench.name})",
        )
        return rate_table + "\n\n" + compare_table

    emit("ablation_empty_subgraphs", benchmark.pedantic(run, rounds=1, iterations=1))
