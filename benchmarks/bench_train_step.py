"""Train-step microbenchmark: fused compute engine vs the pre-PR engine.

Times one optimizer step (forward, backward, gradient clip + Adam) of the
margin-ranking trainer on a fixed batch of positives and negatives, for two
engine configurations:

* **fused** — the defaults: float32 engine dtype, sort-based segment
  kernels, the stacked typed-linear matmul, and the one-pass merged
  positives+negatives step;
* **legacy** — the pre-PR engine reconstructed from the kept reference
  paths: a float64 model, ``np.add.at`` scatter kernels and the
  per-edge-type matmul loop (``repro.autograd.engine.legacy_kernels``),
  and the two-pass (positives then negatives) step layout.

Sample preparation is memoised in both models and warmed before timing, so
the numbers isolate the autograd compute engine — the post-PR-3 hot path.
An eval-ranking contender pair additionally reports what no-grad + float32
buys the serving/eval forward.  This script is the fused-vs-legacy speedup
*gate*; absolute trajectory numbers live in the
``python -m repro.benchmarks run --workload train_step`` record.

``REPRO_BENCH_MIN_TRAIN_SPEEDUP`` overrides the asserted end-to-end floor
(default 2x; CI sets a lower one because shared runners time noisily).
"""

import os

import numpy as np

from repro.autograd import Adam, clip_grad_norm, default_dtype, legacy_kernels
from repro.autograd.losses import margin_ranking_loss
from repro.benchmarks.timing import best_of_interleaved, timed
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import TripleSet, build_partial_benchmark, ranking_candidates
from repro.kg.sampling import negative_triples
from repro.utils.seeding import seeded_rng

BATCH_SIZE = 16
MARGIN = 10.0
CLIP_NORM = 5.0


def _bench_graph():
    settings = bench_settings()
    return build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )


def _training_batch(bench):
    graph = bench.train_graph
    positives = list(bench.train_triples)[:BATCH_SIZE]
    rng = seeded_rng(0)
    negatives = negative_triples(
        TripleSet(positives),
        num_entities=graph.num_entities,
        rng=rng,
        known=set(graph.triples) | set(bench.train_triples),
        candidate_entities=sorted(graph.triples.entities()),
    )
    return graph, positives, negatives


def _ranking_workload(bench, num_queries=4, num_negatives=49):
    graph = bench.train_graph
    rng = seeded_rng(1)
    pool = sorted(graph.triples.entities())
    queries = (
        list(bench.test_triples)[:num_queries]
        or list(bench.train_triples)[:num_queries]
    )
    workload = []
    for i, query in enumerate(queries):
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng,
                num_negatives=num_negatives,
                candidate_entities=pool,
                corrupt_head=bool(i % 2),
            )
        )
    return workload


def _make_model(bench, float64=False):
    config = RMPIConfig(dropout=0.0, use_target_attention=True)
    if float64:
        with default_dtype("float64"):
            return RMPI(bench.num_relations, seeded_rng(0), config)
    return RMPI(bench.num_relations, seeded_rng(0), config)


def _train_step(model, optimizer, graph, positives, negatives, one_pass):
    """One optimizer step; returns (forward_s, backward_s, optimizer_s)."""
    model.train()

    def forward():
        if one_pass:
            scores = model.score_batch_fused(graph, positives + negatives)
            pos_scores = scores[: len(positives)]
            neg_scores = scores[len(positives) :]
        else:
            pos_scores = model.score_batch_fused(graph, positives)
            neg_scores = model.score_batch_fused(graph, negatives)
        return margin_ranking_loss(pos_scores, neg_scores, margin=MARGIN)

    def backward():
        optimizer.zero_grad()
        loss.backward()

    def optimize():
        clip_grad_norm(model.parameters(), CLIP_NORM)
        optimizer.step()

    forward_s, loss = timed(forward, "bench.train.forward")
    backward_s, _ = timed(backward, "bench.train.backward")
    optimizer_s, _ = timed(optimize, "bench.train.optimizer")
    return forward_s, backward_s, optimizer_s


def test_perf_train_step_speedup(emit):
    bench = _bench_graph()
    graph, positives, negatives = _training_batch(bench)

    fused_model = _make_model(bench)
    fused_opt = Adam(fused_model.parameters(), lr=1e-3)
    legacy_model = _make_model(bench, float64=True)
    legacy_opt = Adam(legacy_model.parameters(), lr=1e-3)

    def fused_step():
        return _train_step(
            fused_model, fused_opt, graph, positives, negatives, one_pass=True
        )

    def legacy_step():
        with legacy_kernels():
            return _train_step(
                legacy_model, legacy_opt, graph, positives, negatives, one_pass=False
            )

    # Warm the memoised prepare caches (extraction/plan compilation are
    # PR 1–3 territory; this bench isolates the compute engine).
    fused_step()
    legacy_step()

    repeats = 5
    best = {"fused": None, "legacy": None}
    for _ in range(repeats):
        for name, step in (("legacy", legacy_step), ("fused", fused_step)):
            stages = step()
            total = sum(stages)
            if best[name] is None or total < sum(best[name]):
                best[name] = stages

    stage_names = ("forward", "backward", "optimizer")
    legacy_stages = dict(zip(stage_names, best["legacy"]))
    fused_stages = dict(zip(stage_names, best["fused"]))
    t_legacy = sum(best["legacy"])
    t_fused = sum(best["fused"])
    speedup = t_legacy / t_fused

    # Eval-ranking contenders: the pre-PR eval forward built a full
    # backward graph in float64; the new path is no-grad float32.
    workload = _ranking_workload(bench)
    fused_model.eval()
    legacy_model.eval()

    def fused_eval():
        fused_model.score_triples_fused(graph, workload)

    def legacy_eval():
        with legacy_kernels():
            legacy_model.score_batch_fused(graph, workload)

    fused_eval()  # warm
    legacy_eval()
    t_eval_legacy, t_eval_fused = best_of_interleaved(
        3, legacy_eval, fused_eval, name="bench.train.eval"
    )
    eval_speedup = t_eval_legacy / t_eval_fused

    lines = [
        "train step (batch of "
        f"{len(positives)} positives + {len(negatives)} negatives, "
        f"graph={graph!r})",
        f"  {'stage':<12}{'legacy':>12}{'fused':>12}{'speedup':>10}",
    ]
    for stage in stage_names:
        t_l, t_f = legacy_stages[stage], fused_stages[stage]
        lines.append(
            f"  {stage:<12}{t_l * 1e3:>10.1f}ms{t_f * 1e3:>10.1f}ms"
            f"{t_l / t_f:>9.1f}x"
        )
    lines += [
        f"  {'end-to-end':<12}{t_legacy * 1e3:>10.1f}ms{t_fused * 1e3:>10.1f}ms"
        f"{speedup:>9.1f}x",
        f"  eval ranking ({len(workload)} candidates)"
        f"{t_eval_legacy * 1e3:>10.1f}ms{t_eval_fused * 1e3:>10.1f}ms"
        f"{eval_speedup:>9.1f}x",
    ]
    emit("bench_train_step", "\n".join(lines))

    floor = float(os.environ.get("REPRO_BENCH_MIN_TRAIN_SPEEDUP", "2.0"))
    assert speedup >= floor, (
        f"expected >={floor}x end-to-end train-step speedup, got {speedup:.2f}x"
    )


def test_perf_fused_train_step(benchmark):
    """Steady-state timing of the fused one-pass train step."""
    bench = _bench_graph()
    graph, positives, negatives = _training_batch(bench)
    model = _make_model(bench)
    optimizer = Adam(model.parameters(), lr=1e-3)
    _train_step(model, optimizer, graph, positives, negatives, one_pass=True)

    benchmark(
        lambda: _train_step(
            model, optimizer, graph, positives, negatives, one_pass=True
        )
    )
