"""Shared driver for Tables II and III (fully inductive KGC)."""

from __future__ import annotations

from typing import List

from repro.experiments import bench_settings, format_table, run_full_experiment
from repro.kg import FULL_BENCHMARK_SPECS, build_full_benchmark

METHODS = ("TACT-base", "RMPI-base", "RMPI-NE")
METRICS = ("AUC-PR", "MRR", "Hits@10")


def run_fully_inductive_table(setting: str) -> str:
    """Run the full method grid for one unseen-relation setting.

    ``setting`` is 'semi' (Table II) or 'fully' (Table III).  Returns the
    rendered (a) Random Initialized and (b) Schema Enhanced tables.
    """
    settings = bench_settings()
    training = settings.training_config()

    benchmarks = [
        build_full_benchmark(family, i, j, scale=settings.scale, seed=settings.seed)
        for family, i, j in FULL_BENCHMARK_SPECS
    ]

    def rows_for(use_schema: bool) -> List[list]:
        rows = []
        for method in METHODS:
            row: list = [method]
            for bench in benchmarks:
                # The paper evaluates Schema Enhanced on the NELL-derived
                # benchmarks only (WN/FB have no public ontology; our FB
                # analogue mirrors that restriction).
                if use_schema and not bench.name.startswith("NELL"):
                    continue
                result = run_full_experiment(
                    bench,
                    method,
                    setting,
                    training,
                    seed=settings.seed,
                    use_schema=use_schema,
                )
                row.extend(result.metrics[m] for m in METRICS)
            rows.append(row)
        return rows

    def headers_for(use_schema: bool) -> List[str]:
        headers = ["method"]
        for bench in benchmarks:
            if use_schema and not bench.name.startswith("NELL"):
                continue
            headers.extend(f"{bench.name}:{m}" for m in METRICS)
        return headers

    table_number = "II" if setting == "semi" else "III"
    part_a = format_table(
        headers_for(False),
        rows_for(False),
        title=(
            f"Table {table_number}(a): fully inductive KGC, testing with "
            f"{setting} unseen relations — Random Initialized"
        ),
    )
    part_b = format_table(
        headers_for(True),
        rows_for(True),
        title=(
            f"Table {table_number}(b): fully inductive KGC, testing with "
            f"{setting} unseen relations — Schema Enhanced (NELL benchmarks)"
        ),
    )
    return part_a + "\n\n" + part_b
