"""Parallel-execution benchmark: sharded prepare + parallel eval ranking.

Measures the multi-process layer (``repro.parallel``) against the serial
paths on the 2-hop ranking workload:

* **prepare throughput** — ``ShardedPreparer`` (4 workers, cold caches)
  vs one serial ``prepare_many`` over the same candidate batch;
* **eval-ranking throughput** — ``ParallelEvaluator.entity_prediction``
  vs the serial protocol, with the metrics asserted **bitwise equal**
  (candidate drawing stays in the parent, scoring is per-query).

Speedup floors (default ≥2x prepare, ≥1.5x eval at 4 workers; override
with ``REPRO_BENCH_MIN_PARALLEL_PREPARE`` / ``REPRO_BENCH_MIN_PARALLEL_EVAL``)
are asserted only when the host actually exposes ≥4 usable CPUs — on a
1-core container 4 forked workers time-slice one core and cannot beat
serial, so the gate records the measurement instead of failing the build.
``REPRO_BENCH_PARALLEL_GATE=1`` forces the assertion, ``=0`` disables it.
Results are archived as a table and as ``BENCH_parallel.json``.
"""

import json
import os
import time

import numpy as np

from repro.core import RMPI, RMPIConfig
from repro.eval.protocol import evaluate_entity_prediction
from repro.experiments import bench_settings
from repro.kg import build_partial_benchmark, ranking_candidates
from repro.kg.triples import TripleSet
from repro.parallel import ParallelEvaluator, ShardedPreparer, usable_cpus
from repro.utils.seeding import seeded_rng

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
# 24 queries x 50 candidates: enough compute per fork that the fixed pool
# overhead (~20ms fork + result unpickle) stays far below the 2x floor's
# slack on a 4-core host.
WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_PARALLEL_QUERIES", "24"))


def _bench_graph():
    settings = bench_settings()
    return build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )


def _make_model(bench):
    return RMPI(
        bench.num_relations,
        seeded_rng(0),
        RMPIConfig(embed_dim=32, use_disclosing=True),
    )


def _ranking_workload(bench, num_queries, num_negatives=49):
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool = sorted(graph.triples.entities())
    queries = (
        list(bench.test_triples)[:num_queries]
        or list(bench.train_triples)[:num_queries]
    )
    workload = []
    for query in queries:
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng=rng,
                num_negatives=num_negatives,
                candidate_entities=pool,
            )
        )
    return queries, workload


def _gate_enforced() -> bool:
    forced = os.environ.get("REPRO_BENCH_PARALLEL_GATE")
    if forced is not None:
        return forced == "1"
    return usable_cpus() >= WORKERS


def test_perf_parallel_speedups(emit):
    bench = _bench_graph()
    graph = bench.train_graph
    graph.warm()  # index build is PR 1 territory; measure prepare only
    queries, workload = _ranking_workload(bench, NUM_QUERIES)
    targets = TripleSet(queries)

    # ---- sharded prepare vs serial prepare_many (cold caches each) ----
    serial_model = _make_model(bench)
    start = time.perf_counter()
    serial_model.prepare_many(graph, workload)
    t_prepare_serial = time.perf_counter() - start

    parallel_model = _make_model(bench)
    with ShardedPreparer(parallel_model, graph, workers=WORKERS) as preparer:
        start = time.perf_counter()
        preparer.prepare_many(graph, workload)
        t_prepare_parallel = time.perf_counter() - start
    prepare_speedup = t_prepare_serial / t_prepare_parallel

    # ---- eval ranking: serial protocol vs worker-pool fan-out ----------
    eval_serial_model = _make_model(bench)
    start = time.perf_counter()
    serial_result = evaluate_entity_prediction(
        eval_serial_model, graph, targets, seeded_rng(1)
    )
    t_eval_serial = time.perf_counter() - start

    eval_parallel_model = _make_model(bench)
    with ParallelEvaluator(eval_parallel_model, graph, workers=WORKERS) as evaluator:
        start = time.perf_counter()
        parallel_result = evaluator.entity_prediction(
            targets, seeded_rng(1)
        )
        t_eval_parallel = time.perf_counter() - start
    eval_speedup = t_eval_serial / t_eval_parallel

    # Parity is asserted unconditionally — a wrong answer is never "fast".
    assert parallel_result == serial_result, (
        f"parallel eval diverged: {parallel_result} vs {serial_result}"
    )

    cores = usable_cpus()
    enforced = _gate_enforced()
    prepare_floor = float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_PREPARE", "2.0"))
    eval_floor = float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_EVAL", "1.5"))

    lines = [
        f"parallel execution ({WORKERS} workers, {cores} usable CPUs, "
        f"graph={graph!r})",
        f"  {'stage':<24}{'serial':>12}{'parallel':>12}{'speedup':>10}",
        f"  {'prepare ' + str(len(workload)) + ' samples':<24}"
        f"{t_prepare_serial * 1e3:>10.1f}ms{t_prepare_parallel * 1e3:>10.1f}ms"
        f"{prepare_speedup:>9.2f}x",
        f"  {'eval ' + str(len(queries)) + ' queries':<24}"
        f"{t_eval_serial * 1e3:>10.1f}ms{t_eval_parallel * 1e3:>10.1f}ms"
        f"{eval_speedup:>9.2f}x",
        f"  metrics parity: bitwise (MRR {parallel_result.mrr:.3f})",
        f"  speedup gate ({prepare_floor}x prepare / {eval_floor}x eval): "
        + ("ENFORCED" if enforced else f"recorded only ({cores} < {WORKERS} CPUs)"),
    ]
    emit("bench_parallel", "\n".join(lines))

    payload = {
        "workers": WORKERS,
        "usable_cpus": cores,
        "workload": {
            "prepare_samples": len(workload),
            "eval_queries": len(queries),
        },
        "prepare": {
            "serial_s": t_prepare_serial,
            "parallel_s": t_prepare_parallel,
            "speedup": prepare_speedup,
            "floor": prepare_floor,
        },
        "eval_ranking": {
            "serial_s": t_eval_serial,
            "parallel_s": t_eval_parallel,
            "speedup": eval_speedup,
            "floor": eval_floor,
            "metrics_bitwise_equal": True,
        },
        "gate_enforced": enforced,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(
        os.path.join(RESULTS_DIR, "BENCH_parallel.json"), "w", encoding="utf-8"
    ) as fh:
        json.dump(payload, fh, indent=2)

    if enforced:
        assert prepare_speedup >= prepare_floor, (
            f"expected >={prepare_floor}x sharded-prepare speedup at "
            f"{WORKERS} workers, got {prepare_speedup:.2f}x"
        )
        assert eval_speedup >= eval_floor, (
            f"expected >={eval_floor}x parallel eval-ranking speedup at "
            f"{WORKERS} workers, got {eval_speedup:.2f}x"
        )
