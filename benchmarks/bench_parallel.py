"""Parallel-execution benchmark: sharded prepare + parallel eval ranking.

Measures the multi-process layer (``repro.parallel``) against the serial
paths on the 2-hop ranking workload:

* **prepare throughput** — ``ShardedPreparer`` (4 workers, cold caches)
  vs one serial ``prepare_many`` over the same candidate batch;
* **eval-ranking throughput** — ``ParallelEvaluator.entity_prediction``
  vs the serial protocol, with the metrics asserted **bitwise equal**
  (candidate drawing stays in the parent, scoring is per-query).

Speedup floors (default ≥2x prepare, ≥1.5x eval at 4 workers; override
with ``REPRO_BENCH_MIN_PARALLEL_PREPARE`` / ``REPRO_BENCH_MIN_PARALLEL_EVAL``)
are asserted only when the host actually exposes ≥4 usable CPUs — on a
1-core container 4 forked workers time-slice one core and cannot beat
serial, so the gate records the measurement instead of failing the build.
``REPRO_BENCH_PARALLEL_GATE=1`` forces the assertion, ``=0`` disables it.
Results are archived as a table; absolute trajectory numbers live in the
``python -m repro.benchmarks run --workload parallel`` record.
"""

import os

import numpy as np

from repro.benchmarks.timing import timed
from repro.core import RMPI, RMPIConfig
from repro.eval.protocol import evaluate_entity_prediction
from repro.experiments import bench_settings
from repro.kg import build_partial_benchmark, ranking_candidates
from repro.kg.triples import TripleSet
from repro.parallel import ParallelEvaluator, ShardedPreparer, usable_cpus
from repro.utils.seeding import seeded_rng

# 24 queries x 50 candidates: enough compute per fork that the fixed pool
# overhead (~20ms fork + result unpickle) stays far below the 2x floor's
# slack on a 4-core host.
WORKERS = int(os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "4"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_PARALLEL_QUERIES", "24"))


def _bench_graph():
    settings = bench_settings()
    return build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )


def _make_model(bench):
    return RMPI(
        bench.num_relations,
        seeded_rng(0),
        RMPIConfig(embed_dim=32, use_disclosing=True),
    )


def _ranking_workload(bench, num_queries, num_negatives=49):
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool = sorted(graph.triples.entities())
    queries = (
        list(bench.test_triples)[:num_queries]
        or list(bench.train_triples)[:num_queries]
    )
    workload = []
    for query in queries:
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng=rng,
                num_negatives=num_negatives,
                candidate_entities=pool,
            )
        )
    return queries, workload


def _gate_enforced() -> bool:
    forced = os.environ.get("REPRO_BENCH_PARALLEL_GATE")
    if forced is not None:
        return forced == "1"
    return usable_cpus() >= WORKERS


def test_perf_parallel_speedups(emit):
    bench = _bench_graph()
    graph = bench.train_graph
    graph.warm()  # index build is PR 1 territory; measure prepare only
    queries, workload = _ranking_workload(bench, NUM_QUERIES)
    targets = TripleSet(queries)

    # ---- sharded prepare vs serial prepare_many (cold caches each) ----
    serial_model = _make_model(bench)
    t_prepare_serial, _ = timed(
        lambda: serial_model.prepare_many(graph, workload),
        "bench.parallel.prepare_serial",
    )

    parallel_model = _make_model(bench)
    with ShardedPreparer(parallel_model, graph, workers=WORKERS) as preparer:
        t_prepare_parallel, _ = timed(
            lambda: preparer.prepare_many(graph, workload),
            "bench.parallel.prepare_sharded",
        )
    prepare_speedup = t_prepare_serial / t_prepare_parallel

    # ---- eval ranking: serial protocol vs worker-pool fan-out ----------
    eval_serial_model = _make_model(bench)
    t_eval_serial, serial_result = timed(
        lambda: evaluate_entity_prediction(
            eval_serial_model, graph, targets, seeded_rng(1)
        ),
        "bench.parallel.eval_serial",
    )

    eval_parallel_model = _make_model(bench)
    with ParallelEvaluator(eval_parallel_model, graph, workers=WORKERS) as evaluator:
        t_eval_parallel, parallel_result = timed(
            lambda: evaluator.entity_prediction(targets, seeded_rng(1)),
            "bench.parallel.eval_pool",
        )
    eval_speedup = t_eval_serial / t_eval_parallel

    # Parity is asserted unconditionally — a wrong answer is never "fast".
    assert parallel_result == serial_result, (
        f"parallel eval diverged: {parallel_result} vs {serial_result}"
    )

    cores = usable_cpus()
    enforced = _gate_enforced()
    prepare_floor = float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_PREPARE", "2.0"))
    eval_floor = float(os.environ.get("REPRO_BENCH_MIN_PARALLEL_EVAL", "1.5"))

    lines = [
        f"parallel execution ({WORKERS} workers, {cores} usable CPUs, "
        f"graph={graph!r})",
        f"  {'stage':<24}{'serial':>12}{'parallel':>12}{'speedup':>10}",
        f"  {'prepare ' + str(len(workload)) + ' samples':<24}"
        f"{t_prepare_serial * 1e3:>10.1f}ms{t_prepare_parallel * 1e3:>10.1f}ms"
        f"{prepare_speedup:>9.2f}x",
        f"  {'eval ' + str(len(queries)) + ' queries':<24}"
        f"{t_eval_serial * 1e3:>10.1f}ms{t_eval_parallel * 1e3:>10.1f}ms"
        f"{eval_speedup:>9.2f}x",
        f"  metrics parity: bitwise (MRR {parallel_result.mrr:.3f})",
        f"  speedup gate ({prepare_floor}x prepare / {eval_floor}x eval): "
        + ("ENFORCED" if enforced else f"recorded only ({cores} < {WORKERS} CPUs)"),
    ]
    emit("bench_parallel", "\n".join(lines))

    if enforced:
        assert prepare_speedup >= prepare_floor, (
            f"expected >={prepare_floor}x sharded-prepare speedup at "
            f"{WORKERS} workers, got {prepare_speedup:.2f}x"
        )
        assert eval_speedup >= eval_floor, (
            f"expected >={eval_floor}x parallel eval-ranking speedup at "
            f"{WORKERS} workers, got {eval_speedup:.2f}x"
        )
