"""Micro-benchmarks of the substrate hot paths.

Not a paper table — these track the cost of the operations that dominate
training time (subgraph extraction, line-graph transformation, plan
compilation, one RMPI forward/backward) so performance regressions in the
substrate are visible.
"""

import os

import numpy as np

from repro.autograd import Tensor, margin_ranking_loss, segment_softmax, segment_sum
from repro.benchmarks.timing import best_of_interleaved
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import KnowledgeGraph, build_partial_benchmark, ranking_candidates
from repro.subgraph import (
    build_message_plan,
    build_relational_graph,
    extract_enclosing_subgraph,
    extract_subgraphs_many,
    legacy_extract_enclosing_subgraph,
)
from repro.utils.seeding import seeded_rng


def _bench_graph():
    settings = bench_settings()
    return build_partial_benchmark("FB15k-237", 2, scale=settings.scale, seed=settings.seed)


def _ranking_workload(bench, num_queries=8, num_negatives=49):
    """The entity-prediction extraction workload: per query, the truth plus
    ``num_negatives`` corruptions of one side (paper §IV-B)."""
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool = sorted(graph.triples.entities())
    queries = list(bench.test_triples)[:num_queries] or list(bench.train_triples)[:num_queries]
    workload = []
    for i, query in enumerate(queries):
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng,
                num_negatives=num_negatives,
                candidate_entities=pool,
                corrupt_head=bool(i % 2),
            )
        )
    return graph, workload


def test_perf_batched_extraction_speedup(emit):
    """Old-vs-new extraction throughput on the 2-hop ranking workload.

    The vectorized CSR engine (batched extraction + shared K-hop frontier
    cache) must beat the legacy pure-Python dict/set BFS by >= 5x on the
    eval protocol's candidate lists.  ``REPRO_BENCH_MIN_SPEEDUP`` overrides
    the asserted floor (CI sets a lower one: shared runners time noisily).
    """
    bench = _bench_graph()
    graph, workload = _ranking_workload(bench)

    def run_legacy():
        for triple in workload:
            legacy_extract_enclosing_subgraph(graph, triple, 2)

    # Fresh graph for the new path so CSR build + cache warm-up are included
    # in the first (discarded) repetition, then steady-state is measured.
    csr_graph = KnowledgeGraph(graph.triples, graph.num_entities, graph.num_relations)

    def run_vectorized():
        extract_subgraphs_many(csr_graph, workload, 2)

    run_legacy()  # warm (builds adjacency)
    run_vectorized()  # warm (builds CSR, fills the neighborhood cache)
    t_legacy, t_new = best_of_interleaved(5, run_legacy, run_vectorized)
    speedup = t_legacy / t_new
    n = len(workload)
    emit(
        "microbench_extraction_speedup",
        "\n".join(
            [
                "extraction throughput (2-hop ranking workload, "
                f"{n} candidate triples, graph={graph!r})",
                f"  legacy python path : {t_legacy * 1e3:8.1f} ms  "
                f"({n / t_legacy:9.0f} subgraphs/s)",
                f"  vectorized engine  : {t_new * 1e3:8.1f} ms  "
                f"({n / t_new:9.0f} subgraphs/s)",
                f"  speedup            : {speedup:8.1f} x",
                f"  frontier cache     : {csr_graph.neighborhood_cache.hits} hits / "
                f"{csr_graph.neighborhood_cache.misses} misses",
            ]
        ),
    )
    floor = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))
    assert speedup >= floor, f"expected >={floor}x extraction speedup, got {speedup:.2f}x"


def test_perf_batched_extraction(benchmark):
    bench = _bench_graph()
    graph, workload = _ranking_workload(bench)
    extract_subgraphs_many(graph, workload, 2)  # warm CSR + cache

    def extract_all():
        extract_subgraphs_many(graph, workload, 2)

    benchmark(extract_all)


def test_perf_subgraph_extraction(benchmark):
    bench = _bench_graph()
    triples = list(bench.train_triples)[:20]

    def extract_all():
        for triple in triples:
            extract_enclosing_subgraph(bench.train_graph, triple, 2)

    benchmark(extract_all)


def test_perf_linegraph_and_plan(benchmark):
    bench = _bench_graph()
    subgraphs = [
        extract_enclosing_subgraph(bench.train_graph, t, 2)
        for t in list(bench.train_triples)[:20]
    ]

    def transform_all():
        for sub in subgraphs:
            build_message_plan(build_relational_graph(sub), 2)

    benchmark(transform_all)


def test_perf_rmpi_forward_backward(benchmark):
    bench = _bench_graph()
    model = RMPI(bench.num_relations, seeded_rng(0), RMPIConfig(dropout=0.0))
    triples = list(bench.train_triples)[:16]
    negatives = [(t[2], t[1], t[0]) for t in triples]
    # Warm the sample cache so we measure compute, not extraction.
    model.score_batch(bench.train_graph, triples)
    model.score_batch(bench.train_graph, negatives)

    def step():
        pos = model.score_batch(bench.train_graph, triples)
        neg = model.score_batch(bench.train_graph, negatives)
        loss = margin_ranking_loss(pos, neg)
        model.zero_grad()
        loss.backward()

    benchmark(step)


def test_perf_segment_ops(benchmark):
    rng = seeded_rng(0)
    values = Tensor(rng.normal(size=(5000, 32)), requires_grad=True)
    logits = Tensor(rng.normal(size=5000), requires_grad=True)
    segments = rng.integers(500, size=5000)

    def run():
        alpha = segment_softmax(logits, segments, 500)
        from repro.autograd import ops

        weighted = ops.mul(values, ops.reshape(alpha, (5000, 1)))
        out = segment_sum(weighted, segments, 500)
        out.sum().backward()

    benchmark(run)
