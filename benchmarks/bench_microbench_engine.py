"""Micro-benchmarks of the substrate hot paths.

Not a paper table — these track the cost of the operations that dominate
training time (subgraph extraction, line-graph transformation, plan
compilation, one RMPI forward/backward) so performance regressions in the
substrate are visible.
"""

import numpy as np

from repro.autograd import Tensor, margin_ranking_loss, segment_softmax, segment_sum
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import build_partial_benchmark
from repro.subgraph import (
    build_message_plan,
    build_relational_graph,
    extract_enclosing_subgraph,
)


def _bench_graph():
    settings = bench_settings()
    return build_partial_benchmark("FB15k-237", 2, scale=settings.scale, seed=settings.seed)


def test_perf_subgraph_extraction(benchmark):
    bench = _bench_graph()
    triples = list(bench.train_triples)[:20]

    def extract_all():
        for triple in triples:
            extract_enclosing_subgraph(bench.train_graph, triple, 2)

    benchmark(extract_all)


def test_perf_linegraph_and_plan(benchmark):
    bench = _bench_graph()
    subgraphs = [
        extract_enclosing_subgraph(bench.train_graph, t, 2)
        for t in list(bench.train_triples)[:20]
    ]

    def transform_all():
        for sub in subgraphs:
            build_message_plan(build_relational_graph(sub), 2)

    benchmark(transform_all)


def test_perf_rmpi_forward_backward(benchmark):
    bench = _bench_graph()
    model = RMPI(bench.num_relations, np.random.default_rng(0), RMPIConfig(dropout=0.0))
    triples = list(bench.train_triples)[:16]
    negatives = [(t[2], t[1], t[0]) for t in triples]
    # Warm the sample cache so we measure compute, not extraction.
    model.score_batch(bench.train_graph, triples)
    model.score_batch(bench.train_graph, negatives)

    def step():
        pos = model.score_batch(bench.train_graph, triples)
        neg = model.score_batch(bench.train_graph, negatives)
        loss = margin_ranking_loss(pos, neg)
        model.zero_grad()
        loss.backward()

    benchmark(step)


def test_perf_segment_ops(benchmark):
    rng = np.random.default_rng(0)
    values = Tensor(rng.normal(size=(5000, 32)), requires_grad=True)
    logits = Tensor(rng.normal(size=5000), requires_grad=True)
    segments = rng.integers(500, size=5000)

    def run():
        alpha = segment_softmax(logits, segments, 500)
        from repro.autograd import ops

        weighted = ops.mul(values, ops.reshape(alpha, (5000, 1)))
        out = segment_sum(weighted, segments, 500)
        out.sum().backward()

    benchmark(run)
