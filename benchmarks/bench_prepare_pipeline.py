"""Prepare-pipeline microbenchmark: extraction → line graph → plan → forward.

Tracks the per-stage cost of sample preparation — the serving and eval hot
path (PR 1 vectorized extraction; this PR vectorizes the relation-view
transform and Algorithm-1 plan compilation) — and gates the end-to-end
speedup of the vectorized pipeline over the legacy pure-Python reference
path on the 2-hop ranking workload.  Results are archived as a rendered
table; absolute trajectory numbers live in the
``python -m repro.benchmarks run --workload prepare`` record.

``REPRO_BENCH_MIN_PREPARE_SPEEDUP`` overrides the asserted floor (default
3x; CI sets a lower one because shared runners time noisily).
"""

import os

import numpy as np

from repro.benchmarks.timing import best_of_interleaved, timed
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import KnowledgeGraph, build_partial_benchmark, ranking_candidates
from repro.subgraph import (
    build_message_plans_many,
    build_relational_graphs_many,
    extract_subgraphs_many,
    legacy_build_message_plan,
    legacy_build_relational_graph,
    legacy_extract_enclosing_subgraph,
)
from repro.utils.seeding import seeded_rng

NUM_HOPS = 2
NUM_LAYERS = 2


def _bench_graph():
    settings = bench_settings()
    return build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )


def _ranking_workload(bench, num_queries=8, num_negatives=49):
    """Per query, the truth plus ``num_negatives`` one-side corruptions."""
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool = sorted(graph.triples.entities())
    queries = (
        list(bench.test_triples)[:num_queries]
        or list(bench.train_triples)[:num_queries]
    )
    workload = []
    for i, query in enumerate(queries):
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng,
                num_negatives=num_negatives,
                candidate_entities=pool,
                corrupt_head=bool(i % 2),
            )
        )
    return graph, workload


def test_perf_prepare_pipeline_speedup(emit):
    """End-to-end + per-stage legacy-vs-vectorized prepare timings."""
    bench = _bench_graph()
    graph, workload = _ranking_workload(bench)

    # Fresh graph for the vectorized path so CSR build + cache warm-up are
    # included in the warm-up run, then steady state is measured.
    csr_graph = KnowledgeGraph(graph.triples, graph.num_entities, graph.num_relations)
    subgraphs = extract_subgraphs_many(csr_graph, workload, NUM_HOPS)
    relationals = build_relational_graphs_many(subgraphs)

    # --- per-stage contenders (identical inputs per stage) --------------
    def legacy_extract():
        for triple in workload:
            legacy_extract_enclosing_subgraph(graph, triple, NUM_HOPS)

    def vectorized_extract():
        extract_subgraphs_many(csr_graph, workload, NUM_HOPS)

    def legacy_linegraph():
        for sub in subgraphs:
            legacy_build_relational_graph(sub)

    def vectorized_linegraph():
        build_relational_graphs_many(subgraphs)

    def legacy_plan():
        for rg in relationals:
            legacy_build_message_plan(rg, NUM_LAYERS)

    def vectorized_plan():
        build_message_plans_many(relationals, NUM_LAYERS)

    # --- end-to-end prepare contenders ----------------------------------
    def legacy_pipeline():
        for triple in workload:
            sub = legacy_extract_enclosing_subgraph(graph, triple, NUM_HOPS)
            legacy_build_message_plan(
                legacy_build_relational_graph(sub), NUM_LAYERS
            )

    def vectorized_pipeline():
        subs = extract_subgraphs_many(csr_graph, workload, NUM_HOPS)
        build_message_plans_many(build_relational_graphs_many(subs), NUM_LAYERS)

    legacy_pipeline()  # warm (adjacency lists)
    vectorized_pipeline()  # warm (CSR + neighborhood cache)
    stage_times = {
        "extract": best_of_interleaved(3, legacy_extract, vectorized_extract),
        "linegraph": best_of_interleaved(3, legacy_linegraph, vectorized_linegraph),
        "plan": best_of_interleaved(3, legacy_plan, vectorized_plan),
    }
    t_legacy, t_new = best_of_interleaved(3, legacy_pipeline, vectorized_pipeline)
    speedup = t_legacy / t_new

    # Forward stage (vectorized only): fused batched scoring over the
    # prepared plans, reported for the full pipeline picture.
    model = RMPI(
        bench.num_relations, seeded_rng(0), RMPIConfig(dropout=0.0)
    )
    model.eval()
    samples = model.prepare_many(csr_graph, workload[:64])
    model.score_samples_batched(samples)  # warm
    t_forward, _ = timed(
        lambda: model.score_samples_batched(samples), "bench.prepare.forward"
    )

    n = len(workload)
    lines = [
        "prepare pipeline (2-hop ranking workload, "
        f"{n} candidate triples, graph={graph!r})",
        f"  {'stage':<12}{'legacy':>12}{'vectorized':>12}{'speedup':>10}",
    ]
    for stage, (t_l, t_v) in stage_times.items():
        lines.append(
            f"  {stage:<12}{t_l * 1e3:>10.1f}ms{t_v * 1e3:>10.1f}ms"
            f"{t_l / t_v:>9.1f}x"
        )
    lines += [
        f"  {'end-to-end':<12}{t_legacy * 1e3:>10.1f}ms{t_new * 1e3:>10.1f}ms"
        f"{speedup:>9.1f}x",
        f"  fused forward (64 samples): {t_forward * 1e3:8.1f} ms",
    ]
    emit("bench_prepare_pipeline", "\n".join(lines))

    floor = float(os.environ.get("REPRO_BENCH_MIN_PREPARE_SPEEDUP", "3.0"))
    assert speedup >= floor, (
        f"expected >={floor}x end-to-end prepare speedup, got {speedup:.2f}x"
    )


def test_perf_vectorized_prepare(benchmark):
    """Steady-state timing of the full vectorized prepare pipeline."""
    bench = _bench_graph()
    graph, workload = _ranking_workload(bench)
    extract_subgraphs_many(graph, workload, NUM_HOPS)  # warm CSR + cache

    def prepare_all():
        subs = extract_subgraphs_many(graph, workload, NUM_HOPS)
        build_message_plans_many(build_relational_graphs_many(subs), NUM_LAYERS)

    benchmark(prepare_all)
