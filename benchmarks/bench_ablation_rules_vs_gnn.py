"""Ablation — statistical rule mining vs subgraph GNN reasoning.

The paper (and GraIL before it) justifies subgraph message passing by its
advantage over statistical rule induction ("the comparisons with
traditional rule learning based methods are omitted as the poorer results
than GraIL", §IV-C1).  This bench verifies that claim on our benchmarks:
RuleN-style mined Horn rules vs GraIL vs RMPI-NE on partially inductive
completion.
"""

import numpy as np

from repro.baselines import mine_and_build_scorer
from repro.eval import evaluate_both
from repro.experiments import bench_settings, format_table, run_experiment
from repro.kg import build_partial_benchmark


def test_ablation_rules_vs_gnn(benchmark, emit):
    settings = bench_settings()
    training = settings.training_config()

    def run():
        rows = []
        for family, version in (("NELL-995", 2), ("FB15k-237", 1)):
            bench = build_partial_benchmark(
                family, version, scale=settings.scale, seed=settings.seed
            )
            scorer = mine_and_build_scorer(
                bench.train_graph, min_support=2, min_confidence=0.05
            )
            report = evaluate_both(
                scorer,
                bench.test_graph,
                bench.test_triples,
                seed=settings.seed,
                num_negatives=settings.num_negatives,
            )
            metrics = report.as_dict()
            rows.append(
                [
                    "RuleN-style",
                    bench.name,
                    metrics["AUC-PR"],
                    metrics["Hits@10"],
                ]
            )
            for method in ("GraIL", "RMPI-NE"):
                result = run_experiment(
                    bench,
                    method,
                    training,
                    seed=settings.seed,
                    num_negatives=settings.num_negatives,
                )
                rows.append(
                    [
                        method,
                        bench.name,
                        result.metrics["AUC-PR"],
                        result.metrics["Hits@10"],
                    ]
                )
        return format_table(
            ["method", "benchmark", "AUC-PR", "Hits@10"],
            rows,
            title="Rule mining vs subgraph GNN reasoning (partially inductive)",
        )

    emit("ablation_rules_vs_gnn", benchmark.pedantic(run, rounds=1, iterations=1))
