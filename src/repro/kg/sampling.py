"""Negative sampling.

Following the paper (§III-E and §IV-B): a negative triple is generated from a
positive one by replacing its head *or* tail with a uniformly sampled random
entity; we filter candidates that collide with known facts so negatives are
(very likely) genuinely false.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.kg.triples import Triple, TripleSet


def corrupt_triple(
    triple: Triple,
    num_entities: int,
    rng: np.random.Generator,
    known: Optional[Set[Triple]] = None,
    candidate_entities: Optional[Sequence[int]] = None,
    max_tries: int = 100,
) -> Triple:
    """Return one corrupted copy of ``triple`` (head- or tail-replaced).

    ``candidate_entities`` restricts replacement ids (e.g. to the testing
    graph's entity set); ``known`` facts are avoided when possible.
    """
    head, rel, tail = triple
    known = known or set()
    if max_tries < 1:
        raise ValueError(f"max_tries must be >= 1, got {max_tries}")
    for _ in range(max_tries):
        if candidate_entities is not None:
            replacement = int(candidate_entities[rng.integers(len(candidate_entities))])
        else:
            replacement = int(rng.integers(num_entities))
        corrupt_head = bool(rng.integers(2))
        candidate = (replacement, rel, tail) if corrupt_head else (head, rel, replacement)
        if candidate != triple and candidate not in known:
            return candidate
    # Extremely dense neighborhoods: accept a possibly-true corruption rather
    # than loop forever (matches common practice in KGC implementations).
    return candidate


def negative_triples(
    positives: TripleSet,
    num_entities: int,
    rng: np.random.Generator,
    known: Optional[Set[Triple]] = None,
    candidate_entities: Optional[Sequence[int]] = None,
    per_positive: int = 1,
) -> List[Triple]:
    """One (or more) negatives per positive, order-aligned with ``positives``."""
    known = known if known is not None else set(positives)
    result: List[Triple] = []
    for triple in positives:
        for _ in range(per_positive):
            result.append(
                corrupt_triple(
                    triple,
                    num_entities,
                    rng,
                    known=known,
                    candidate_entities=candidate_entities,
                )
            )
    return result


def ranking_candidates(
    triple: Triple,
    num_entities: int,
    rng: np.random.Generator,
    num_negatives: int = 49,
    known: Optional[Set[Triple]] = None,
    candidate_entities: Optional[Sequence[int]] = None,
    corrupt_head: bool = False,
) -> List[Triple]:
    """The entity-prediction candidate list: ground truth + ``num_negatives``
    corrupted candidates (paper §IV-B ranks against 49 sampled negatives).

    The ground truth is always at index 0; callers should shuffle or use
    rank-of-index-0 conventions explicitly.

    The ground truth can never reappear as a "negative": sampling the true
    head/tail entity reproduces ``triple`` itself, and ``seen`` starts out
    containing the truth, so that draw is rejected — otherwise the
    duplicate would tie with index 0 and make ``rank_of_first`` ambiguous.
    Candidates are pairwise distinct for the same reason.  (This has always
    held; it is pinned by regression tests rather than changed here.)
    """
    head, rel, tail = triple
    known = known or set()
    candidates: List[Triple] = [triple]
    seen: Set[Triple] = {triple}
    tries = 0
    limit = num_negatives * 50 + 100
    while len(candidates) - 1 < num_negatives and tries < limit:
        tries += 1
        if candidate_entities is not None:
            replacement = int(candidate_entities[rng.integers(len(candidate_entities))])
        else:
            replacement = int(rng.integers(num_entities))
        corrupted = (replacement, rel, tail) if corrupt_head else (head, rel, replacement)
        if corrupted in seen or corrupted in known:
            continue
        seen.add(corrupted)
        candidates.append(corrupted)
    return candidates
