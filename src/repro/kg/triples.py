"""Triple containers.

A triple is ``(head, relation, tail)`` with integer ids.  :class:`TripleSet`
wraps an ``(n, 3)`` int64 array with set-like membership and convenience
accessors; it is the exchange format between the KG substrate, subgraph
extraction, and the evaluation protocols.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Set, Tuple

import numpy as np

Triple = Tuple[int, int, int]


class TripleSet:
    """An immutable collection of (h, r, t) integer triples."""

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        rows = [tuple(int(x) for x in t) for t in triples]
        for row in rows:
            if len(row) != 3:
                raise ValueError(f"triple must have 3 elements, got {row}")
        if rows:
            self._array = np.asarray(rows, dtype=np.int64)
        else:
            self._array = np.empty((0, 3), dtype=np.int64)
        # Built lazily (first membership/equality test): the vectorized
        # extraction engine creates many TripleSets that are only ever read
        # as arrays, and the per-row python set is the dominant cost there.
        self._set_cache: Optional[Set[Triple]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_array(cls, array: np.ndarray) -> "TripleSet":
        array = np.asarray(array, dtype=np.int64)
        if array.ndim != 2 or array.shape[1] != 3:
            raise ValueError(f"expected (n, 3) array, got shape {array.shape}")
        return cls.from_trusted_array(np.array(array, dtype=np.int64))

    @classmethod
    def from_trusted_array(cls, array: np.ndarray) -> "TripleSet":
        """Fast constructor: adopt an ``(n, 3)`` int64 array without the
        per-row python conversion.  The caller must not mutate ``array``
        afterwards (same copy-on-write discipline as :attr:`array`)."""
        self = cls.__new__(cls)
        self._array = array
        self._set_cache = None
        return self

    @property
    def _set(self) -> Set[Triple]:
        if self._set_cache is None:
            self._set_cache = {
                (row[0], row[1], row[2]) for row in self._array.tolist()
            }
        return self._set_cache

    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The underlying (n, 3) int64 array (copy-on-write discipline:
        callers must not mutate)."""
        return self._array

    @property
    def heads(self) -> np.ndarray:
        return self._array[:, 0]

    @property
    def relations(self) -> np.ndarray:
        return self._array[:, 1]

    @property
    def tails(self) -> np.ndarray:
        return self._array[:, 2]

    def entities(self) -> Set[int]:
        """All entity ids occurring as head or tail."""
        if len(self._array) == 0:
            return set()
        return set(self._array[:, 0].tolist()) | set(self._array[:, 2].tolist())

    def relation_ids(self) -> Set[int]:
        if len(self._array) == 0:
            return set()
        return set(self._array[:, 1].tolist())

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._array)

    def __iter__(self) -> Iterator[Triple]:
        for row in self._array:
            yield (int(row[0]), int(row[1]), int(row[2]))

    def __contains__(self, triple: Triple) -> bool:
        return tuple(int(x) for x in triple) in self._set

    def __getitem__(self, index: int) -> Triple:
        row = self._array[index]
        return (int(row[0]), int(row[1]), int(row[2]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleSet):
            return NotImplemented
        return self._set == other._set

    def __repr__(self) -> str:
        return f"TripleSet(n={len(self)})"

    # ------------------------------------------------------------------
    def union(self, other: "TripleSet") -> "TripleSet":
        return TripleSet(self._set | other._set)

    def difference(self, other: "TripleSet") -> "TripleSet":
        return TripleSet(self._set - other._set)

    def filter(self, predicate) -> "TripleSet":
        """Keep triples where ``predicate((h, r, t))`` is truthy."""
        return TripleSet(t for t in self if predicate(t))

    def filter_relations(self, allowed: Set[int]) -> "TripleSet":
        return self.filter(lambda t: t[1] in allowed)

    def sample(self, count: int, rng: np.random.Generator) -> "TripleSet":
        """Uniform sample without replacement (count capped at len)."""
        count = min(count, len(self))
        index = rng.choice(len(self._array), size=count, replace=False)
        return TripleSet.from_array(self._array[index])
