"""Stable string hashing for seeding.

Python's built-in ``hash()`` on strings is randomised per process
(PYTHONHASHSEED), which silently breaks cross-run reproducibility of any
RNG seeded from it.  Every seed derived from a name must go through
:func:`stable_hash` instead.
"""

from __future__ import annotations

import zlib


def stable_hash(text: str, mask: int = 0xFFFF) -> int:
    """Deterministic (process-independent) hash of ``text`` in [0, mask]."""
    return zlib.crc32(text.encode("utf-8")) & mask
