"""Inductive benchmark suites.

This module mirrors the paper's benchmark construction (§IV-A) on synthetic
analogues of WN18RR / FB15k-237 / NELL-995:

* **Partially inductive** (Table Ia): per family, four versions ``v1..v4``
  with a training graph and a testing graph over *disjoint entity sets* but
  the *same* relation vocabulary.  80% of the training graph's triples are
  training targets, 10% validation; 10% of the testing graph's triples are
  held out as test targets (removed from the testing context graph).
* **Fully inductive** (Table Ib): re-combinations ``family.vi.vj`` that keep
  vi's training graph and build the testing graph with vj's (larger)
  relation set, yielding both a ``semi`` testing graph (seen + unseen
  relations) and a ``fully`` testing graph (unseen relations only).
* **Ext benchmarks** (Tables IV/V, after MaKEr): the testing graph *extends*
  the training graph with new entities and new relations; targets are split
  into ``u_ent`` / ``u_rel`` / ``u_both`` categories.

All sizes scale with the ``scale`` parameter so the same code produces
laptop-size graphs (default) or larger ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.kg.generator import generate_instance, split_triples
from repro.kg.hashing import stable_hash
from repro.kg.graph import KnowledgeGraph
from repro.kg.ontology import Ontology, build_ontology
from repro.kg.triples import TripleSet
from repro.utils.seeding import seeded_rng


@dataclass(frozen=True)
class FamilyConfig:
    """Per-family shape parameters (paper Table Ia, to be scaled)."""

    name: str
    relations: Tuple[int, int, int, int]
    train_entities: Tuple[int, int, int, int]
    train_triples: Tuple[int, int, int, int]
    test_entities: Tuple[int, int, int, int]
    test_triples: Tuple[int, int, int, int]
    num_concepts: int
    extension_relations: int  # extra relations reserved for Ext benchmarks
    ontology_seed: int


FAMILIES: Dict[str, FamilyConfig] = {
    "WN18RR": FamilyConfig(
        name="WN18RR",
        relations=(9, 10, 11, 9),
        train_entities=(2746, 6954, 12078, 3861),
        train_triples=(6678, 18968, 32150, 9842),
        test_entities=(922, 2757, 5084, 7084),
        test_triples=(1991, 4863, 7470, 15157),
        num_concepts=6,
        extension_relations=4,
        ontology_seed=11,
    ),
    "FB15k-237": FamilyConfig(
        name="FB15k-237",
        relations=(45, 50, 54, 55),  # paper: 180/200/215/219, scaled 4x down
        train_entities=(1594, 2608, 3668, 4707),
        train_triples=(5226, 12085, 22394, 33916),
        test_entities=(1093, 1660, 2501, 3051),
        test_triples=(2404, 5092, 9137, 14554),
        num_concepts=14,
        extension_relations=10,
        ontology_seed=23,
    ),
    "NELL-995": FamilyConfig(
        name="NELL-995",
        relations=(14, 44, 71, 38),  # paper: 14/88/142/76, scaled 2x down
        train_entities=(3103, 2564, 4647, 2092),
        train_triples=(5540, 10109, 20117, 9289),
        test_entities=(225, 2086, 3566, 2795),
        test_triples=(1034, 5521, 9668, 8520),
        num_concepts=10,
        extension_relations=12,
        ontology_seed=37,
    ),
}


@dataclass(frozen=True)
class InductiveBenchmark:
    """A partially inductive benchmark (unseen entities, shared relations)."""

    name: str
    ontology: Ontology
    num_relations: int
    train_graph: KnowledgeGraph
    train_triples: TripleSet
    valid_triples: TripleSet
    test_graph: KnowledgeGraph
    test_triples: TripleSet
    seen_relations: FrozenSet[int]

    def unseen_test_relations(self) -> FrozenSet[int]:
        present = self.test_graph.triples.relation_ids() | self.test_triples.relation_ids()
        return frozenset(present - self.seen_relations)

    def statistics(self) -> Dict[str, Dict[str, int]]:
        """Table I-style statistics for the train and test graphs."""
        train_all = self.train_graph.statistics()
        test_all = {
            "relations": len(
                self.test_graph.triples.relation_ids() | self.test_triples.relation_ids()
            ),
            "entities": len(
                self.test_graph.triples.entities() | self.test_triples.entities()
            ),
            "triples": len(self.test_graph.triples) + len(self.test_triples),
        }
        return {"train": train_all, "test": test_all}


@dataclass(frozen=True)
class FullInductiveBenchmark:
    """A fully inductive benchmark with semi and fully unseen testing graphs."""

    name: str
    ontology: Ontology
    num_relations: int
    train_graph: KnowledgeGraph
    train_triples: TripleSet
    valid_triples: TripleSet
    semi_test_graph: KnowledgeGraph
    semi_test_triples: TripleSet
    fully_test_graph: KnowledgeGraph
    fully_test_triples: TripleSet
    seen_relations: FrozenSet[int]

    def unseen_relations(self) -> FrozenSet[int]:
        present = (
            self.semi_test_graph.triples.relation_ids()
            | self.semi_test_triples.relation_ids()
        )
        return frozenset(present - self.seen_relations)

    def as_partial(self, setting: str) -> InductiveBenchmark:
        """View one testing setting ('semi' or 'fully') as a plain benchmark."""
        if setting == "semi":
            graph, triples = self.semi_test_graph, self.semi_test_triples
        elif setting == "fully":
            graph, triples = self.fully_test_graph, self.fully_test_triples
        else:
            raise ValueError(f"unknown setting {setting!r}")
        return InductiveBenchmark(
            name=f"{self.name}[{setting}]",
            ontology=self.ontology,
            num_relations=self.num_relations,
            train_graph=self.train_graph,
            train_triples=self.train_triples,
            valid_triples=self.valid_triples,
            test_graph=graph,
            test_triples=triples,
            seen_relations=self.seen_relations,
        )


@dataclass(frozen=True)
class ExtBenchmark:
    """A MaKEr-style extension benchmark with categorised targets."""

    name: str
    ontology: Ontology
    num_relations: int
    num_train_entities: int
    train_graph: KnowledgeGraph
    train_triples: TripleSet
    valid_triples: TripleSet
    test_graph: KnowledgeGraph
    targets: Dict[str, TripleSet]  # keys: u_ent, u_rel, u_both
    seen_relations: FrozenSet[int]
    seen_entities: FrozenSet[int]


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------
_ONTOLOGY_CACHE: Dict[Tuple[str, int], Ontology] = {}


def family_ontology(family: str) -> Ontology:
    """The shared generative ontology of a dataset family (cached)."""
    config = FAMILIES[family]
    key = (family, config.ontology_seed)
    if key not in _ONTOLOGY_CACHE:
        max_relations = max(config.relations)
        _ONTOLOGY_CACHE[key] = build_ontology(
            num_relations=max_relations + config.extension_relations,
            num_concepts=config.num_concepts,
            num_extension_relations=config.extension_relations,
            seed=config.ontology_seed,
        )
    return _ONTOLOGY_CACHE[key]


def _scaled(value: int, scale: float, minimum: int) -> int:
    return max(minimum, int(round(value * scale)))


def _make_graph(triples: TripleSet, num_entities: int, num_relations: int) -> KnowledgeGraph:
    return KnowledgeGraph(triples, num_entities=num_entities, num_relations=num_relations)


def _holdout_split(
    triples: TripleSet, rng: np.random.Generator, min_targets: int = 25
) -> Tuple[TripleSet, TripleSet]:
    """Split a testing graph into (context, targets).

    The paper holds out 10% of the testing graph as prediction targets; on
    small scaled graphs 10% is too few for stable metrics, so we hold out at
    least ``min_targets`` (capped at a third of the graph).
    """
    n = len(triples)
    target_count = min(max(int(round(0.1 * n)), min_targets), max(1, n // 3))
    context_fraction = 1.0 - target_count / max(n, 1)
    context, targets = split_triples(triples, (context_fraction,), rng)
    return context, targets


def build_partial_benchmark(
    family: str,
    version: int,
    scale: float = 0.08,
    seed: int = 0,
) -> InductiveBenchmark:
    """Build ``family.v{version}`` (version in 1..4), scaled."""
    if version not in (1, 2, 3, 4):
        raise ValueError("version must be in 1..4")
    config = FAMILIES[family]
    ontology = family_ontology(family)
    index = version - 1
    relations = set(range(config.relations[index]))
    rng = seeded_rng((seed, stable_hash(family), version))

    n_train_ent = _scaled(config.train_entities[index], scale, 40)
    n_train_base = _scaled(config.train_triples[index], scale * 0.55, 60)
    train = generate_instance(ontology, relations, n_train_ent, n_train_base, rng)

    n_test_ent = _scaled(config.test_entities[index], scale, 60)
    n_test_base = _scaled(config.test_triples[index], scale * 0.55, 60)
    test = generate_instance(ontology, relations, n_test_ent, n_test_base, rng)

    train_targets, valid_targets, _rest = split_triples(train.triples, (0.8, 0.1), rng)
    test_context, test_targets = _holdout_split(test.triples, rng)

    train_graph = _make_graph(train.triples, n_train_ent, ontology.num_relations)
    test_graph = _make_graph(test_context, n_test_ent, ontology.num_relations)
    return InductiveBenchmark(
        name=f"{family}.v{version}",
        ontology=ontology,
        num_relations=ontology.num_relations,
        train_graph=train_graph,
        train_triples=train_targets,
        valid_triples=valid_targets,
        test_graph=test_graph,
        test_triples=test_targets,
        seen_relations=frozenset(train.triples.relation_ids()),
    )


def build_full_benchmark(
    family: str,
    train_version: int,
    test_version: int,
    scale: float = 0.08,
    seed: int = 0,
    min_fully_targets: int = 20,
) -> FullInductiveBenchmark:
    """Build ``family.v{i}.v{j}``: vi's training graph, vj's relation set for
    the testing graph (vj must have strictly more relations)."""
    config = FAMILIES[family]
    if config.relations[test_version - 1] <= config.relations[train_version - 1]:
        raise ValueError("test version must contribute extra relations")
    ontology = family_ontology(family)
    rng = seeded_rng((seed, stable_hash(family), train_version, test_version))

    train_relations = set(range(config.relations[train_version - 1]))
    test_relations = set(range(config.relations[test_version - 1]))

    i = train_version - 1
    n_train_ent = _scaled(config.train_entities[i], scale, 40)
    n_train_base = _scaled(config.train_triples[i], scale * 0.55, 60)
    train = generate_instance(ontology, train_relations, n_train_ent, n_train_base, rng)
    seen = frozenset(train.triples.relation_ids())

    j = test_version - 1
    n_test_ent = _scaled(config.test_entities[j], scale, 60)
    n_test_base = _scaled(config.test_triples[j], scale * 0.55, 60)
    test = generate_instance(ontology, test_relations, n_test_ent, n_test_base, rng)

    train_targets, valid_targets, _rest = split_triples(train.triples, (0.8, 0.1), rng)
    semi_context, semi_targets = _holdout_split(test.triples, rng)

    # Fully-unseen testing graph: drop every triple with a seen relation.
    fully_context = semi_context.filter(lambda t: t[1] not in seen)
    fully_targets = semi_targets.filter(lambda t: t[1] not in seen)
    if len(fully_targets) < min_fully_targets and len(fully_context) > min_fully_targets:
        # Move extra unseen-relation triples from context to targets.
        needed = min_fully_targets - len(fully_targets)
        moved = fully_context.sample(needed, rng)
        fully_targets = fully_targets.union(moved)
        fully_context = fully_context.difference(moved)

    name = f"{family}.v{train_version}.v{test_version}"
    return FullInductiveBenchmark(
        name=name,
        ontology=ontology,
        num_relations=ontology.num_relations,
        train_graph=_make_graph(train.triples, n_train_ent, ontology.num_relations),
        train_triples=train_targets,
        valid_triples=valid_targets,
        semi_test_graph=_make_graph(semi_context, n_test_ent, ontology.num_relations),
        semi_test_triples=semi_targets,
        fully_test_graph=_make_graph(fully_context, n_test_ent, ontology.num_relations),
        fully_test_triples=fully_targets,
        seen_relations=seen,
    )


# The paper's four re-combined fully-inductive benchmarks (Table Ib).
FULL_BENCHMARK_SPECS: List[Tuple[str, int, int]] = [
    ("NELL-995", 1, 3),
    ("NELL-995", 2, 3),
    ("NELL-995", 4, 3),
    ("FB15k-237", 1, 4),
]


def build_ext_benchmark(
    family: str,
    scale: float = 0.08,
    seed: int = 0,
    targets_per_category: int = 40,
) -> ExtBenchmark:
    """Build ``family-Ext`` after MaKEr: the testing graph extends the
    training graph with new entities and the family's extension relations.

    Target categories:

    * ``u_ent``  — both entities unseen, relation seen;
    * ``u_rel``  — both entities seen, relation unseen;
    * ``u_both`` — relation unseen and at least one entity unseen.
    """
    config = FAMILIES[family]
    ontology = family_ontology(family)
    rng = seeded_rng((seed, stable_hash(family), 99))

    core_relations = set(range(config.relations[0]))
    ext_relations = set(
        range(ontology.num_relations - config.extension_relations, ontology.num_relations)
    )
    all_relations = core_relations | ext_relations

    n_train_ent = _scaled(config.train_entities[0], scale, 60)
    n_new_ent = max(30, n_train_ent // 2)
    total_entities = n_train_ent + n_new_ent
    n_base = _scaled(config.train_triples[0], scale * 0.9, 120)
    combined = generate_instance(ontology, all_relations, total_entities, n_base, rng)

    # First pass: the training graph is everything inside the designated
    # entity/relation region.
    train_region = combined.triples.filter(
        lambda t: t[0] < n_train_ent and t[2] < n_train_ent and t[1] in core_relations
    )
    # The seen sets are what the training graph *actually* contains — a core
    # relation or a low-id entity that never occurs in the train region is
    # unseen in every sense that matters to a model.
    seen_rel = train_region.relation_ids()
    seen_ent = train_region.entities()

    def category(triple) -> str:
        head, rel, tail = triple
        head_seen = head in seen_ent
        tail_seen = tail in seen_ent
        rel_seen = rel in seen_rel
        if rel_seen and head_seen and tail_seen:
            return "seen"
        if rel_seen and not head_seen and not tail_seen:
            return "u_ent"
        if not rel_seen and head_seen and tail_seen:
            return "u_rel"
        if not rel_seen:
            return "u_both"
        return "bridge"  # seen relation, exactly one unseen entity: context only

    buckets: Dict[str, List] = {"seen": [], "u_ent": [], "u_rel": [], "u_both": [], "bridge": []}
    for triple in combined.triples:
        if triple in train_region:
            continue
        buckets[category(triple)].append(triple)
    train_targets, valid_targets, _rest = split_triples(train_region, (0.7, 0.1), rng)

    targets: Dict[str, TripleSet] = {}
    held_out: List = []
    for key in ("u_ent", "u_rel", "u_both"):
        pool = TripleSet(buckets[key])
        picked = pool.sample(min(targets_per_category, max(1, len(pool) // 2)), rng)
        targets[key] = picked
        held_out.extend(picked)

    test_context = combined.triples.difference(TripleSet(held_out))
    seen = frozenset(seen_rel)
    return ExtBenchmark(
        name=f"{family}-Ext",
        ontology=ontology,
        num_relations=ontology.num_relations,
        num_train_entities=n_train_ent,
        train_graph=_make_graph(train_region, n_train_ent, ontology.num_relations),
        train_triples=train_targets,
        valid_triples=valid_targets,
        test_graph=_make_graph(test_context, total_entities, ontology.num_relations),
        targets=targets,
        seen_relations=seen,
        seen_entities=frozenset(seen_ent),
    )
