"""Graph analysis utilities: degree/relation statistics, connectivity.

Supports the benchmark documentation (dataset characterisation) and
diagnosing why subgraph extraction behaves differently across dataset
families (e.g. sparse WN-like graphs → many empty enclosing subgraphs).
Uses networkx for component analysis.
"""

from __future__ import annotations

from typing import Dict

import networkx as nx
import numpy as np

from repro.kg.graph import KnowledgeGraph


def degree_statistics(graph: KnowledgeGraph) -> Dict[str, float]:
    """Mean/median/max undirected degree over entities present in the graph."""
    entities = sorted(graph.triples.entities())
    if not entities:
        return {"mean": 0.0, "median": 0.0, "max": 0.0}
    degrees = np.asarray([graph.degree(e) for e in entities], dtype=np.float64)  # repro-lint: disable=RL001 plain-numpy dataset statistics, never enter the autograd engine
    return {
        "mean": float(degrees.mean()),
        "median": float(np.median(degrees)),
        "max": float(degrees.max()),
    }


def relation_frequencies(graph: KnowledgeGraph) -> Dict[int, int]:
    """Triple count per relation id (only relations present)."""
    counts = np.bincount(graph.triples.relations, minlength=graph.num_relations)
    return {int(r): int(c) for r, c in enumerate(counts) if c > 0}


def to_networkx(graph: KnowledgeGraph) -> nx.MultiDiGraph:
    """The graph as a networkx MultiDiGraph with ``relation`` edge keys."""
    g = nx.MultiDiGraph()
    g.add_nodes_from(graph.triples.entities())
    for head, rel, tail in graph.triples:
        g.add_edge(head, tail, relation=rel)
    return g


def connectivity_summary(graph: KnowledgeGraph) -> Dict[str, float]:
    """Weakly-connected component structure of the graph."""
    g = to_networkx(graph)
    if g.number_of_nodes() == 0:
        return {"components": 0, "largest_fraction": 0.0}
    components = list(nx.weakly_connected_components(g))
    largest = max(len(c) for c in components)
    return {
        "components": float(len(components)),
        "largest_fraction": largest / g.number_of_nodes(),
    }


def density(graph: KnowledgeGraph) -> float:
    """Triples per entity — the sparsity driver of empty enclosing subgraphs."""
    num_entities = len(graph.triples.entities())
    if num_entities == 0:
        return 0.0
    return len(graph.triples) / num_entities


def characterise(graph: KnowledgeGraph) -> Dict[str, float]:
    """One-stop summary used by docs and dataset benches."""
    summary: Dict[str, float] = {"density": density(graph)}
    summary.update({f"degree_{k}": v for k, v in degree_statistics(graph).items()})
    summary.update(connectivity_summary(graph))
    summary["relations_present"] = float(len(relation_frequencies(graph)))
    return summary
