"""Bidirectional string<->integer vocabularies for entities and relations."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List


class Vocabulary:
    """Assigns stable contiguous integer ids to string symbols.

    Ids are assigned in insertion order, so building a vocabulary from a
    deterministic symbol stream is itself deterministic.
    """

    def __init__(self, symbols: Iterable[str] = ()) -> None:
        self._symbol_to_id: Dict[str, int] = {}
        self._id_to_symbol: List[str] = []
        for symbol in symbols:
            self.add(symbol)

    def add(self, symbol: str) -> int:
        """Insert ``symbol`` if new; return its id either way."""
        existing = self._symbol_to_id.get(symbol)
        if existing is not None:
            return existing
        new_id = len(self._id_to_symbol)
        self._symbol_to_id[symbol] = new_id
        self._id_to_symbol.append(symbol)
        return new_id

    def id_of(self, symbol: str) -> int:
        return self._symbol_to_id[symbol]

    def symbol_of(self, index: int) -> str:
        return self._id_to_symbol[index]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._symbol_to_id

    def __len__(self) -> int:
        return len(self._id_to_symbol)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_symbol)

    def symbols(self) -> List[str]:
        return list(self._id_to_symbol)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._id_to_symbol == other._id_to_symbol

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"
