"""Benchmark (de)serialisation in the GraIL directory format.

The GraIL benchmarks (WN18RR_v1 ... NELL-995_v4_ind) ship as directories of
tab-separated triple files.  This module writes our synthetic benchmarks in
exactly that layout and — more importantly for users with network access —
loads *real* GraIL benchmark directories into
:class:`~repro.kg.benchmarks.InductiveBenchmark` objects, so every model and
evaluation protocol in this repository runs unchanged on the original data.

Layout::

    <root>/
        train/train.txt      training graph triples (context)
        train/valid.txt      validation targets
        test/train.txt       testing graph triples (context)
        test/test.txt        testing targets

Entity vocabularies are kept separate between the train and test sides
(disjoint entities — the inductive setting); the relation vocabulary is
shared.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.kg.benchmarks import InductiveBenchmark
from repro.kg.graph import KnowledgeGraph
from repro.kg.io import load_triples_tsv, save_triples_tsv
from repro.kg.ontology import Ontology, RelationSignature
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary
from repro.utils.seeding import seeded_rng


def save_benchmark(benchmark: InductiveBenchmark, root: str) -> None:
    """Write a benchmark as a GraIL-format directory tree.

    Entity/relation symbols are synthesised from ids (``train_e12``,
    ``test_e7``, ``r3``) since synthetic benchmarks have no names.
    """
    relation_vocab = Vocabulary(f"r{r}" for r in range(benchmark.num_relations))

    train_entities = Vocabulary(
        f"train_e{e}" for e in range(benchmark.train_graph.num_entities)
    )
    test_entities = Vocabulary(
        f"test_e{e}" for e in range(benchmark.test_graph.num_entities)
    )

    save_triples_tsv(
        os.path.join(root, "train", "train.txt"),
        benchmark.train_graph.triples,
        train_entities,
        relation_vocab,
    )
    save_triples_tsv(
        os.path.join(root, "train", "valid.txt"),
        benchmark.valid_triples,
        train_entities,
        relation_vocab,
    )
    save_triples_tsv(
        os.path.join(root, "test", "train.txt"),
        benchmark.test_graph.triples,
        test_entities,
        relation_vocab,
    )
    save_triples_tsv(
        os.path.join(root, "test", "test.txt"),
        benchmark.test_triples,
        test_entities,
        relation_vocab,
    )


def load_benchmark(
    root: str,
    name: Optional[str] = None,
    train_fraction: float = 0.8,
    seed: int = 0,
) -> InductiveBenchmark:
    """Load a GraIL-format directory into an :class:`InductiveBenchmark`.

    Works both on directories written by :func:`save_benchmark` and on the
    original GraIL releases (``<X>_vN`` + ``<X>_vN_ind`` merged under
    ``train/`` and ``test/`` as described in the module docstring).

    If ``train/valid.txt`` is absent, ``train_fraction`` of the training
    graph is used as training targets and the rest as validation targets.
    """
    import numpy as np

    relation_vocab = Vocabulary()
    train_entities = Vocabulary()
    test_entities = Vocabulary()

    train_graph_triples, train_entities, relation_vocab = load_triples_tsv(
        os.path.join(root, "train", "train.txt"), train_entities, relation_vocab
    )
    valid_path = os.path.join(root, "train", "valid.txt")
    if os.path.exists(valid_path):
        valid_triples, train_entities, relation_vocab = load_triples_tsv(
            valid_path, train_entities, relation_vocab
        )
        train_targets = train_graph_triples
    else:
        rng = seeded_rng(seed)
        order = rng.permutation(len(train_graph_triples))
        cut = int(train_fraction * len(train_graph_triples))
        array = train_graph_triples.array[order]
        train_targets = TripleSet.from_array(array[:cut])
        valid_triples = TripleSet.from_array(array[cut:])

    test_graph_triples, test_entities, relation_vocab = load_triples_tsv(
        os.path.join(root, "test", "train.txt"), test_entities, relation_vocab
    )
    test_targets, test_entities, relation_vocab = load_triples_tsv(
        os.path.join(root, "test", "test.txt"), test_entities, relation_vocab
    )

    num_relations = len(relation_vocab)
    train_graph = KnowledgeGraph(
        train_graph_triples,
        num_entities=len(train_entities),
        num_relations=num_relations,
        entity_vocab=train_entities,
        relation_vocab=relation_vocab,
    )
    test_graph = KnowledgeGraph(
        test_graph_triples,
        num_entities=len(test_entities),
        num_relations=num_relations,
        entity_vocab=test_entities,
        relation_vocab=relation_vocab,
    )

    # Loaded benchmarks have no generative ontology; synthesise a trivial
    # one (flat typing) so schema-free pipelines work uniformly.
    ontology = Ontology(
        num_concepts=1,
        concept_parent=[0],
        num_relations=num_relations,
        signatures=[RelationSignature(r, 0, 0) for r in range(num_relations)],
    )
    return InductiveBenchmark(
        name=name or os.path.basename(os.path.normpath(root)),
        ontology=ontology,
        num_relations=num_relations,
        train_graph=train_graph,
        train_triples=train_targets,
        valid_triples=valid_triples,
        test_graph=test_graph,
        test_triples=test_targets,
        seen_relations=frozenset(train_graph_triples.relation_ids()),
    )
