"""Ontology specification for synthetic knowledge graphs.

The original paper evaluates on WN18RR / FB15k-237 / NELL-995 derived
benchmarks plus a NELL schema graph.  Those files cannot be downloaded in
this offline environment, so we generate KGs from an explicit ontology:

* a concept (entity-type) hierarchy with ``rdfs:subClassOf`` links,
* typed relation signatures (``rdfs:domain`` / ``rdfs:range``),
* a relation hierarchy (``rdfs:subPropertyOf``),
* planted logical rules — compositions ``r3(x,z) <- r1(x,y) & r2(y,z)``,
  inverses and symmetric relations.

The rules are what make *inductive* completion possible: they are
entity-independent regularities a subgraph-reasoning model can pick up on a
training graph and re-apply on a testing graph over disjoint entities —
exactly the signal RMPI/GraIL-style models exploit.  Relations designated as
"extension" relations only ever appear in testing graphs, giving the
fully-inductive unseen-relation setting; their rule bodies use core
relations, mirroring the paper's ``spouse_of <- husband_of`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.utils.seeding import seeded_rng


@dataclass(frozen=True)
class RelationSignature:
    """Typing of a relation: its domain and range concept ids."""

    relation: int
    domain: int
    range: int


@dataclass(frozen=True)
class CompositionRule:
    """``head(x, z) <- body1(x, y) & body2(y, z)``."""

    head: int
    body1: int
    body2: int


@dataclass(frozen=True)
class InverseRule:
    """``inverse(y, x) <- relation(x, y)``."""

    relation: int
    inverse: int


@dataclass
class Ontology:
    """A self-contained generative ontology.

    Attributes
    ----------
    num_concepts:
        Concept ids are ``0..num_concepts-1``; concept 0 is the root.
    concept_parent:
        ``concept_parent[c]`` is the ``rdfs:subClassOf`` parent (root maps to
        itself).
    num_relations:
        Relation ids are ``0..num_relations-1``.
    signatures:
        Per-relation domain/range typing.
    subproperty:
        ``child -> parent`` relation pairs (``rdfs:subPropertyOf``).
    compositions / inverses / symmetric:
        The planted rule set.
    """

    num_concepts: int
    concept_parent: List[int]
    num_relations: int
    signatures: List[RelationSignature]
    subproperty: Dict[int, int] = field(default_factory=dict)
    compositions: List[CompositionRule] = field(default_factory=list)
    inverses: List[InverseRule] = field(default_factory=list)
    symmetric: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if len(self.concept_parent) != self.num_concepts:
            raise ValueError("concept_parent length mismatch")
        if len(self.signatures) != self.num_relations:
            raise ValueError("signatures length mismatch")
        for sig in self.signatures:
            if not (0 <= sig.domain < self.num_concepts and 0 <= sig.range < self.num_concepts):
                raise ValueError(f"signature {sig} references unknown concept")

    # ------------------------------------------------------------------
    def leaf_concepts(self) -> List[int]:
        """Concepts that are nobody's parent (entities are typed by these)."""
        parents = set(self.concept_parent)
        return [c for c in range(self.num_concepts) if c not in parents or c == 0 and self.num_concepts == 1]

    def rules_for_head(self, relation: int) -> List[CompositionRule]:
        return [rule for rule in self.compositions if rule.head == relation]

    def restricted_rules(self, relations: Set[int]) -> "Ontology":
        """A view keeping only rules fully contained in ``relations``."""
        return Ontology(
            num_concepts=self.num_concepts,
            concept_parent=list(self.concept_parent),
            num_relations=self.num_relations,
            signatures=list(self.signatures),
            subproperty={
                child: parent
                for child, parent in self.subproperty.items()
                if child in relations and parent in relations
            },
            compositions=[
                rule
                for rule in self.compositions
                if {rule.head, rule.body1, rule.body2} <= relations
            ],
            inverses=[
                rule
                for rule in self.inverses
                if {rule.relation, rule.inverse} <= relations
            ],
            symmetric={r for r in self.symmetric if r in relations},
        )


def build_ontology(
    num_relations: int,
    num_concepts: int = 12,
    num_extension_relations: int = 0,
    seed: int = 0,
    composition_fraction: float = 0.45,
    inverse_fraction: float = 0.15,
    symmetric_fraction: float = 0.1,
    subproperty_fraction: float = 0.2,
) -> Ontology:
    """Sample a random-but-reproducible ontology.

    ``num_extension_relations`` of the total are "extension" relations —
    the tail of the id space, reserved for testing graphs (unseen
    relations).  Every extension relation is given at least one rule whose
    body uses core relations, so its meaning is recoverable from structure.
    """
    if num_extension_relations >= num_relations:
        raise ValueError("extension relations must be a strict subset")
    rng = seeded_rng(seed)

    # Concept hierarchy: a root, a layer of branches, a layer of leaves.
    num_branches = max(2, num_concepts // 4)
    concept_parent = [0]  # root points at itself
    for _ in range(num_branches):
        concept_parent.append(0)
    while len(concept_parent) < num_concepts:
        concept_parent.append(int(rng.integers(1, num_branches + 1)))
    leaves = [c for c in range(num_concepts) if c not in set(concept_parent[1:]) and c != 0]
    if not leaves:
        leaves = list(range(1, num_concepts))

    num_core = num_relations - num_extension_relations
    signatures: List[RelationSignature] = []
    for rel in range(num_relations):
        domain = int(leaves[rng.integers(len(leaves))])
        range_ = int(leaves[rng.integers(len(leaves))])
        signatures.append(RelationSignature(rel, domain, range_))

    compositions: List[CompositionRule] = []
    inverses: List[InverseRule] = []
    symmetric: Set[int] = set()
    subproperty: Dict[int, int] = {}

    def make_composition(head: int, pool: Sequence[int]) -> Optional[CompositionRule]:
        """Pick a type-consistent body for ``head`` by adjusting signatures."""
        if len(pool) < 2:
            return None
        body1 = int(pool[rng.integers(len(pool))])
        body2 = int(pool[rng.integers(len(pool))])
        if body1 == head or body2 == head:
            return None
        # Force type consistency: range(body1) == domain(body2);
        # head spans domain(body1) -> range(body2).
        sig1, sig2 = signatures[body1], signatures[body2]
        bridged = RelationSignature(body2, sig1.range, sig2.range)
        signatures[body2] = bridged
        signatures[head] = RelationSignature(head, sig1.domain, bridged.range)
        return CompositionRule(head, body1, body2)

    core_pool = list(range(num_core))

    # Rules among core relations.
    num_core_compositions = max(1, int(composition_fraction * num_core))
    for _ in range(num_core_compositions):
        head = int(core_pool[rng.integers(len(core_pool))])
        rule = make_composition(head, core_pool)
        if rule is not None:
            compositions.append(rule)

    num_inverse = int(inverse_fraction * num_core / 2)
    for _ in range(num_inverse):
        a = int(rng.integers(num_core))
        b = int(rng.integers(num_core))
        if a == b:
            continue
        sig_a = signatures[a]
        signatures[b] = RelationSignature(b, sig_a.range, sig_a.domain)
        inverses.append(InverseRule(a, b))

    for rel in range(num_core):
        if rng.random() < symmetric_fraction:
            sig = signatures[rel]
            signatures[rel] = RelationSignature(rel, sig.domain, sig.domain)
            symmetric.add(rel)

    num_subprop = int(subproperty_fraction * num_core)
    for _ in range(num_subprop):
        child = int(rng.integers(num_core))
        parent = int(rng.integers(num_core))
        if child == parent or child in subproperty:
            continue
        signatures[parent] = RelationSignature(
            parent, signatures[child].domain, signatures[child].range
        )
        subproperty[child] = parent

    # Every extension relation gets a defining rule over core relations so
    # that its role is inferable from seen structure.
    for rel in range(num_core, num_relations):
        choice = rng.random()
        if choice < 0.6:
            rule = make_composition(rel, core_pool)
            if rule is not None:
                compositions.append(rule)
                continue
        if choice < 0.8 and num_core >= 1:
            base = int(rng.integers(num_core))
            sig = signatures[base]
            signatures[rel] = RelationSignature(rel, sig.range, sig.domain)
            inverses.append(InverseRule(base, rel))
            continue
        # Fallback: make it a subproperty parent of a core relation.
        child = int(rng.integers(num_core))
        if child not in subproperty:
            signatures[rel] = RelationSignature(rel, signatures[child].domain, signatures[child].range)
            subproperty[child] = rel
        else:
            rule = make_composition(rel, core_pool)
            if rule is not None:
                compositions.append(rule)

    return Ontology(
        num_concepts=num_concepts,
        concept_parent=concept_parent,
        num_relations=num_relations,
        signatures=signatures,
        subproperty=subproperty,
        compositions=compositions,
        inverses=inverses,
        symmetric=symmetric,
    )
