"""Synthetic KG instance generation from an :class:`~repro.kg.ontology.Ontology`.

A *graph instance* is a set of triples over a fresh entity pool:

1. every entity gets a leaf concept type;
2. base facts are sampled per relation, respecting domain/range typing;
3. planted rules are forward-chained with probability ``rule_fire_prob``
   (rules hold *mostly*, so models must learn soft regularities);
4. uniform noise triples are added.

Two instances generated from the same ontology over different entity pools
share relational regularities but no entities — the inductive setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.ontology import Ontology
from repro.kg.triples import Triple, TripleSet


@dataclass(frozen=True)
class GraphInstance:
    """A generated graph: triples + the entity typing used to create it."""

    triples: TripleSet
    entity_types: Tuple[int, ...]
    relations_used: frozenset

    @property
    def num_entities(self) -> int:
        return len(self.entity_types)


def _entities_by_type(
    entity_types: Sequence[int], num_concepts: int
) -> Dict[int, np.ndarray]:
    buckets: Dict[int, List[int]] = {}
    for entity, concept in enumerate(entity_types):
        buckets.setdefault(concept, []).append(entity)
    return {c: np.asarray(ents, dtype=np.int64) for c, ents in buckets.items()}


def generate_instance(
    ontology: Ontology,
    relations: Set[int],
    num_entities: int,
    num_base_facts: int,
    rng: np.random.Generator,
    rule_fire_prob: float = 0.8,
    noise_fraction: float = 0.05,
    max_chain_rounds: int = 2,
) -> GraphInstance:
    """Generate one graph instance restricted to ``relations``.

    ``num_base_facts`` is the number of seed facts before rule chaining.
    """
    if not relations:
        raise ValueError("need at least one relation")
    relations = set(int(r) for r in relations)
    leaves = ontology.leaf_concepts()
    entity_types = tuple(int(leaves[rng.integers(len(leaves))]) for _ in range(num_entities))
    by_type = _entities_by_type(entity_types, ontology.num_concepts)

    facts: Set[Triple] = set()

    def sample_pair(relation: int) -> Optional[Tuple[int, int]]:
        sig = ontology.signatures[relation]
        heads = by_type.get(sig.domain)
        tails = by_type.get(sig.range)
        if heads is None or tails is None or len(heads) == 0 or len(tails) == 0:
            # Typing too narrow for this entity pool; fall back to any pair so
            # every relation can occur (real KGs violate typing too).
            head = int(rng.integers(num_entities))
            tail = int(rng.integers(num_entities))
        else:
            head = int(heads[rng.integers(len(heads))])
            tail = int(tails[rng.integers(len(tails))])
        if head == tail:
            return None
        return head, tail

    relation_list = sorted(relations)
    for _ in range(num_base_facts):
        relation = int(relation_list[rng.integers(len(relation_list))])
        pair = sample_pair(relation)
        if pair is None:
            continue
        facts.add((pair[0], relation, pair[1]))

    # Forward chaining over the rule set restricted to available relations.
    restricted = ontology.restricted_rules(relations)
    for _round in range(max_chain_rounds):
        new_facts: Set[Triple] = set()
        by_head: Dict[int, List[Triple]] = {}
        by_tail_rel: Dict[Tuple[int, int], List[int]] = {}
        for head, rel, tail in facts:
            by_head.setdefault(head, []).append((head, rel, tail))
            by_tail_rel.setdefault((rel, head), []).append(tail)

        # Compositions: join on the shared middle entity.
        tails_of = {}
        for head, rel, tail in facts:
            tails_of.setdefault((rel, head), []).append(tail)
        for rule in restricted.compositions:
            for head, rel, mid in list(facts):
                if rel != rule.body1:
                    continue
                for tail in tails_of.get((rule.body2, mid), []):
                    if head != tail and rng.random() < rule_fire_prob:
                        new_facts.add((head, rule.head, tail))
        # Inverses.
        for rule in restricted.inverses:
            for head, rel, tail in list(facts):
                if rel == rule.relation and rng.random() < rule_fire_prob:
                    new_facts.add((tail, rule.inverse, head))
        # Symmetric closure.
        for head, rel, tail in list(facts):
            if rel in restricted.symmetric and rng.random() < rule_fire_prob:
                new_facts.add((tail, rel, head))
        # Subproperty lifting.
        for child, parent in restricted.subproperty.items():
            for head, rel, tail in list(facts):
                if rel == child and rng.random() < rule_fire_prob:
                    new_facts.add((head, parent, tail))

        added = new_facts - facts
        if not added:
            break
        facts |= added

    # Noise.
    num_noise = int(noise_fraction * len(facts))
    for _ in range(num_noise):
        relation = int(relation_list[rng.integers(len(relation_list))])
        head = int(rng.integers(num_entities))
        tail = int(rng.integers(num_entities))
        if head != tail:
            facts.add((head, relation, tail))

    triple_set = TripleSet(sorted(facts))
    return GraphInstance(
        triples=triple_set,
        entity_types=entity_types,
        relations_used=frozenset(triple_set.relation_ids()),
    )


def split_triples(
    triples: TripleSet,
    fractions: Sequence[float],
    rng: np.random.Generator,
) -> List[TripleSet]:
    """Random partition of ``triples`` into ``len(fractions)+1`` parts.

    ``fractions`` are the sizes of the leading parts; the final part takes
    the remainder.  E.g. ``fractions=(0.8, 0.1)`` gives an 80/10/10 split.
    """
    if sum(fractions) > 1.0 + 1e-9:
        raise ValueError("fractions must sum to <= 1")
    order = rng.permutation(len(triples))
    array = triples.array[order]
    counts = [int(round(f * len(triples))) for f in fractions]
    parts: List[TripleSet] = []
    start = 0
    for count in counts:
        parts.append(TripleSet.from_array(array[start : start + count]))
        start += count
    parts.append(TripleSet.from_array(array[start:]))
    return parts
