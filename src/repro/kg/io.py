"""TSV persistence for triples — the GraIL benchmark file format.

Files are tab-separated ``head<TAB>relation<TAB>tail`` lines with string
symbols; loading builds/extends vocabularies so splits share id spaces.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Tuple

from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary


def save_triples_tsv(
    path: str,
    triples: TripleSet,
    entity_vocab: Vocabulary,
    relation_vocab: Vocabulary,
) -> None:
    """Write triples as symbol TSV, creating parent directories."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for head, rel, tail in triples:
            handle.write(
                f"{entity_vocab.symbol_of(head)}\t"
                f"{relation_vocab.symbol_of(rel)}\t"
                f"{entity_vocab.symbol_of(tail)}\n"
            )


def load_triples_tsv(
    path: str,
    entity_vocab: Optional[Vocabulary] = None,
    relation_vocab: Optional[Vocabulary] = None,
) -> Tuple[TripleSet, Vocabulary, Vocabulary]:
    """Read symbol TSV into ids, extending the given vocabularies in place.

    Returns ``(triples, entity_vocab, relation_vocab)``.
    """
    entity_vocab = entity_vocab if entity_vocab is not None else Vocabulary()
    relation_vocab = relation_vocab if relation_vocab is not None else Vocabulary()
    rows: List[Tuple[int, int, int]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_number}: expected 3 columns, got {len(parts)}")
            head, rel, tail = parts
            rows.append(
                (entity_vocab.add(head), relation_vocab.add(rel), entity_vocab.add(tail))
            )
    return TripleSet(rows), entity_vocab, relation_vocab
