"""`repro.kg` — knowledge-graph substrate.

Triples, vocabularies, indexed graphs, TSV persistence, negative sampling,
and the synthetic inductive benchmark generator (ontology + rule-planted
instances + paper-shaped benchmark suites).
"""

from repro.kg.benchmarks import (
    FAMILIES,
    FULL_BENCHMARK_SPECS,
    ExtBenchmark,
    FullInductiveBenchmark,
    InductiveBenchmark,
    build_ext_benchmark,
    build_full_benchmark,
    build_partial_benchmark,
    family_ontology,
)
from repro.kg.dataset_io import load_benchmark, save_benchmark
from repro.kg.generator import GraphInstance, generate_instance, split_triples
from repro.kg.graph import KnowledgeGraph, NeighborhoodCache
from repro.kg.io import load_triples_tsv, save_triples_tsv
from repro.kg.ontology import (
    CompositionRule,
    InverseRule,
    Ontology,
    RelationSignature,
    build_ontology,
)
from repro.kg.sampling import corrupt_triple, negative_triples, ranking_candidates
from repro.kg.triples import Triple, TripleSet
from repro.kg.vocab import Vocabulary

__all__ = [
    "Triple",
    "TripleSet",
    "Vocabulary",
    "KnowledgeGraph",
    "NeighborhoodCache",
    "load_triples_tsv",
    "save_triples_tsv",
    "corrupt_triple",
    "negative_triples",
    "ranking_candidates",
    "Ontology",
    "RelationSignature",
    "CompositionRule",
    "InverseRule",
    "build_ontology",
    "GraphInstance",
    "generate_instance",
    "split_triples",
    "FAMILIES",
    "FULL_BENCHMARK_SPECS",
    "InductiveBenchmark",
    "FullInductiveBenchmark",
    "ExtBenchmark",
    "build_partial_benchmark",
    "build_full_benchmark",
    "build_ext_benchmark",
    "family_ontology",
    "load_benchmark",
    "save_benchmark",
]
