"""Indexed multi-relational graph.

:class:`KnowledgeGraph` wraps a :class:`~repro.kg.triples.TripleSet` with the
adjacency indices that subgraph extraction needs: a lazily-built CSR
adjacency over the *undirected* skeleton (the paper collects both incoming
and outgoing neighbors, §III-B), vectorized K-hop breadth-first search, and
vectorized induced-edge lookup.

The CSR index is three numpy arrays:

* ``indptr``   — ``(num_entities + 1,)`` slice boundaries per entity;
* ``indices``  — neighbor entity id per adjacency entry;
* ``edge_ids`` — index into ``triples.array`` per adjacency entry.

Every edge ``(h, r, t)`` contributes the entries ``h -> t`` and (when
``h != t``) ``t -> h``; per entity, entries are sorted by edge id, which
matches the order the old pure-Python incident lists were built in.

K-hop frontiers are additionally memoised in a bounded
:class:`NeighborhoodCache` (LRU, keyed on ``(entity, num_hops)``): the
evaluation protocol scores ~50 candidate triples per ranking query that all
share the uncorrupted head or tail, so consecutive extractions hit the same
per-entity neighborhoods over and over.  The cache size knob is the
``neighborhood_cache_size`` constructor argument
(default :data:`DEFAULT_NEIGHBORHOOD_CACHE_SIZE`); size 0 disables caching.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.triples import Triple, TripleSet
from repro.kg.vocab import Vocabulary

#: Default bound on the per-graph ``(entity, num_hops) -> frontier`` cache.
#: Each entry is one sorted int64 array of K-hop neighbor ids.
DEFAULT_NEIGHBORHOOD_CACHE_SIZE = 4096

#: Default bound on the total int64 elements held across all cached
#: frontiers (4M elements = 32 MB per graph).  On large graphs a single
#: frontier can cover most of the entity set, so an entry-count bound alone
#: would not bound memory.
DEFAULT_NEIGHBORHOOD_CACHE_ELEMENTS = 4_194_304

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_IDS.setflags(write=False)


class NeighborhoodCache:
    """A bounded LRU cache of K-hop neighborhood frontiers.

    Maps ``(entity, num_hops)`` to the sorted int64 array of entities within
    ``num_hops`` undirected hops (source included).  Bounded both by entry
    count (``maxsize``) and by total cached elements (``max_elements``), so
    memory stays predictable on graphs whose frontiers cover most of the
    entity set.  Cached arrays are marked read-only; callers must not mutate
    them.  ``hits`` / ``misses`` counters make cache effectiveness
    observable in benchmarks.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_NEIGHBORHOOD_CACHE_SIZE,
        max_elements: int = DEFAULT_NEIGHBORHOOD_CACHE_ELEMENTS,
    ) -> None:
        self.maxsize = int(maxsize)
        self.max_elements = int(max_elements)
        self.hits = 0
        self.misses = 0
        self._elements = 0
        self._store: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()

    def get(self, key: Tuple[int, int]) -> Optional[np.ndarray]:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Tuple[int, int], value: np.ndarray) -> None:
        if self.maxsize <= 0:
            return
        previous = self._store.pop(key, None)
        if previous is not None:
            self._elements -= previous.size
        self._store[key] = value
        self._elements += value.size
        while self._store and (
            len(self._store) > self.maxsize or self._elements > self.max_elements
        ):
            _, evicted = self._store.popitem(last=False)
            self._elements -= evicted.size

    def clear(self) -> None:
        self._store.clear()
        self._elements = 0
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)


class KnowledgeGraph:
    """A KG ``G = (E, R, T)`` with integer ids and adjacency indices.

    Parameters
    ----------
    triples:
        The fact set.
    num_entities / num_relations:
        Sizes of the id spaces.  They may exceed the ids present in
        ``triples`` (e.g. a testing graph that shares the training relation
        vocabulary).
    entity_vocab / relation_vocab:
        Optional string vocabularies for reporting.
    neighborhood_cache_size:
        Bound on the per-graph K-hop frontier LRU cache (0 disables it).
    """

    def __init__(
        self,
        triples: TripleSet,
        num_entities: int,
        num_relations: int,
        entity_vocab: Optional[Vocabulary] = None,
        relation_vocab: Optional[Vocabulary] = None,
        neighborhood_cache_size: int = DEFAULT_NEIGHBORHOOD_CACHE_SIZE,
    ) -> None:
        if len(triples) > 0:
            if int(triples.heads.min()) < 0 or int(triples.tails.min()) < 0:
                raise ValueError("entity id out of range")
            if int(triples.heads.max()) >= num_entities or int(triples.tails.max()) >= num_entities:
                raise ValueError("entity id out of range")
            if int(triples.relations.min()) < 0:
                raise ValueError("relation id out of range")
            if int(triples.relations.max()) >= num_relations:
                raise ValueError("relation id out of range")
        self.triples = triples
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.entity_vocab = entity_vocab
        self.relation_vocab = relation_vocab
        self.neighborhood_cache = NeighborhoodCache(neighborhood_cache_size)
        # CSR adjacency over the undirected skeleton, built on first use.
        self._csr_indptr: Optional[np.ndarray] = None
        self._csr_indices: Optional[np.ndarray] = None
        self._csr_edge_ids: Optional[np.ndarray] = None
        # Reusable all-False scratch mask for induced-edge lookup (callers
        # reset the entries they set, keeping allocation out of the hot path).
        self._entity_scratch: Optional[np.ndarray] = None
        # Per-entity incident edge-id lists, materialized from the CSR on
        # first incident_edges() call so repeated lookups stay O(1).
        self._incident_lists: Optional[List[List[int]]] = None
        # Content hash, computed on first fingerprint() call.  TripleSet is
        # immutable, so the digest never goes stale for a given instance.
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Triple],
        num_entities: Optional[int] = None,
        num_relations: Optional[int] = None,
    ) -> "KnowledgeGraph":
        """Build a graph, inferring id-space sizes from the data if omitted."""
        tset = triples if isinstance(triples, TripleSet) else TripleSet(triples)
        if num_entities is None:
            num_entities = (max(tset.entities()) + 1) if len(tset) else 0
        if num_relations is None:
            num_relations = (max(tset.relation_ids()) + 1) if len(tset) else 0
        return cls(tset, num_entities, num_relations)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.triples)

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(entities={self.num_entities}, "
            f"relations={self.num_relations}, triples={len(self.triples)})"
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable hash of the graph (id-space sizes + triple rows, in row
        order).

        Two graphs built from identical triple arrays share a fingerprint
        across processes; any content change — and also a mere reordering
        of the same rows — changes it.  The serving layer keys its score
        caches on this, so swapping the served graph invalidates every
        cached score automatically (row-order sensitivity only ever causes
        a spurious invalidation, never a stale hit).
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(f"{self.num_entities}:{self.num_relations}:".encode())
            array = np.ascontiguousarray(self.triples.array, dtype=np.int64)
            digest.update(array.tobytes())
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def warm(self) -> "KnowledgeGraph":
        """Eagerly build the lazy indices (CSR adjacency, fingerprint).

        Serving sessions call this once at startup so the first query does
        not pay the index-construction cost.
        """
        self._ensure_csr()
        self.fingerprint()
        return self

    # ------------------------------------------------------------------
    def _check_entity(self, entity: int) -> int:
        entity = int(entity)
        if entity < 0 or entity >= self.num_entities:
            raise ValueError(
                f"entity id {entity} out of range [0, {self.num_entities})"
            )
        return entity

    def _ensure_csr(self) -> None:
        if self._csr_indptr is not None:
            return
        array = self.triples.array
        num_edges = len(array)
        heads = array[:, 0]
        tails = array[:, 2]
        edge_range = np.arange(num_edges, dtype=np.int64)
        non_self = heads != tails
        src = np.concatenate([heads, tails[non_self]])
        eid = np.concatenate([edge_range, edge_range[non_self]])
        dst = np.concatenate([tails, heads[non_self]])
        order = np.lexsort((eid, src))
        src = src[order]
        self._csr_indices = dst[order]
        self._csr_edge_ids = eid[order]
        indptr = np.zeros(self.num_entities + 1, dtype=np.int64)
        if len(src):
            np.cumsum(np.bincount(src, minlength=self.num_entities), out=indptr[1:])
        self._csr_indptr = indptr

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The CSR adjacency as ``(indptr, indices, edge_ids)``, building
        it on demand.

        This is the export half of the zero-copy contract used by
        :class:`repro.parallel.shm.SharedGraphCSR`: callers may copy these
        arrays into shared storage and hand equivalent views back through
        :meth:`adopt_csr`.
        """
        self._ensure_csr()
        assert self._csr_indptr is not None  # _ensure_csr() built them
        assert self._csr_indices is not None
        assert self._csr_edge_ids is not None
        return self._csr_indptr, self._csr_indices, self._csr_edge_ids

    def adopt_csr(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_ids: np.ndarray,
    ) -> None:
        """Install externally-stored CSR arrays (e.g. shared-memory views)
        as this graph's adjacency index.

        The arrays must describe the same graph the builder would produce:
        ``indptr`` has ``num_entities + 1`` monotone entries and
        ``indices``/``edge_ids`` are equal-length int64 arrays covering
        ``indptr[-1]`` adjacency slots.  Only shape/dtype invariants are
        validated — content equality is the caller's contract (the shm
        layer copies the builder's own arrays, so it holds by
        construction).  Derived caches (incident lists) are dropped so
        they rebuild from the adopted arrays.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
        if indptr.shape != (self.num_entities + 1,):
            raise ValueError(
                f"indptr must have shape ({self.num_entities + 1},), "
                f"got {indptr.shape}"
            )
        if indices.shape != edge_ids.shape or indices.ndim != 1:
            raise ValueError(
                "indices and edge_ids must be equal-length 1-D arrays, got "
                f"{indices.shape} and {edge_ids.shape}"
            )
        if int(indptr[0]) != 0 or int(indptr[-1]) != indices.shape[0]:
            raise ValueError(
                "indptr does not cover the adjacency arrays: spans "
                f"[{int(indptr[0])}, {int(indptr[-1])}] over {indices.shape[0]} slots"
            )
        self._csr_indptr = indptr
        self._csr_indices = indices
        self._csr_edge_ids = edge_ids
        self._incident_lists = None

    def _gather_csr(self, entities: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Concatenate ``values[indptr[e]:indptr[e+1]]`` over ``entities``."""
        indptr = self._csr_indptr
        starts = indptr[entities]
        counts = indptr[entities + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY_IDS
        ends = np.cumsum(counts)
        flat = np.arange(total, dtype=np.int64) + np.repeat(starts - (ends - counts), counts)
        return values[flat]

    # ------------------------------------------------------------------
    def incident_edges(self, entity: int) -> List[int]:
        """Indices into ``triples.array`` of edges touching ``entity``.

        Raises ``ValueError`` for ids outside ``[0, num_entities)``.
        """
        entity = self._check_entity(entity)
        if self._incident_lists is None:
            self._ensure_csr()
            indptr = self._csr_indptr
            edge_ids = self._csr_edge_ids
            self._incident_lists = [
                edge_ids[indptr[i] : indptr[i + 1]].tolist()
                for i in range(self.num_entities)
            ]
        return self._incident_lists[entity]

    def degree(self, entity: int) -> int:
        entity = self._check_entity(entity)
        self._ensure_csr()
        return int(self._csr_indptr[entity + 1] - self._csr_indptr[entity])

    def edge(self, edge_index: int) -> Triple:
        return self.triples[edge_index]

    # ------------------------------------------------------------------
    def khop_distance_arrays(
        self,
        source: int,
        max_hops: int,
        forbidden: Optional[Set[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized BFS: ``(nodes, dists)`` sorted by entity id.

        Boolean-mask frontier expansion over the CSR arrays; semantics match
        :meth:`khop_distances` (``forbidden`` entities are recorded when
        reached but never expanded through; the source always expands).
        """
        source = self._check_entity(source)
        self._ensure_csr()
        dist = np.full(self.num_entities, -1, dtype=np.int64)
        dist[source] = 0
        frontier = np.asarray([source], dtype=np.int64)
        forbidden_mask: Optional[np.ndarray] = None
        if forbidden:
            forbidden_mask = np.zeros(self.num_entities, dtype=bool)
            # Ids outside the entity range can never be reached by the BFS;
            # drop them so they stay the no-op they always were (negative
            # ids must not wrap around under numpy indexing).
            ids = np.fromiter(forbidden, dtype=np.int64)
            forbidden_mask[ids[(ids >= 0) & (ids < self.num_entities)]] = True
        for depth in range(1, max_hops + 1):
            if frontier.size == 0:
                break
            neighbors = self._gather_csr(frontier, self._csr_indices)
            neighbors = neighbors[dist[neighbors] < 0]
            if neighbors.size == 0:
                break
            neighbors = np.unique(neighbors)
            dist[neighbors] = depth
            if forbidden_mask is not None:
                neighbors = neighbors[~forbidden_mask[neighbors]]
            frontier = neighbors
        nodes = np.flatnonzero(dist >= 0)
        return nodes, dist[nodes]

    def khop_distances(
        self,
        source: int,
        max_hops: int,
        forbidden: Optional[Set[int]] = None,
    ) -> Dict[int, int]:
        """Shortest undirected distances from ``source`` up to ``max_hops``.

        ``forbidden`` entities are never expanded *through* (they are not
        enqueued), implementing the paper's "without counting any path
        through v" rule used by GraIL's double-radius labeling.
        The source itself is always reported at distance 0.
        """
        nodes, dists = self.khop_distance_arrays(source, max_hops, forbidden)
        return dict(zip(nodes.tolist(), dists.tolist()))

    def khop_neighbors(self, source: int, max_hops: int) -> Set[int]:
        """Entities within ``max_hops`` undirected hops of ``source``
        (paper's N^K, source included)."""
        return set(self.khop_nodes(source, max_hops).tolist())

    def khop_nodes(self, source: int, max_hops: int) -> np.ndarray:
        """Sorted int64 array of entities within ``max_hops`` of ``source``.

        Memoised in :attr:`neighborhood_cache`; the returned array is
        read-only and shared — do not mutate it.
        """
        key = (int(source), int(max_hops))
        cached = self.neighborhood_cache.get(key)
        if cached is None:
            cached, _ = self.khop_distance_arrays(source, max_hops)
            cached.setflags(write=False)
            self.neighborhood_cache.put(key, cached)
        return cached

    # ------------------------------------------------------------------
    def induced_edge_id_array(self, nodes: np.ndarray) -> np.ndarray:
        """Sorted edge ids with head AND tail in ``nodes`` (sorted, valid)."""
        self._ensure_csr()
        nodes = np.asarray(nodes, dtype=np.int64)
        if nodes.size == 0:
            return _EMPTY_IDS
        if self._entity_scratch is None:
            self._entity_scratch = np.zeros(self.num_entities, dtype=bool)
        mask = self._entity_scratch
        mask[nodes] = True
        candidates = self._gather_csr(nodes, self._csr_edge_ids)
        if candidates.size == 0:
            mask[nodes] = False
            return _EMPTY_IDS
        candidates.sort()
        if candidates.size > 1:
            # Drop the duplicate entry each non-self-loop edge contributes.
            candidates = candidates[
                np.concatenate(([True], candidates[1:] != candidates[:-1]))
            ]
        array = self.triples.array
        keep = mask[array[candidates, 0]] & mask[array[candidates, 2]]
        mask[nodes] = False
        return candidates[keep]

    def induced_edge_indices(self, entities: Set[int]) -> List[int]:
        """Indices of edges whose head AND tail are both in ``entities``.

        Every id must lie in ``[0, num_entities)``; out-of-range ids raise
        ``ValueError`` (consistently with :meth:`incident_edges`).
        """
        if not entities:
            return []
        ids = np.fromiter((int(e) for e in entities), dtype=np.int64)
        if ids.size and (int(ids.min()) < 0 or int(ids.max()) >= self.num_entities):
            bad = int(ids.min()) if int(ids.min()) < 0 else int(ids.max())
            raise ValueError(
                f"entity id {bad} out of range [0, {self.num_entities})"
            )
        return self.induced_edge_id_array(np.unique(ids)).tolist()

    def induced_subgraph_triples(self, entities: Set[int]) -> TripleSet:
        return TripleSet.from_trusted_array(
            self.triples.array[self.induced_edge_indices(entities)]
        )

    # ------------------------------------------------------------------
    def relations_of(self, entity: int) -> Set[int]:
        """Relations on edges incident to ``entity``."""
        return {self.triples[i][1] for i in self.incident_edges(entity)}

    def entity_pair_relations(self, head: int, tail: int) -> Set[int]:
        """Relations r such that (head, r, tail) is a fact."""
        found: Set[int] = set()
        for edge_index in self.incident_edges(head):
            h, r, t = self.triples[edge_index]
            if h == head and t == tail:
                found.add(r)
        return found

    def statistics(self) -> Dict[str, int]:
        """Counts in the style of the paper's Table I rows."""
        return {
            "relations": len(self.triples.relation_ids()),
            "entities": len(self.triples.entities()),
            "triples": len(self.triples),
        }
