"""Indexed multi-relational graph.

:class:`KnowledgeGraph` wraps a :class:`~repro.kg.triples.TripleSet` with the
adjacency indices that subgraph extraction needs: per-entity incident edge
lists and fast K-hop breadth-first search over the *undirected* skeleton
(the paper collects both incoming and outgoing neighbors, §III-B).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.triples import Triple, TripleSet
from repro.kg.vocab import Vocabulary


class KnowledgeGraph:
    """A KG ``G = (E, R, T)`` with integer ids and adjacency indices.

    Parameters
    ----------
    triples:
        The fact set.
    num_entities / num_relations:
        Sizes of the id spaces.  They may exceed the ids present in
        ``triples`` (e.g. a testing graph that shares the training relation
        vocabulary).
    entity_vocab / relation_vocab:
        Optional string vocabularies for reporting.
    """

    def __init__(
        self,
        triples: TripleSet,
        num_entities: int,
        num_relations: int,
        entity_vocab: Optional[Vocabulary] = None,
        relation_vocab: Optional[Vocabulary] = None,
    ) -> None:
        if len(triples) > 0:
            if int(triples.heads.max()) >= num_entities or int(triples.tails.max()) >= num_entities:
                raise ValueError("entity id out of range")
            if int(triples.relations.max()) >= num_relations:
                raise ValueError("relation id out of range")
        self.triples = triples
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.entity_vocab = entity_vocab
        self.relation_vocab = relation_vocab
        self._incident: List[List[int]] = [[] for _ in range(self.num_entities)]
        for edge_index, (head, _rel, tail) in enumerate(triples):
            self._incident[head].append(edge_index)
            if tail != head:
                self._incident[tail].append(edge_index)

    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        triples: Iterable[Triple],
        num_entities: Optional[int] = None,
        num_relations: Optional[int] = None,
    ) -> "KnowledgeGraph":
        """Build a graph, inferring id-space sizes from the data if omitted."""
        tset = triples if isinstance(triples, TripleSet) else TripleSet(triples)
        if num_entities is None:
            num_entities = (max(tset.entities()) + 1) if len(tset) else 0
        if num_relations is None:
            num_relations = (max(tset.relation_ids()) + 1) if len(tset) else 0
        return cls(tset, num_entities, num_relations)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.triples)

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(entities={self.num_entities}, "
            f"relations={self.num_relations}, triples={len(self.triples)})"
        )

    def incident_edges(self, entity: int) -> List[int]:
        """Indices into ``triples.array`` of edges touching ``entity``."""
        return self._incident[entity]

    def degree(self, entity: int) -> int:
        return len(self._incident[entity])

    def edge(self, edge_index: int) -> Triple:
        return self.triples[edge_index]

    # ------------------------------------------------------------------
    def khop_distances(
        self,
        source: int,
        max_hops: int,
        forbidden: Optional[Set[int]] = None,
    ) -> Dict[int, int]:
        """Shortest undirected distances from ``source`` up to ``max_hops``.

        ``forbidden`` entities are never expanded *through* (they are not
        enqueued), implementing the paper's "without counting any path
        through v" rule used by GraIL's double-radius labeling.
        The source itself is always reported at distance 0.
        """
        forbidden = forbidden or set()
        distances: Dict[int, int] = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            depth = distances[node]
            if depth >= max_hops:
                continue
            for edge_index in self._incident[node]:
                head, _rel, tail = self.triples[edge_index]
                for neighbor in (head, tail):
                    if neighbor in distances:
                        continue
                    distances[neighbor] = depth + 1
                    if neighbor not in forbidden:
                        frontier.append(neighbor)
        return distances

    def khop_neighbors(self, source: int, max_hops: int) -> Set[int]:
        """Entities within ``max_hops`` undirected hops of ``source``
        (paper's N^K, source included)."""
        return set(self.khop_distances(source, max_hops))

    # ------------------------------------------------------------------
    def induced_edge_indices(self, entities: Set[int]) -> List[int]:
        """Indices of edges whose head AND tail are both in ``entities``."""
        picked: List[int] = []
        seen: Set[int] = set()
        for entity in entities:
            if entity >= self.num_entities:
                continue
            for edge_index in self._incident[entity]:
                if edge_index in seen:
                    continue
                head, _rel, tail = self.triples[edge_index]
                if head in entities and tail in entities:
                    seen.add(edge_index)
                    picked.append(edge_index)
        picked.sort()
        return picked

    def induced_subgraph_triples(self, entities: Set[int]) -> TripleSet:
        return TripleSet(self.triples[i] for i in self.induced_edge_indices(entities))

    # ------------------------------------------------------------------
    def relations_of(self, entity: int) -> Set[int]:
        """Relations on edges incident to ``entity``."""
        return {self.triples[i][1] for i in self._incident[entity]}

    def entity_pair_relations(self, head: int, tail: int) -> Set[int]:
        """Relations r such that (head, r, tail) is a fact."""
        found: Set[int] = set()
        for edge_index in self._incident[head]:
            h, r, t = self.triples[edge_index]
            if h == head and t == tail:
                found.add(r)
        return found

    def statistics(self) -> Dict[str, int]:
        """Counts in the style of the paper's Table I rows."""
        return {
            "relations": len(self.triples.relation_ids()),
            "entities": len(self.triples.entities()),
            "triples": len(self.triples),
        }
