"""Repeated runs with mean/std aggregation (paper §IV-B: "we run each
experiment 5 times and report the mean results").

The benchmark suite defaults to one run per cell for wall-clock reasons
(override with ``REPRO_BENCH_REPEATS``); this module provides the
aggregation used when repeats > 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.experiments.runner import ExperimentResult


@dataclass(frozen=True)
class AggregatedResult:
    """Mean and standard deviation per metric over repeated runs."""

    benchmark: str
    model: str
    mean: Dict[str, float] = field(default_factory=dict)
    std: Dict[str, float] = field(default_factory=dict)
    runs: int = 0

    @property
    def metrics(self) -> Dict[str, float]:
        """Mean metrics — drop-in compatible with ExperimentResult."""
        return self.mean

    def format_cell(self, key: str) -> str:
        return f"{self.mean[key]:.2f}±{self.std[key]:.2f}"


def aggregate(results: List[ExperimentResult]) -> AggregatedResult:
    """Combine same-cell results into mean/std."""
    if not results:
        raise ValueError("nothing to aggregate")
    benchmarks = {r.benchmark for r in results}
    models = {r.model for r in results}
    if len(benchmarks) != 1 or len(models) != 1:
        raise ValueError("aggregate() expects repeats of the same cell")
    keys = results[0].metrics.keys()
    mean = {k: float(np.mean([r.metrics[k] for r in results])) for k in keys}
    std = {k: float(np.std([r.metrics[k] for r in results])) for k in keys}
    return AggregatedResult(
        benchmark=results[0].benchmark,
        model=results[0].model,
        mean=mean,
        std=std,
        runs=len(results),
    )


def run_repeated(
    run_once: Callable[[int], ExperimentResult],
    repeats: int = 5,
    base_seed: int = 0,
) -> AggregatedResult:
    """Run an experiment ``repeats`` times with distinct seeds and aggregate.

    ``run_once`` receives the seed for each repetition.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    results = [run_once(base_seed + i) for i in range(repeats)]
    return aggregate(results)
