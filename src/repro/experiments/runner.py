"""Experiment runner: model factory + train/evaluate pipelines.

This is the layer the benchmark scripts drive: given a benchmark and a
model name, build the model, train it with the paper's protocol, and
evaluate triple classification (AUC-PR) and entity prediction (MRR,
Hits@10) — producing rows shaped like the paper's result tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.baselines import TACT, CoMPILE, GraIL, TACTBase
from repro.core import RMPI, RMPIConfig
from repro.core.base import SubgraphScoringModel
from repro.eval.protocol import evaluate_both
from repro.kg.hashing import stable_hash
from repro.kg.benchmarks import FullInductiveBenchmark, InductiveBenchmark
from repro.kg.ontology import Ontology
from repro.schema import TransEConfig, build_schema_graph, pretrain_schema_embeddings
from repro.train import TrainingConfig, train_model
from repro.utils.seeding import seeded_rng

MODEL_NAMES = (
    "GraIL",
    "TACT",
    "TACT-base",
    "CoMPILE",
    "RMPI-base",
    "RMPI-NE",
    "RMPI-TA",
    "RMPI-NE-TA",
)

# Values keep the ontology alive: an id()-keyed cache alone is a latent
# aliasing bug — once an ontology is garbage collected its id can be
# recycled by a NEW ontology, which would then silently receive the old
# one's embeddings.  Keying on (id, seed, dim) also stops a seed/dim
# change from answering with vectors pretrained under different settings.
_SCHEMA_CACHE: Dict[tuple, tuple] = {}


def schema_vectors_for(ontology: Ontology, seed: int = 0, dim: int = 32) -> np.ndarray:
    """TransE schema embeddings for an ontology (cached per ontology +
    pretraining settings)."""
    key = (id(ontology), int(seed), int(dim))  # repro-lint: disable=RL003 cache values pin the ontology (see _SCHEMA_CACHE comment)
    if key not in _SCHEMA_CACHE:
        schema = build_schema_graph(ontology)
        config = TransEConfig(dim=dim, seed=seed)
        _SCHEMA_CACHE[key] = (ontology, pretrain_schema_embeddings(schema, config))
    return _SCHEMA_CACHE[key][1]


def make_model(
    name: str,
    num_relations: int,
    seed: int = 0,
    schema_vectors: Optional[np.ndarray] = None,
    embed_dim: int = 32,
    fusion: str = "sum",
) -> SubgraphScoringModel:
    """Instantiate a named model (paper's method grid)."""
    rng = seeded_rng((seed, stable_hash(name)))
    if name == "GraIL":
        return GraIL(num_relations, rng, embed_dim=embed_dim)
    if name == "TACT":
        return TACT(num_relations, rng, embed_dim=embed_dim, schema_vectors=schema_vectors)
    if name == "TACT-base":
        return TACTBase(
            num_relations, rng, embed_dim=embed_dim, schema_vectors=schema_vectors
        )
    if name == "CoMPILE":
        return CoMPILE(num_relations, rng, embed_dim=embed_dim)
    if name.startswith("RMPI"):
        config = RMPIConfig(
            embed_dim=embed_dim,
            use_disclosing="NE" in name,
            use_target_attention="TA" in name,
            fusion=fusion,
        )
        return RMPI(num_relations, rng, config=config, schema_vectors=schema_vectors)
    raise ValueError(f"unknown model {name!r}; choose from {MODEL_NAMES}")


@dataclass(frozen=True)
class ExperimentResult:
    """One table cell-group: a model's metrics on one benchmark setting."""

    benchmark: str
    model: str
    metrics: Dict[str, float] = field(default_factory=dict)

    def metric(self, key: str) -> float:
        return self.metrics[key]


def run_experiment(
    benchmark: InductiveBenchmark,
    model_name: str,
    training: Optional[TrainingConfig] = None,
    seed: int = 0,
    use_schema: bool = False,
    embed_dim: int = 32,
    fusion: str = "sum",
    num_negatives: int = 49,
) -> ExperimentResult:
    """Train ``model_name`` on a benchmark and evaluate both protocols."""
    training = training or TrainingConfig(seed=seed)
    schema_vectors = (
        schema_vectors_for(benchmark.ontology, seed=seed) if use_schema else None
    )
    model = make_model(
        model_name,
        benchmark.num_relations,
        seed=seed,
        schema_vectors=schema_vectors,
        embed_dim=embed_dim,
        fusion=fusion,
    )
    train_model(
        model,
        benchmark.train_graph,
        benchmark.train_triples,
        benchmark.valid_triples,
        training,
    )
    report = evaluate_both(
        model,
        benchmark.test_graph,
        benchmark.test_triples,
        seed=seed,
        num_negatives=num_negatives,
        workers=training.parallel.resolved_eval_workers(),
    )
    label = model_name + ("+schema" if use_schema else "")
    return ExperimentResult(
        benchmark=benchmark.name, model=label, metrics=report.as_dict()
    )


def run_full_experiment(
    benchmark: FullInductiveBenchmark,
    model_name: str,
    setting: str,
    training: Optional[TrainingConfig] = None,
    seed: int = 0,
    use_schema: bool = False,
    embed_dim: int = 32,
    fusion: str = "sum",
) -> ExperimentResult:
    """Fully inductive run: ``setting`` is 'semi' or 'fully' (§IV-A)."""
    return run_experiment(
        benchmark.as_partial(setting),
        model_name,
        training=training,
        seed=seed,
        use_schema=use_schema,
        embed_dim=embed_dim,
        fusion=fusion,
    )
