"""Benchmark-scale settings, overridable via environment variables.

The benchmark scripts regenerate every table in the paper; on a laptop the
full grid at paper scale would take hours in pure numpy, so defaults are
small.  Override with:

* ``REPRO_BENCH_SCALE``  — dataset size multiplier (default 0.05)
* ``REPRO_BENCH_EPOCHS`` — training epochs per run (default 4)
* ``REPRO_BENCH_SEED``   — global seed (default 0)
* ``REPRO_BENCH_MAX_TRIPLES`` — per-epoch training-triple cap (default 150)
* ``REPRO_BENCH_NEGATIVES``   — ranking negatives (default 19; paper: 49)
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.train import TrainingConfig


@dataclass(frozen=True)
class BenchSettings:
    scale: float
    epochs: int
    seed: int
    max_triples: int
    num_negatives: int

    def training_config(self) -> TrainingConfig:
        return TrainingConfig(
            epochs=self.epochs,
            seed=self.seed,
            max_triples_per_epoch=self.max_triples,
        )


def bench_settings() -> BenchSettings:
    """Read settings from the environment (with quick-run defaults)."""
    return BenchSettings(
        scale=float(os.environ.get("REPRO_BENCH_SCALE", "0.05")),
        epochs=int(os.environ.get("REPRO_BENCH_EPOCHS", "4")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "0")),
        max_triples=int(os.environ.get("REPRO_BENCH_MAX_TRIPLES", "150")),
        num_negatives=int(os.environ.get("REPRO_BENCH_NEGATIVES", "19")),
    )
