"""Fixed-width table formatting for benchmark output.

The benchmark scripts print rows shaped like the paper's tables; this
module keeps that presentation logic in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned text table.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to content.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(h) for h in headers]))
    lines.append(render_line(["-" * w for w in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> None:
    print()
    print(format_table(headers, rows, title=title))
    print()


def results_to_rows(
    results: Sequence,
    metric_keys: Sequence[str],
) -> List[List[object]]:
    """Convert :class:`~repro.experiments.runner.ExperimentResult` objects
    to printable rows ``[model, benchmark, *metrics]``."""
    rows: List[List[object]] = []
    for result in results:
        rows.append(
            [result.model, result.benchmark]
            + [result.metrics.get(key, float("nan")) for key in metric_keys]
        )
    return rows
