"""`repro.experiments` — experiment orchestration and table formatting."""

from repro.experiments.runner import (
    MODEL_NAMES,
    ExperimentResult,
    make_model,
    run_experiment,
    run_full_experiment,
    schema_vectors_for,
)
from repro.experiments.repeats import AggregatedResult, aggregate, run_repeated
from repro.experiments.settings import BenchSettings, bench_settings
from repro.experiments.tables import format_table, print_table, results_to_rows

__all__ = [
    "MODEL_NAMES",
    "ExperimentResult",
    "make_model",
    "run_experiment",
    "run_full_experiment",
    "schema_vectors_for",
    "BenchSettings",
    "bench_settings",
    "format_table",
    "print_table",
    "results_to_rows",
    "AggregatedResult",
    "aggregate",
    "run_repeated",
]
