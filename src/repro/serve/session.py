"""Inference session: one pinned graph, warm indices, cached scoring.

An :class:`InferenceSession` binds a :class:`ModelRegistry` to a single
served :class:`~repro.kg.graph.KnowledgeGraph`.  At construction it warms
the graph's lazy indices (CSR adjacency, content fingerprint) so the first
query pays no build cost, precomputes the evaluation-protocol candidate
pool and known-fact set, and fronts every model with a shared bounded LRU
:class:`~repro.serve.cache.ScoreCache` keyed on
``(model_key, graph_fingerprint, triple)`` — swapping the graph via
:meth:`set_graph` therefore invalidates all cached scores.

Scoring semantics match the offline evaluation protocol exactly: with
``use_fused=False`` a query takes the very same
``model.score_triples`` path as
:func:`repro.eval.protocol.evaluate_entity_prediction`; the default
``use_fused=True`` routes batches through the model's fused
disjoint-union forward when it has one (``score_triples_fused``),
equivalent within float round-off but much faster on coalesced batches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import no_grad
from repro.autograd.engine import SCORE_DTYPE
from repro.eval.protocol import (
    candidate_entity_pool,
    known_fact_set,
    link_prediction_candidates,
)
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.serve.cache import DEFAULT_SCORE_CACHE_SIZE, ScoreCache
from repro.serve.registry import ModelRegistry, RegisteredModel


def rank_predictions(
    triples: Sequence[Triple],
    scores: np.ndarray,
    k: int,
    side: str,
) -> List[Tuple[int, float]]:
    """Top-``k`` ``(entity, score)`` pairs, best first.

    Descending stable sort, so ties keep candidate order — the same tie
    orientation as the evaluation metrics' stable argsort.  ``side`` picks
    which endpoint of each triple is reported ('head' or 'tail').
    """
    if side not in ("head", "tail"):
        raise ValueError(f"side must be 'head' or 'tail', got {side!r}")
    scores = np.asarray(scores, dtype=SCORE_DTYPE)
    order = np.argsort(-scores, kind="stable")[: max(int(k), 0)]
    position = 0 if side == "head" else 2
    return [(int(triples[i][position]), float(scores[i])) for i in order]


class InferenceSession:
    """Online scoring against one pinned knowledge graph.

    Not thread-safe by itself: the micro-batching scheduler serialises all
    scoring through its single worker thread, which is the supported
    concurrent entry point (HTTP handler threads only enqueue requests).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        graph: KnowledgeGraph,
        default_model: Optional[str] = None,
        cache_size: int = DEFAULT_SCORE_CACHE_SIZE,
        use_fused: bool = True,
    ) -> None:
        self.registry = registry
        self.default_model = default_model
        self.use_fused = use_fused
        self.cache = ScoreCache(cache_size)
        self.graph: KnowledgeGraph = None  # type: ignore[assignment]
        self._pool: List[int] = []
        self._known: set = set()
        # Optional worker-pool scoring backend (repro.parallel.serving):
        # attached by the serving app when its config asks for workers > 1.
        self.scoring_pool = None
        self._pool_keys: frozenset = frozenset()
        self.set_graph(graph)

    # ------------------------------------------------------------------
    def set_graph(self, graph: KnowledgeGraph) -> None:
        """Swap the served graph: warm its indices, rebuild the candidate
        pool/known facts, and drop every score cached against the old one
        (new fingerprint ⇒ old keys can never be hit again).  A worker-pool
        backend is detached AND closed — its forked workers still hold the
        old graph, so they can never serve this session again; scoring
        runs serially until a fresh pool is attached
        (:meth:`attach_scoring_pool`)."""
        self.graph = graph.warm()
        self._pool = candidate_entity_pool(graph)
        self._known = known_fact_set(graph)
        self.cache.clear()
        self.detach_scoring_pool(close=True)

    # ------------------------------------------------------------------
    def attach_scoring_pool(self, pool) -> None:
        """Fan cache-miss scoring across ``pool`` (see
        :func:`repro.parallel.serving.scoring_pool`).

        The pool's forked workers hold a snapshot of the registry: models
        registered afterwards are scored serially (guarded by the key
        snapshot taken here), never dispatched to workers that cannot
        resolve them.
        """
        from repro.parallel.serving import known_keys

        self.scoring_pool = pool
        self._pool_keys = known_keys(self.registry)

    def detach_scoring_pool(self, close: bool = False) -> None:
        pool = self.scoring_pool
        self.scoring_pool = None
        self._pool_keys = frozenset()
        if close and pool is not None:
            pool.close()

    def resolve_model(self, spec: Optional[str] = None) -> RegisteredModel:
        return self.registry.resolve(spec or self.default_model)

    # ------------------------------------------------------------------
    def score(
        self, triples: Sequence[Triple], model: Optional[str] = None
    ) -> np.ndarray:
        """Scores for ``triples``, order-aligned, through the score cache.

        Cache misses are scored in ONE batched model call (the fused path
        when available), so a coalesced micro-batch reaches the model as a
        single ``score_triples``/``score_triples_fused`` invocation.
        """
        entry = self.resolve_model(model)
        triples = [tuple(int(x) for x in triple) for triple in triples]
        fingerprint = self.graph.fingerprint()
        values: List[Optional[float]] = []
        missing: Dict[Triple, List[int]] = {}
        for position, triple in enumerate(triples):
            cached = self.cache.get((entry.key, fingerprint, triple))
            values.append(cached)
            if cached is None:
                missing.setdefault(triple, []).append(position)
        if missing:
            batch = list(missing)
            pool = self.scoring_pool
            if (
                pool is not None
                and entry.key in self._pool_keys
                and len(batch) >= pool.workers
            ):
                from repro.parallel.serving import score_batch_sharded

                fresh = score_batch_sharded(pool, entry.key, batch)
            else:
                scorer = (
                    entry.model.score_triples_fused
                    if self.use_fused and hasattr(entry.model, "score_triples_fused")
                    else entry.model.score_triples
                )
                # Serving never backpropagates: no-grad keeps the coalesced
                # batch forward free of autograd bookkeeping.
                with no_grad():
                    fresh = np.asarray(
                        scorer(self.graph, batch), dtype=SCORE_DTYPE
                    ).reshape(-1)
            for triple, value in zip(batch, fresh):
                self.cache.put((entry.key, fingerprint, triple), float(value))
                for position in missing[triple]:
                    values[position] = float(value)
        return np.asarray(values, dtype=SCORE_DTYPE)

    # ------------------------------------------------------------------
    def tail_candidates(
        self,
        head: int,
        relation: int,
        candidates: Optional[Sequence[int]] = None,
        exclude_known: bool = True,
    ) -> List[Triple]:
        """Candidate triples ``(head, relation, ?)`` over the evaluation
        pool (or an explicit entity list), with ranking-protocol filtering."""
        return link_prediction_candidates(
            self.graph,
            head,
            relation,
            None,
            exclude_known=exclude_known,
            candidate_entities=candidates if candidates is not None else self._pool,
            known=self._known,
        )

    def head_candidates(
        self,
        tail: int,
        relation: int,
        candidates: Optional[Sequence[int]] = None,
        exclude_known: bool = True,
    ) -> List[Triple]:
        """Candidate triples ``(?, relation, tail)``, filtered like
        :meth:`tail_candidates`."""
        return link_prediction_candidates(
            self.graph,
            None,
            relation,
            tail,
            exclude_known=exclude_known,
            candidate_entities=candidates if candidates is not None else self._pool,
            known=self._known,
        )

    def top_k_tails(
        self,
        head: int,
        relation: int,
        k: int = 10,
        model: Optional[str] = None,
        candidates: Optional[Sequence[int]] = None,
        exclude_known: bool = True,
    ) -> List[Tuple[int, float]]:
        """Best ``k`` tail completions of ``(head, relation, ?)`` as
        ``(entity, score)`` pairs, best first."""
        triples = self.tail_candidates(head, relation, candidates, exclude_known)
        return rank_predictions(triples, self.score(triples, model), k, side="tail")

    def top_k_heads(
        self,
        tail: int,
        relation: int,
        k: int = 10,
        model: Optional[str] = None,
        candidates: Optional[Sequence[int]] = None,
        exclude_known: bool = True,
    ) -> List[Tuple[int, float]]:
        """Best ``k`` head completions of ``(?, relation, tail)``."""
        triples = self.head_candidates(tail, relation, candidates, exclude_known)
        return rank_predictions(triples, self.score(triples, model), k, side="head")

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-ready session summary for the ``/health`` endpoint."""
        return {
            "graph": {
                "entities": self.graph.num_entities,
                "relations": self.graph.num_relations,
                "triples": len(self.graph),
                "fingerprint": self.graph.fingerprint(),
            },
            "models": self.registry.describe(),
            "cache": self.cache.stats(),
            "use_fused": self.use_fused,
            "workers": (
                self.scoring_pool.workers if self.scoring_pool is not None else 1
            ),
        }
