"""Model registry: named, versioned scorers behind one lookup surface.

A :class:`ModelRegistry` hosts several models (and several versions of the
same model) at once, so a single serving process can answer mixed-model
traffic — RMPI variants next to GraIL/TACT/CoMPILE baselines, or a canary
version next to the stable one.  Models register either as live objects
(:meth:`ModelRegistry.register`) or from checkpoints written by
:func:`repro.train.checkpoint.save_checkpoint`
(:meth:`ModelRegistry.register_checkpoint`), whose ``__meta__`` record is
validated against the receiving architecture and kept as the entry's
metadata.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.base import SubgraphScoringModel
from repro.train.checkpoint import load_checkpoint


@dataclass(frozen=True)
class RegisteredModel:
    """One registry entry: a scorer plus its identifying metadata."""

    name: str
    version: int
    model: SubgraphScoringModel
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Stable identifier, also the score-cache namespace."""
        return f"{self.name}@{self.version}"

    def describe(self) -> Dict[str, Any]:
        """JSON-ready summary for the ``/models`` endpoint."""
        summary = {
            "name": self.name,
            "version": self.version,
            "key": self.key,
            "model_class": type(self.model).__name__,
            "num_parameters": self.model.num_parameters(),
        }
        summary.update(self.meta)
        return summary


class ModelRegistry:
    """Thread-safe mapping of ``name`` (and ``name@version``) to models."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, int], RegisteredModel] = {}
        self._latest: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        model: SubgraphScoringModel,
        version: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> RegisteredModel:
        """Add a model under ``name``; the version auto-increments per name
        unless given explicitly.  Re-registering an existing
        ``(name, version)`` raises ``ValueError`` (publish a new version
        instead of silently replacing a served one)."""
        with self._lock:
            if version is None:
                version = self._latest.get(name, 0) + 1
            version = int(version)
            if (name, version) in self._entries:
                raise ValueError(f"model {name!r} version {version} already registered")
            entry = RegisteredModel(
                name=name, version=version, model=model, meta=dict(meta or {})
            )
            self._entries[(name, version)] = entry
            self._latest[name] = max(self._latest.get(name, 0), version)
            return entry

    def register_checkpoint(
        self,
        name: str,
        model: SubgraphScoringModel,
        path: str,
        version: Optional[int] = None,
        meta: Optional[Dict[str, Any]] = None,
    ) -> RegisteredModel:
        """Load ``path`` into ``model`` (validating the checkpoint's
        ``__meta__`` against it) and register the result; the checkpoint
        metadata is merged into the entry's metadata."""
        checkpoint_meta = load_checkpoint(model, path)
        merged = dict(checkpoint_meta)
        merged["checkpoint"] = path
        merged.update(meta or {})
        return self.register(name, model, version=version, meta=merged)

    # ------------------------------------------------------------------
    def get(self, name: str, version: Optional[int] = None) -> RegisteredModel:
        """Fetch ``name`` at ``version`` (latest when omitted)."""
        with self._lock:
            if version is None:
                if name not in self._latest:
                    raise KeyError(
                        f"no model named {name!r}; registered: {sorted(self._latest) or 'none'}"
                    )
                version = self._latest[name]
            entry = self._entries.get((name, int(version)))
            if entry is None:
                raise KeyError(f"no model {name!r} at version {version}")
            return entry

    def resolve(self, spec: Optional[str]) -> RegisteredModel:
        """Resolve a request's model spec: ``None`` / ``""`` (sole or
        default model), ``"name"`` (latest version) or ``"name@version"``."""
        if not spec:
            with self._lock:
                names = sorted(self._latest)
            if len(names) != 1:
                raise KeyError(
                    f"model spec required when serving {len(names)} models: {names}"
                )
            return self.get(names[0])
        name, _, version = spec.partition("@")
        if version:
            try:
                return self.get(name, int(version))
            except ValueError as error:
                raise KeyError(f"bad model spec {spec!r}: {error}") from error
        return self.get(name)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._latest)

    def entries(self) -> List[RegisteredModel]:
        with self._lock:
            return [self._entries[key] for key in sorted(self._entries)]

    def describe(self) -> List[Dict[str, Any]]:
        return [entry.describe() for entry in self.entries()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._latest
