"""Stdlib-only JSON-over-HTTP serving frontend.

:class:`ServingApp` is the transport-agnostic core — registry + session +
micro-batching scheduler behind a ``handle(method, path, payload)`` method
returning ``(status, json_dict)``.  :class:`ServingServer` exposes it over
``http.server.ThreadingHTTPServer``: handler threads only parse JSON and
enqueue scheduler requests, so concurrent HTTP queries coalesce into
batched model calls while model access stays single-threaded.

Endpoints
---------
``GET  /health``  — liveness + graph/model/cache summary.
``GET  /models``  — registry listing.
``GET  /stats``   — scheduler + cache counters.
``GET  /metrics`` — process metrics registry snapshot (``repro.obs``);
                    ``?format=text`` for the flat-text exposition.
``POST /score``   — ``{"triples": [[h, r, t], ...], "model": "name@v"?}``
                    → ``{"scores": [...], "model": "name@v"}``.
``POST /topk``    — ``{"relation": r, "head": h | "tail": t, "k": 10?,
                    "model"?: ..., "exclude_known"?: true}`` →
                    ranked ``{"predictions": [{"entity", "score"}, ...]}``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.kg.graph import KnowledgeGraph
from repro.obs import get_registry, render_text, span
from repro.serve.cache import DEFAULT_SCORE_CACHE_SIZE
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import (
    DeadlineExceeded,
    MicroBatchScheduler,
    QueueSaturated,
)
from repro.serve.session import InferenceSession, rank_predictions


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving process (see README's Serving section)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral, read the bound port back from the server
    default_model: Optional[str] = None
    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    cache_size: int = DEFAULT_SCORE_CACHE_SIZE
    use_fused: bool = True
    request_timeout_s: float = 60.0
    # Worker-pool scoring backend (repro.parallel): >1 shards each
    # coalesced micro-batch's cache misses across forked scoring workers.
    workers: int = 1
    # Admission control: more than this many requests waiting → 503 with a
    # Retry-After of ``retry_after_s``.  None accepts unboundedly.
    max_queue_depth: Optional[int] = 256
    retry_after_s: float = 1.0
    # Server-side cap on how long a scoring request may live, queue time
    # included; expired requests are dropped before scoring (HTTP 504).
    # Clients can only tighten it per request (``deadline_ms``), never
    # extend it.  None disables deadlines.
    request_deadline_s: Optional[float] = 30.0


class BadRequest(ValueError):
    """Client-side error; rendered as HTTP 400 with the message."""


class NotFound(LookupError):
    """Unknown model/route; rendered as HTTP 404 with the message."""


def _require(payload: Dict[str, Any], key: str) -> Any:
    if key not in payload:
        raise BadRequest(f"missing required field {key!r}")
    return payload[key]


def _as_int(value: Any, field: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError) as error:
        raise BadRequest(f"field {field!r} must be an integer, got {value!r}") from error


def _parse_triples(raw: Any) -> list:
    if not isinstance(raw, list) or not raw:
        raise BadRequest("'triples' must be a non-empty list of [h, r, t]")
    triples = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise BadRequest(f"bad triple {item!r}: expected [head, relation, tail]")
        try:
            triples.append(tuple(int(x) for x in item))
        except (TypeError, ValueError) as error:
            raise BadRequest(f"bad triple {item!r}: {error}") from error
    return triples


class ServingApp:
    """Registry + pinned session + scheduler behind a JSON request surface."""

    def __init__(
        self,
        registry: ModelRegistry,
        graph: KnowledgeGraph,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.config = config or ServingConfig()
        self.registry = registry
        self.session = InferenceSession(
            registry,
            graph,
            default_model=self.config.default_model,
            cache_size=self.config.cache_size,
            use_fused=self.config.use_fused,
        )
        self.scheduler = MicroBatchScheduler(
            self.session,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue_depth=self.config.max_queue_depth,
            retry_after_s=self.config.retry_after_s,
        )
        if self.config.workers > 1:
            # Fork the scoring workers now, while every model registered so
            # far is visible; the session snapshots the registry keys and
            # scores later registrations serially.
            from repro.parallel.serving import scoring_pool

            self.session.attach_scoring_pool(
                scoring_pool(
                    registry,
                    self.session.graph,
                    self.config.workers,
                    use_fused=self.config.use_fused,
                )
            )

    # ------------------------------------------------------------------
    def start(self) -> "ServingApp":
        self.scheduler.start()
        return self

    def close(self) -> None:
        self.scheduler.close()
        self.session.detach_scoring_pool(close=True)

    def describe(self) -> Dict[str, Any]:
        """Startup/dry-run summary (also the CLI's ``serve --dry-run``)."""
        summary = self.session.describe()
        summary["scheduler"] = {
            "max_batch_size": self.config.max_batch_size,
            "max_wait_ms": self.config.max_wait_ms,
            "max_queue_depth": self.config.max_queue_depth,
            "retry_after_s": self.config.retry_after_s,
            "request_deadline_s": self.config.request_deadline_s,
            "running": self.scheduler.is_running,
        }
        summary["default_model"] = self.config.default_model
        return summary

    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """Dispatch one request; returns ``(http_status, json_body)``.

        Every request lands in the ``span.serve.http.request.ms`` latency
        histogram plus per-status-class counters.  The span closes *after*
        a ``/metrics`` body is built, so a metrics scrape reports every
        request except itself — scrape traffic never pads its own tail.
        """
        with span("serve.http.request"):
            status, body = self._route(method, path, payload or {})
        registry = get_registry()
        registry.counter("serve.http.requests").inc()
        registry.counter(f"serve.http.responses.{status // 100}xx").inc()
        return status, body

    def _route(
        self, method: str, path: str, payload: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        try:
            route = (method.upper(), path.rstrip("/") or "/")
            if route == ("GET", "/health"):
                body = self.describe()
                body["status"] = "ok"
                return 200, body
            if route == ("GET", "/models"):
                return 200, {"models": self.registry.describe()}
            if route == ("GET", "/stats"):
                return 200, {
                    "scheduler": self.scheduler.stats.as_dict(),
                    "cache": self.session.cache.stats(),
                }
            if route == ("GET", "/metrics"):
                return 200, get_registry().snapshot()
            if route == ("POST", "/score"):
                return 200, self._score(payload)
            if route == ("POST", "/topk"):
                return 200, self._topk(payload)
            return 404, {"error": f"no route for {method} {path}"}
        except BadRequest as error:
            return 400, {"error": str(error)}
        except NotFound as error:
            return 404, {"error": str(error)}
        except QueueSaturated as error:
            # Load shedding: tell the client to back off instead of letting
            # the backlog (and every in-flight latency) grow without bound.
            get_registry().counter("serve.http.requests_shed").inc()
            return 503, {"error": str(error), "retry_after": error.retry_after_s}
        except DeadlineExceeded as error:
            return 504, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 — a request must never
            # drop the connection without a response.  Client input is fully
            # validated (BadRequest/NotFound) before dispatch, so anything
            # escaping the scoring stack is a server fault: surface a 500.
            return 500, {"error": f"internal error: {type(error).__name__}: {error}"}

    # ------------------------------------------------------------------
    def _validate_triples(self, triples: list) -> list:
        """Range-check ids against the served graph: negative ids would
        otherwise index embedding tables with python wraparound and serve a
        confident score for a nonexistent relation/entity."""
        graph = self.session.graph
        for head, relation, tail in triples:
            if not (0 <= head < graph.num_entities) or not (
                0 <= tail < graph.num_entities
            ):
                raise BadRequest(
                    f"entity id out of range [0, {graph.num_entities}) in "
                    f"triple {[head, relation, tail]}"
                )
            if not (0 <= relation < graph.num_relations):
                raise BadRequest(
                    f"relation id {relation} out of range [0, {graph.num_relations})"
                )
        return triples

    def _resolve_model(self, spec: Optional[str]):
        try:
            return self.session.resolve_model(spec)
        except KeyError as error:
            raise NotFound(
                str(error.args[0]) if error.args else str(error)
            ) from error

    def _deadline(self, payload: Dict[str, Any]) -> Optional[float]:
        """Absolute monotonic deadline for one scoring request.

        The server's ``request_deadline_s`` is the ceiling; a client
        ``deadline_ms`` can only tighten it.  The deadline covers the whole
        scheduler round trip — queue wait included — so a request that
        expires while queued is dropped before any model time is spent.
        """
        budget = self.config.request_deadline_s
        raw = payload.get("deadline_ms")
        if raw is not None:
            requested = _as_int(raw, "deadline_ms") / 1000.0
            if requested <= 0:
                raise BadRequest("'deadline_ms' must be > 0")
            budget = requested if budget is None else min(requested, budget)
        if budget is None:
            return None
        return time.monotonic() + budget

    def _score(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        triples = self._validate_triples(_parse_triples(_require(payload, "triples")))
        model = payload.get("model")
        deadline = self._deadline(payload)
        entry = self._resolve_model(model)  # fail fast on bad specs
        scores = self.scheduler.score_sync(
            triples,
            model,
            timeout=self.config.request_timeout_s,
            deadline=deadline,
        )
        return {"model": entry.key, "scores": [float(s) for s in scores]}

    def _topk(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        relation = _as_int(_require(payload, "relation"), "relation")
        head = payload.get("head")
        tail = payload.get("tail")
        if (head is None) == (tail is None):
            raise BadRequest("provide exactly one of 'head' (rank tails) or 'tail' (rank heads)")
        k = _as_int(payload.get("k", 10), "k")
        model = payload.get("model")
        deadline = self._deadline(payload)
        exclude_known = bool(payload.get("exclude_known", True))
        candidates = payload.get("candidates")
        graph = self.session.graph
        if not (0 <= relation < graph.num_relations):
            raise BadRequest(
                f"relation id {relation} out of range [0, {graph.num_relations})"
            )
        anchor = _as_int(head if head is not None else tail, "head/tail")
        if not (0 <= anchor < graph.num_entities):
            raise BadRequest(
                f"entity id {anchor} out of range [0, {graph.num_entities})"
            )
        if candidates is not None:
            # The default pool is in-range by construction; only explicit
            # candidate lists can smuggle out-of-range ids.
            if not isinstance(candidates, list):
                raise BadRequest("'candidates' must be a list of entity ids")
            candidates = [_as_int(c, "candidates") for c in candidates]
            for entity in candidates:
                if not (0 <= entity < graph.num_entities):
                    raise BadRequest(
                        f"entity id {entity} out of range [0, {graph.num_entities})"
                    )
        entry = self._resolve_model(model)
        if head is not None:
            triples = self.session.tail_candidates(
                anchor, relation, candidates, exclude_known
            )
            side = "tail"
        else:
            triples = self.session.head_candidates(
                anchor, relation, candidates, exclude_known
            )
            side = "head"
        if not triples:
            return {
                "model": entry.key,
                "direction": side,
                "num_candidates": 0,
                "predictions": [],
            }
        scores = self.scheduler.score_sync(
            triples,
            model,
            timeout=self.config.request_timeout_s,
            deadline=deadline,
        )
        predictions = rank_predictions(triples, scores, k, side=side)
        return {
            "model": entry.key,
            "direction": side,
            "num_candidates": len(triples),
            "predictions": [
                {"entity": entity, "score": score} for entity, score in predictions
            ],
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON adapter over :meth:`ServingApp.handle`."""

    app: ServingApp  # set by ServingServer on the handler class

    protocol_version = "HTTP/1.1"

    def _respond(
        self,
        status: int,
        body: Dict[str, Any],
        text: Optional[str] = None,
    ) -> None:
        if text is not None:
            encoded = text.encode("utf-8")
            content_type = "text/plain; charset=utf-8"
        else:
            encoded = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        if status == 503 and isinstance(body.get("retry_after"), (int, float)):
            # RFC 9110 Retry-After is integral seconds; round up so a
            # compliant client never comes back before the hint.
            self.send_header("Retry-After", str(math.ceil(body["retry_after"])))
        self.end_headers()
        self.wfile.write(encoded)

    def _route_path(self) -> str:
        return urlsplit(self.path).path

    def _query(self) -> Dict[str, str]:
        return {
            key: values[-1]
            for key, values in parse_qs(urlsplit(self.path).query).items()
        }

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        path = self._route_path()
        query = self._query()
        status, body = self.app.handle("GET", path, query)
        if (
            status == 200
            and path.rstrip("/") == "/metrics"
            and query.get("format") == "text"
        ):
            self._respond(status, body, text=render_text(body))
            return
        self._respond(status, body)

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
        except (UnicodeDecodeError, ValueError) as error:
            self._respond(400, {"error": f"bad JSON body: {error}"})
            return
        status, body = self.app.handle("POST", self._route_path(), payload)
        self._respond(status, body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep the serving process quiet; /stats carries the counters


class ServingServer:
    """A :class:`ServingApp` bound to a ``ThreadingHTTPServer``."""

    def __init__(self, app: ServingApp, host: str = None, port: int = None) -> None:
        self.app = app
        host = app.config.host if host is None else host
        port = app.config.port if port is None else port
        handler = type("_BoundHandler", (_Handler,), {"app": app})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return int(self._httpd.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Blocking serve loop (the CLI's foreground mode)."""
        self.app.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.shutdown()

    def start_background(self) -> "ServingServer":
        """Serve from a daemon thread (tests, smoke checks, notebooks)."""
        self.app.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()

    def __enter__(self) -> "ServingServer":
        return self.start_background()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
