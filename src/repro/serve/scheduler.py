"""Micro-batching request scheduler for the serving layer.

Concurrent callers submit scoring requests (any number of triples each) to
a queue and receive ``concurrent.futures.Future`` handles.  A single
worker thread drains the queue, coalescing requests into batches of at
most ``max_batch_size`` triples: after the first request of a batch it
keeps accepting more for up to ``max_wait_ms`` (classic size-or-deadline
micro-batching), then dispatches ONE
:meth:`~repro.serve.session.InferenceSession.score` call per distinct
model in the batch.  N coalesced same-model requests therefore reach the
model as a single batched ``score_triples`` invocation — asserted in the
tests via the model's :class:`~repro.core.base.ScoringStats` counter.

The single worker also serialises all model access, which is what makes
the numpy models (mutable sample caches, train/eval toggling) safe to
drive from the threaded HTTP frontend.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.engine import SCORE_DTYPE
from repro.faults.plan import FaultInjected, active_plan
from repro.kg.triples import Triple
from repro.obs import get_registry, span
from repro.serve.session import InferenceSession


class SchedulerStopped(RuntimeError):
    """Raised by :meth:`MicroBatchScheduler.submit` once the scheduler is
    stopped for good — late requests fail fast instead of hanging against a
    queue nobody drains."""

    def __init__(self, message: str = "scheduler is stopped") -> None:
        super().__init__(message)


class QueueSaturated(RuntimeError):
    """Admission control rejection: the request queue is at its watermark.

    Carries ``retry_after_s``, the server's backoff hint, which the HTTP
    layer turns into a 503 with a ``Retry-After`` header."""

    def __init__(self, depth: int, watermark: int, retry_after_s: float) -> None:
        super().__init__(
            f"scheduler queue saturated ({depth} waiting >= watermark "
            f"{watermark}); retry in {retry_after_s:g}s"
        )
        self.depth = depth
        self.watermark = watermark
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before its batch was scored; the
    scheduler drops such requests *before* spending model time on them."""


#: Fault kinds the scheduler's dispatch hook can execute (it runs in the
#: parent process, so crash/drop faults do not apply here).
_DISPATCH_KINDS = ("error", "latency")


@dataclass
class SchedulerStats:
    """Coalescing observability: how requests became batches.

    The same numbers are mirrored into the process metrics registry under
    ``serve.scheduler.*`` so ``GET /metrics`` reports them; this dataclass
    remains the scheduler-local view behind ``GET /stats``.
    """

    requests: int = 0
    batches: int = 0
    dispatches: int = 0  # model calls (≥ batches under mixed-model traffic)
    triples: int = 0
    largest_batch_requests: int = 0
    largest_batch_triples: int = 0

    def as_dict(self) -> dict:
        return dict(vars(self))

    def snapshot(self) -> dict:
        """Point-in-time copy — subtract two snapshots instead of resetting
        a scheduler that other tests share."""
        return self.as_dict()


@dataclass
class _Request:
    triples: List[Triple]
    model: Optional[str]
    #: Absolute ``time.monotonic()`` deadline, or None for no deadline.
    deadline: Optional[float] = None
    future: "Future[np.ndarray]" = field(default_factory=Future)


_STOP = object()


class MicroBatchScheduler:
    """Coalesces concurrent scoring requests into batched model calls.

    Parameters
    ----------
    session:
        The :class:`InferenceSession` all batches are scored through.
    max_batch_size:
        Dispatch as soon as a batch holds this many triples.  A single
        oversized request is never split — it dispatches alone.
    max_wait_ms:
        After a batch's first request, how long to keep the batch open for
        more arrivals before dispatching a partial batch.
    max_queue_depth:
        Admission watermark: a submit that would leave more than this many
        requests waiting is rejected with :class:`QueueSaturated` (the HTTP
        layer's 503).  ``None`` disables load shedding.
    retry_after_s:
        Backoff hint carried by :class:`QueueSaturated` rejections.
    """

    def __init__(
        self,
        session: InferenceSession,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        max_queue_depth: Optional[int] = None,
        retry_after_s: float = 1.0,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if retry_after_s <= 0:
            raise ValueError("retry_after_s must be > 0")
        self.session = session
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.max_queue_depth = max_queue_depth
        self.retry_after_s = float(retry_after_s)
        self.stats = SchedulerStats()
        # Batch-dispatch counter: the task_index axis of the fault-plan key
        # for the "serve.dispatch" consultation point.
        self._dispatch_index = 0
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._retiring: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        # Accepts submissions from construction (pre-start submits coalesce
        # once the worker runs); a *completed* stop() flips this off so late
        # submissions fail fast instead of hanging in a dead queue.
        self._accepting = True

    # ------------------------------------------------------------------
    def start(self) -> "MicroBatchScheduler":
        with self._lock:
            if self._worker is not None and self._worker.is_alive():
                return self
            if self._retiring is not None:
                # A stopped worker may still be draining its backlog; wait
                # it out so two workers never pull from the queue (and call
                # the thread-unsafe models) concurrently.
                self._retiring.join()
                self._retiring = None
            self._worker = threading.Thread(
                target=self._run, name="repro-serve-scheduler", daemon=True
            )
            self._accepting = True
            self._worker.start()
        return self

    def stop(self, timeout: Optional[float] = 5.0) -> None:
        """Stop the worker after it drains everything already queued.

        If the drain outlives ``timeout`` the worker keeps running in the
        background; a later :meth:`start` waits for it before spawning a
        replacement, preserving single-worker model access.
        """
        with self._lock:
            worker = self._worker
            if worker is None:
                return
            self._worker = None
            # Hand the worker over to _retiring BEFORE releasing the lock:
            # a concurrent start() during the join window below must see it
            # and wait, or two workers would drain the queue at once.
            self._retiring = worker
        self._queue.put(_STOP)
        worker.join(timeout=timeout)
        if not worker.is_alive():
            with self._lock:
                if self._retiring is worker:
                    self._retiring = None

    def close(self, timeout: Optional[float] = 5.0) -> None:
        """Terminal stop: refuse new submissions, drain the queue, and fail
        any request that raced past the final drain — nothing is left
        hanging against a dead queue.  :meth:`start` re-opens the scheduler."""
        self._accepting = False
        self.stop(timeout=timeout)
        with self._lock:
            draining = self._retiring is not None and self._retiring.is_alive()
        if not draining:
            # No worker left to serve stragglers; fail their futures fast.
            self._flush_queue()

    def _flush_queue(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            if not item.future.cancelled():
                item.future.set_exception(SchedulerStopped())

    @property
    def is_running(self) -> bool:
        worker = self._worker
        return worker is not None and worker.is_alive()

    def queue_depth(self) -> int:
        """Requests currently waiting (approximate, for observability)."""
        return self._queue.qsize()

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def submit(
        self,
        triples: Sequence[Triple],
        model: Optional[str] = None,
        deadline: Optional[float] = None,
    ) -> "Future[np.ndarray]":
        """Enqueue a scoring request; the future resolves to the score
        array (order-aligned with ``triples``).  Requests may be submitted
        before :meth:`start` — they coalesce once the worker runs.  After
        :meth:`close`, submissions raise :class:`SchedulerStopped` until
        the scheduler is started again (:meth:`stop` alone is a restartable
        pause and keeps accepting).  With ``max_queue_depth`` set, a submit
        against a saturated queue is rejected with :class:`QueueSaturated`
        instead of growing the backlog unboundedly.  ``deadline`` is an
        absolute ``time.monotonic()`` instant past which the request is
        dropped (:class:`DeadlineExceeded`) rather than scored."""
        if not self._accepting:
            raise SchedulerStopped()
        registry = get_registry()
        depth = self._queue.qsize()
        if self.max_queue_depth is not None and depth >= self.max_queue_depth:
            registry.counter("serve.scheduler.requests_shed").inc()
            raise QueueSaturated(depth, self.max_queue_depth, self.retry_after_s)
        request = _Request(
            triples=[tuple(int(x) for x in triple) for triple in triples],
            model=model,
            deadline=deadline,
        )
        if not request.triples:
            request.future.set_result(np.empty(0, dtype=SCORE_DTYPE))
            return request.future
        self._queue.put(request)
        registry.gauge("serve.scheduler.queue_depth").set(self._queue.qsize())
        if not self._accepting and not self.is_running:
            # The request raced a concurrent close() past its final drain;
            # nobody will ever serve it, so fail it (and any fellow
            # stragglers) fast instead of leaving the future hanging.
            with self._lock:
                draining = self._retiring is not None and self._retiring.is_alive()
            if not draining:
                self._flush_queue()
        return request.future

    def score_sync(
        self,
        triples: Sequence[Triple],
        model: Optional[str] = None,
        timeout: Optional[float] = 30.0,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Submit and wait — the one-call convenience the HTTP handlers use.

        With a ``deadline`` the wait is capped at the deadline plus one
        batch window of grace (the scheduler needs to *pick up* the request
        to notice it expired); a wait that still times out is surfaced as
        :class:`DeadlineExceeded` so callers see one deadline error type.
        """
        future = self.submit(triples, model, deadline=deadline)
        wait = timeout
        if deadline is not None:
            grace = self.max_wait_ms / 1000.0 + 0.25
            remaining = max(0.0, deadline - time.monotonic()) + grace
            wait = remaining if timeout is None else min(timeout, remaining)
        try:
            return future.result(timeout=wait)
        except FutureTimeout:
            future.cancel()
            if deadline is not None:
                get_registry().counter("serve.scheduler.deadline_expired").inc()
                raise DeadlineExceeded(
                    "request deadline exceeded while waiting for dispatch"
                ) from None
            raise

    # ------------------------------------------------------------------
    def _collect_batch(self, first: "_Request") -> List[_Request]:
        """Gather requests for one batch: up to ``max_batch_size`` triples
        or until ``max_wait_ms`` elapses after the first arrival."""
        batch = [first]
        total = len(first.triples)
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while total < self.max_batch_size:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
            if item is _STOP:
                # Keep the sentinel effective for the outer loop.
                self._queue.put(_STOP)
                break
            batch.append(item)
            total += len(item.triples)
        return batch

    def _dispatch(self, batch: List[_Request]) -> None:
        registry = get_registry()
        registry.gauge("serve.scheduler.queue_depth").set(self._queue.qsize())
        self.stats.requests += len(batch)
        registry.counter("serve.scheduler.requests").inc(len(batch))
        # Deadline check BEFORE any model time is spent: a request whose
        # deadline passed while it sat in the queue is already a lost cause
        # for its caller — scoring it would only delay everyone behind it.
        now = time.monotonic()
        alive: List[_Request] = []
        for request in batch:
            if request.deadline is not None and now >= request.deadline:
                registry.counter("serve.scheduler.deadline_expired").inc()
                if not request.future.cancelled():
                    request.future.set_exception(
                        DeadlineExceeded(
                            "request deadline expired before dispatch"
                        )
                    )
                continue
            alive.append(request)
        batch = alive
        if not batch:
            return
        # Chaos hook: the "serve.dispatch" consultation point, keyed by the
        # batch-dispatch index.  Runs in the parent process, so only
        # error/latency kinds apply.
        spec = active_plan().take(
            "serve.dispatch", 0, self._dispatch_index, kinds=_DISPATCH_KINDS
        )
        self._dispatch_index += 1
        if spec is not None:
            if spec.kind == "latency":
                time.sleep(spec.latency_s)
            else:
                error = FaultInjected(spec.message)
                for request in batch:
                    if not request.future.cancelled():
                        request.future.set_exception(error)
                return
        # One model call per distinct model in the batch, preserving request
        # order within each group.  Grouping is by the RESOLVED registry key,
        # so equivalent specs ("name", "name@latest-version", default None)
        # coalesce into one dispatch instead of defeating micro-batching.
        groups: Dict[str, List[_Request]] = {}
        for request in batch:
            try:
                key = self.session.resolve_model(request.model).key
            except Exception as error:  # noqa: BLE001 — unknown model specs
                if not request.future.cancelled():
                    request.future.set_exception(error)
                continue
            groups.setdefault(key, []).append(request)
        if not groups:
            return
        # Batch accounting covers only resolvable requests, so /stats never
        # reports triples the models were never asked to score.
        scorable = [request for requests in groups.values() for request in requests]
        self.stats.batches += 1
        total = sum(len(request.triples) for request in scorable)
        self.stats.triples += total
        self.stats.largest_batch_requests = max(
            self.stats.largest_batch_requests, len(scorable)
        )
        self.stats.largest_batch_triples = max(
            self.stats.largest_batch_triples, total
        )
        registry.counter("serve.scheduler.batches").inc()
        registry.counter("serve.scheduler.triples").inc(total)
        registry.gauge("serve.scheduler.largest_batch_requests").set_max(
            len(scorable)
        )
        registry.gauge("serve.scheduler.largest_batch_triples").set_max(total)
        for key, requests in groups.items():
            flat: List[Triple] = []
            for request in requests:
                flat.extend(request.triples)
            try:
                with span("serve.dispatch"):
                    scores = self.session.score(flat, key)
                self.stats.dispatches += 1
                registry.counter("serve.scheduler.dispatches").inc()
            except Exception as error:  # noqa: BLE001 — delivered via futures
                for request in requests:
                    if not request.future.cancelled():
                        request.future.set_exception(error)
                continue
            offset = 0
            for request in requests:
                chunk = scores[offset : offset + len(request.triples)]
                offset += len(request.triples)
                if not request.future.cancelled():
                    request.future.set_result(chunk)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                # Drain whatever was queued before the stop request.
                pending: List[_Request] = []
                while True:
                    try:
                        tail = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if tail is not _STOP:
                        pending.append(tail)
                for request in pending:
                    self._dispatch([request])
                return
            self._dispatch(self._collect_batch(item))
