"""Serving smoke check: boot a real server, query it, assert sanity.

Run as ``PYTHONPATH=src python -m repro.serve.smoke`` (the CI serving job
step).  Builds a small synthetic benchmark, registers an untrained
RMPI-base scorer, boots the HTTP server on an ephemeral port, then issues
a scored query, a top-k query, and a ``/metrics`` scrape through the thin
client — asserting HTTP 200, well-formed JSON, and that the request
histogram and cache counters made it into the registry.  Exit code 0 on
success.

``--chaos`` instead boots a server with a tiny admission watermark and an
injected dispatch-latency fault plan, drives it with the concurrent load
generator, and asserts the overload story end to end: nonzero
``serve.scheduler.requests_shed`` in ``/metrics``, 503s observed by the
clients, and a clean 200 once the chaos plan is exhausted (the CI chaos
step).
"""

from __future__ import annotations

import sys
from typing import List, Optional

import numpy as np

from repro.core import RMPI, RMPIConfig
from repro.kg import build_partial_benchmark
from repro.serve.client import ServingClient
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServingApp, ServingConfig, ServingServer
from repro.utils.seeding import seeded_rng


def chaos_main() -> int:
    """The ``--chaos`` mode: saturate a tiny-watermark server and assert it
    sheds (503 + ``Retry-After``) and recovers instead of queueing forever."""
    from repro.benchmarks.loadgen import run_load_sweep
    from repro.faults import FaultPlan, FaultSpec, inject

    benchmark = build_partial_benchmark("NELL-995", 1, scale=0.05, seed=0)
    registry = ModelRegistry()
    registry.register(
        "RMPI-base",
        RMPI(benchmark.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16)),
        meta={"benchmark": benchmark.name},
    )
    app = ServingApp(
        registry,
        benchmark.test_graph,
        ServingConfig(
            port=0,
            default_model="RMPI-base",
            max_wait_ms=1.0,
            max_queue_depth=2,  # tiny watermark: overload must shed, not queue
            retry_after_s=0.2,
            request_deadline_s=10.0,
        ),
    )
    test_triples = list(benchmark.test_triples)[:8]
    # Every dispatch sleeps a little, so closed-loop clients outrun the
    # scheduler and pile onto the 2-deep queue — deterministic saturation.
    plan = FaultPlan(
        [
            FaultSpec(
                op="serve.dispatch", kind="latency", latency_s=0.05, times=10_000
            )
        ]
    )
    with ServingServer(app) as server, inject(plan):
        sweep = run_load_sweep(
            server.url,
            test_triples,
            client_levels=(8,),
            requests_per_client=25,
            timeout=10.0,
        )
        level = sweep.levels[0]
        assert level.errors > 0, (
            f"expected shed requests under saturation, got {level.as_dict()}"
        )
        client = ServingClient(server.url, retries=0)
        status, snap = client.request("GET", "/metrics")
        assert status == 200, f"/metrics returned {status}: {snap}"
        counters = snap.get("counters", {})
        shed = counters.get("serve.scheduler.requests_shed", 0)
        assert shed > 0, f"no serve.scheduler.requests_shed in {counters}"
        assert counters.get("faults.injected.latency", 0) > 0, counters
    # Past the chaos scope: the next request must succeed — shedding is
    # backpressure, not an outage.
    with ServingServer(app) as server:
        client = ServingClient(server.url)
        status, body = client.request(
            "POST", "/score", {"triples": [list(test_triples[0])]}
        )
        assert status == 200, f"post-chaos /score returned {status}: {body}"
        print(
            f"chaos smoke OK at {server.url}: {int(shed)} shed "
            f"({level.errors} client-observed errors, "
            f"{level.requests} served) and recovered"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if "--chaos" in args:
        return chaos_main()
    benchmark = build_partial_benchmark("NELL-995", 1, scale=0.05, seed=0)
    registry = ModelRegistry()
    registry.register(
        "RMPI-base",
        RMPI(benchmark.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16)),
        meta={"benchmark": benchmark.name},
    )
    app = ServingApp(
        registry,
        benchmark.test_graph,
        ServingConfig(port=0, default_model="RMPI-base", max_wait_ms=1.0),
    )
    test_triple = next(iter(benchmark.test_triples))
    with ServingServer(app) as server:
        client = ServingClient(server.url)

        status, body = client.request("GET", "/health")
        assert status == 200, f"/health returned {status}: {body}"
        assert body.get("status") == "ok" and body.get("models"), body

        status, body = client.request(
            "POST", "/score", {"triples": [list(test_triple)]}
        )
        assert status == 200, f"/score returned {status}: {body}"
        scores = body.get("scores")
        assert (
            isinstance(scores, list)
            and len(scores) == 1
            and isinstance(scores[0], float)
            and np.isfinite(scores[0])
        ), body

        status, body = client.request(
            "POST",
            "/topk",
            {"head": int(test_triple[0]), "relation": int(test_triple[1]), "k": 5},
        )
        assert status == 200, f"/topk returned {status}: {body}"
        predictions = body.get("predictions")
        assert isinstance(predictions, list) and len(predictions) <= 5, body
        for row in predictions:
            assert isinstance(row.get("entity"), int), body
            assert isinstance(row.get("score"), float), body

        status, snap = client.request("GET", "/metrics")
        assert status == 200, f"/metrics returned {status}: {snap}"
        counters = snap.get("counters", {})
        # The scrape excludes itself, so /health + /score + /topk = 3.
        assert counters.get("serve.http.requests") == 3, counters
        assert counters.get("serve.http.responses.2xx") == 3, counters
        assert "serve.cache.misses" in counters, counters
        histograms = snap.get("histograms", {})
        assert histograms.get("span.serve.http.request.ms", {}).get("count") == 3, (
            histograms
        )

        print(
            f"serving smoke OK at {server.url}: score={scores[0]:+.4f}, "
            f"top-{len(predictions)} of {body.get('num_candidates', 0)} candidates, "
            f"{int(counters['serve.http.requests'])} requests on /metrics"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
