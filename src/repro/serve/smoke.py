"""Serving smoke check: boot a real server, query it, assert sanity.

Run as ``PYTHONPATH=src python -m repro.serve.smoke`` (the CI serving job
step).  Builds a small synthetic benchmark, registers an untrained
RMPI-base scorer, boots the HTTP server on an ephemeral port, then issues
a scored query, a top-k query, and a ``/metrics`` scrape through the thin
client — asserting HTTP 200, well-formed JSON, and that the request
histogram and cache counters made it into the registry.  Exit code 0 on
success.
"""

from __future__ import annotations

import sys
from typing import List, Optional

import numpy as np

from repro.core import RMPI, RMPIConfig
from repro.kg import build_partial_benchmark
from repro.serve.client import ServingClient
from repro.serve.registry import ModelRegistry
from repro.serve.server import ServingApp, ServingConfig, ServingServer
from repro.utils.seeding import seeded_rng


def main(argv: Optional[List[str]] = None) -> int:
    benchmark = build_partial_benchmark("NELL-995", 1, scale=0.05, seed=0)
    registry = ModelRegistry()
    registry.register(
        "RMPI-base",
        RMPI(benchmark.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16)),
        meta={"benchmark": benchmark.name},
    )
    app = ServingApp(
        registry,
        benchmark.test_graph,
        ServingConfig(port=0, default_model="RMPI-base", max_wait_ms=1.0),
    )
    test_triple = next(iter(benchmark.test_triples))
    with ServingServer(app) as server:
        client = ServingClient(server.url)

        status, body = client.request("GET", "/health")
        assert status == 200, f"/health returned {status}: {body}"
        assert body.get("status") == "ok" and body.get("models"), body

        status, body = client.request(
            "POST", "/score", {"triples": [list(test_triple)]}
        )
        assert status == 200, f"/score returned {status}: {body}"
        scores = body.get("scores")
        assert (
            isinstance(scores, list)
            and len(scores) == 1
            and isinstance(scores[0], float)
            and np.isfinite(scores[0])
        ), body

        status, body = client.request(
            "POST",
            "/topk",
            {"head": int(test_triple[0]), "relation": int(test_triple[1]), "k": 5},
        )
        assert status == 200, f"/topk returned {status}: {body}"
        predictions = body.get("predictions")
        assert isinstance(predictions, list) and len(predictions) <= 5, body
        for row in predictions:
            assert isinstance(row.get("entity"), int), body
            assert isinstance(row.get("score"), float), body

        status, snap = client.request("GET", "/metrics")
        assert status == 200, f"/metrics returned {status}: {snap}"
        counters = snap.get("counters", {})
        # The scrape excludes itself, so /health + /score + /topk = 3.
        assert counters.get("serve.http.requests") == 3, counters
        assert counters.get("serve.http.responses.2xx") == 3, counters
        assert "serve.cache.misses" in counters, counters
        histograms = snap.get("histograms", {})
        assert histograms.get("span.serve.http.request.ms", {}).get("count") == 3, (
            histograms
        )

        print(
            f"serving smoke OK at {server.url}: score={scores[0]:+.4f}, "
            f"top-{len(predictions)} of {body.get('num_candidates', 0)} candidates, "
            f"{int(counters['serve.http.requests'])} requests on /metrics"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
