"""`repro.serve` — online inference serving.

The serving layer turns the offline reproduction into a queryable system
(the ROADMAP's "serve heavy traffic" direction): a versioned
:class:`ModelRegistry` hosting any :class:`~repro.eval.protocol.TripleScorer`,
an :class:`InferenceSession` pinning one warmed
:class:`~repro.kg.graph.KnowledgeGraph` with a bounded LRU score cache,
a :class:`MicroBatchScheduler` coalescing concurrent queries into single
batched (fused, for RMPI) scoring calls, and a stdlib JSON-over-HTTP
frontend (:class:`ServingServer`) with a thin :class:`ServingClient`.
Start one from the command line with ``python -m repro.cli serve``.
"""

from repro.serve.cache import DEFAULT_SCORE_CACHE_SIZE, ScoreCache
from repro.serve.client import ServingClient, ServingError
from repro.serve.registry import ModelRegistry, RegisteredModel
from repro.serve.scheduler import MicroBatchScheduler, SchedulerStats
from repro.serve.server import ServingApp, ServingConfig, ServingServer
from repro.serve.session import InferenceSession, rank_predictions

__all__ = [
    "ScoreCache",
    "DEFAULT_SCORE_CACHE_SIZE",
    "ModelRegistry",
    "RegisteredModel",
    "InferenceSession",
    "rank_predictions",
    "MicroBatchScheduler",
    "SchedulerStats",
    "ServingApp",
    "ServingConfig",
    "ServingServer",
    "ServingClient",
    "ServingError",
]
