"""`repro.serve` — online inference serving.

The serving layer turns the offline reproduction into a queryable system
(the ROADMAP's "serve heavy traffic" direction): a versioned
:class:`ModelRegistry` hosting any :class:`~repro.eval.protocol.TripleScorer`,
an :class:`InferenceSession` pinning one warmed
:class:`~repro.kg.graph.KnowledgeGraph` with a bounded LRU score cache,
a :class:`MicroBatchScheduler` coalescing concurrent queries into single
batched (fused, for RMPI) scoring calls, and a stdlib JSON-over-HTTP
frontend (:class:`ServingServer`) with a thin :class:`ServingClient`.
Start one from the command line with ``python -m repro.cli serve``.

Overload and failure are first-class: the scheduler sheds load past a
queue watermark (:class:`QueueSaturated` → HTTP 503 + ``Retry-After``),
drops requests whose deadline expired before scoring
(:class:`DeadlineExceeded` → HTTP 504), fails fast after a terminal stop
(:class:`SchedulerStopped`), and the client retries idempotent calls with
capped jittered backoff before giving up with :class:`ServingUnavailable`.
"""

from repro.serve.cache import DEFAULT_SCORE_CACHE_SIZE, ScoreCache
from repro.serve.client import ServingClient, ServingError, ServingUnavailable
from repro.serve.registry import ModelRegistry, RegisteredModel
from repro.serve.scheduler import (
    DeadlineExceeded,
    MicroBatchScheduler,
    QueueSaturated,
    SchedulerStats,
    SchedulerStopped,
)
from repro.serve.server import ServingApp, ServingConfig, ServingServer
from repro.serve.session import InferenceSession, rank_predictions

__all__ = [
    "ScoreCache",
    "DEFAULT_SCORE_CACHE_SIZE",
    "DeadlineExceeded",
    "ModelRegistry",
    "RegisteredModel",
    "InferenceSession",
    "rank_predictions",
    "MicroBatchScheduler",
    "QueueSaturated",
    "SchedulerStats",
    "SchedulerStopped",
    "ServingApp",
    "ServingConfig",
    "ServingServer",
    "ServingClient",
    "ServingError",
    "ServingUnavailable",
]
