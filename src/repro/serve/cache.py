"""Bounded LRU cache of per-triple scores for the serving layer.

Entries are keyed ``(model_key, graph_fingerprint, triple)``: the graph's
content hash (:meth:`repro.kg.graph.KnowledgeGraph.fingerprint`) is part of
every key, so scores computed against one graph can never be served for
another — swapping or mutating the served graph invalidates the cache
without any explicit flush (stale entries simply stop being hit and age
out of the LRU).  :meth:`invalidate_graph` evicts them eagerly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.kg.triples import Triple
from repro.obs import get_registry

#: Default bound on cached scores (one float per entry; 64k entries is a
#: few MB including key overhead).
DEFAULT_SCORE_CACHE_SIZE = 65_536

ScoreKey = Tuple[str, str, Triple]


class ScoreCache:
    """A bounded LRU mapping ``(model_key, graph_fingerprint, triple)`` to a
    float score, with hit/miss counters for observability."""

    def __init__(self, maxsize: int = DEFAULT_SCORE_CACHE_SIZE) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self._store: "OrderedDict[ScoreKey, float]" = OrderedDict()

    def get(self, key: ScoreKey) -> Optional[float]:
        value = self._store.get(key)
        if value is None:
            self.misses += 1
            get_registry().counter("serve.cache.misses").inc()
            return None
        self._store.move_to_end(key)
        self.hits += 1
        get_registry().counter("serve.cache.hits").inc()
        return value

    def put(self, key: ScoreKey, value: float) -> None:
        if self.maxsize <= 0:
            return
        self._store.pop(key, None)
        self._store[key] = float(value)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def invalidate_graph(self, fingerprint: str) -> int:
        """Evict every entry computed against ``fingerprint``; returns the
        number of entries dropped."""
        stale = [key for key in self._store if key[1] == fingerprint]
        for key in stale:
            del self._store[key]
        return len(stale)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        return {
            "entries": len(self._store),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }
