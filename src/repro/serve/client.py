"""Thin stdlib client for the serving HTTP API.

``urllib.request`` only — usable from any Python without installing
anything.  Typed helpers mirror the server's endpoints; :meth:`request`
exposes the raw ``(status, body)`` pair for smoke checks.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.kg.triples import Triple


class ServingError(RuntimeError):
    """A non-2xx response from the serving API."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServingClient:
    """Client for one serving endpoint, e.g. ``ServingClient("http://127.0.0.1:8080")``."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round-trip; returns ``(status, parsed_json)`` without raising
        on HTTP errors (smoke checks assert on the raw status)."""
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method.upper()
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                body = json.loads(raw)
            except ValueError:
                body = {"error": raw}
            return error.code, body

    def _call(self, method: str, path: str, payload: Optional[Dict[str, Any]] = None):
        status, body = self.request(method, path, payload)
        if status != 200:
            raise ServingError(status, body)
        return body

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def models(self) -> List[Dict[str, Any]]:
        return self._call("GET", "/models")["models"]

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/stats")

    def score(
        self, triples: Sequence[Triple], model: Optional[str] = None
    ) -> List[float]:
        payload: Dict[str, Any] = {"triples": [list(t) for t in triples]}
        if model:
            payload["model"] = model
        return self._call("POST", "/score", payload)["scores"]

    def top_k_tails(
        self,
        head: int,
        relation: int,
        k: int = 10,
        model: Optional[str] = None,
        exclude_known: bool = True,
    ) -> List[Dict[str, Any]]:
        payload: Dict[str, Any] = {
            "head": int(head),
            "relation": int(relation),
            "k": int(k),
            "exclude_known": exclude_known,
        }
        if model:
            payload["model"] = model
        return self._call("POST", "/topk", payload)["predictions"]

    def top_k_heads(
        self,
        tail: int,
        relation: int,
        k: int = 10,
        model: Optional[str] = None,
        exclude_known: bool = True,
    ) -> List[Dict[str, Any]]:
        payload: Dict[str, Any] = {
            "tail": int(tail),
            "relation": int(relation),
            "k": int(k),
            "exclude_known": exclude_known,
        }
        if model:
            payload["model"] = model
        return self._call("POST", "/topk", payload)["predictions"]
