"""Thin stdlib client for the serving HTTP API.

``urllib.request`` only — usable from any Python without installing
anything.  Typed helpers mirror the server's endpoints; :meth:`request`
exposes the raw ``(status, body)`` pair for smoke checks.

Fault tolerance: connection-level failures surface as the typed
:class:`ServingUnavailable` (never a raw ``URLError``), and the typed
helpers retry **idempotent** calls — health/models/stats/score/topk, all
safe to repeat because scoring is a pure read — on 503s and connection
failures with capped, jittered exponential backoff.  A 503 carrying the
server's ``retry_after`` hint bounds the sleep from below at the server's
request.  The jitter source is a dedicated seeded ``random.Random``, so
retry schedules are reproducible in tests without touching global RNG
state.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.kg.triples import Triple
from repro.obs import get_registry


class ServingError(RuntimeError):
    """A non-2xx response from the serving API."""

    def __init__(self, status: int, body: Dict[str, Any]) -> None:
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServingUnavailable(ServingError):
    """The server is unreachable or shedding load (connection failure or a
    503 that outlived the retry budget).  Wraps the underlying
    ``urllib.error.URLError`` when one exists (``__cause__``)."""

    def __init__(
        self, reason: str, cause: Optional[BaseException] = None
    ) -> None:
        super().__init__(503, {"error": reason})
        self.__cause__ = cause


class ServingClient:
    """Client for one serving endpoint, e.g. ``ServingClient("http://127.0.0.1:8080")``.

    Parameters
    ----------
    base_url / timeout:
        Where to connect and the per-request socket timeout.
    retries:
        How many times an idempotent call is retried after a connection
        failure or 503 before giving up with :class:`ServingUnavailable`
        (``0`` disables retries).  Non-idempotent raw :meth:`request`
        calls are never retried.
    backoff_base_s / backoff_cap_s:
        Full-jitter exponential backoff: attempt ``n`` sleeps
        ``uniform(0, min(cap, base * 2**n))``, raised to the server's
        ``Retry-After`` hint when a 503 carries one.
    backoff_seed:
        Seed for the jitter RNG (reproducible retry schedules).
    """

    #: Routes safe to replay: pure reads (scoring mutates nothing but a
    #: memoised cache).  POSTs not listed here are never auto-retried.
    IDEMPOTENT_ROUTES = frozenset(
        {"/health", "/models", "/stats", "/metrics", "/score", "/topk"}
    )

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        backoff_seed: int = 0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self._jitter = random.Random(backoff_seed)

    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> Tuple[int, Dict[str, Any]]:
        """One round-trip; returns ``(status, parsed_json)`` without raising
        on HTTP errors (smoke checks assert on the raw status).  Connection
        failures raise :class:`ServingUnavailable`; no retries here — this
        is the single-attempt primitive the retrying helpers build on."""
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method.upper()
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read().decode("utf-8", errors="replace")
            try:
                body = json.loads(raw)
            except ValueError:
                body = {"error": raw}
            return error.code, body
        except urllib.error.URLError as error:
            raise ServingUnavailable(
                f"{method.upper()} {self.base_url + path} failed: {error.reason}",
                cause=error,
            ) from error

    def _backoff_sleep(self, attempt: int, floor_s: float = 0.0) -> None:
        ceiling = min(self.backoff_cap_s, self.backoff_base_s * (2**attempt))
        delay = max(floor_s, self._jitter.uniform(0.0, ceiling))
        delay = min(delay, self.backoff_cap_s)
        get_registry().counter("serve.client.backoff_sleeps").inc()
        time.sleep(delay)

    def _call(self, method: str, path: str, payload: Optional[Dict[str, Any]] = None):
        """Typed-helper core: raise :class:`ServingError` on non-200, with
        bounded retry + backoff on 503/unreachable for idempotent routes."""
        retryable = path in self.IDEMPOTENT_ROUTES
        attempts = self.retries + 1 if retryable else 1
        last_error: Optional[ServingError] = None
        for attempt in range(attempts):
            if attempt > 0:
                get_registry().counter("serve.client.retries").inc()
            try:
                status, body = self.request(method, path, payload)
            except ServingUnavailable as error:
                last_error = error
                if attempt + 1 < attempts:
                    self._backoff_sleep(attempt)
                continue
            if status == 200:
                return body
            if status == 503 and retryable:
                if attempt + 1 < attempts:
                    hint = body.get("retry_after")
                    floor = float(hint) if isinstance(hint, (int, float)) else 0.0
                    self._backoff_sleep(
                        attempt, floor_s=min(floor, self.backoff_cap_s)
                    )
                    continue
                raise ServingUnavailable(
                    f"{method.upper()} {path} still shedding load after "
                    f"{self.retries} retry(ies): {body.get('error')}"
                )
            raise ServingError(status, body)
        assert last_error is not None  # every exhausted attempt recorded one
        raise ServingUnavailable(
            f"{method.upper()} {path} still unavailable after "
            f"{self.retries} retry(ies): {last_error.body.get('error')}",
            cause=last_error.__cause__,
        )

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._call("GET", "/health")

    def models(self) -> List[Dict[str, Any]]:
        return self._call("GET", "/models")["models"]

    def stats(self) -> Dict[str, Any]:
        return self._call("GET", "/stats")

    def score(
        self,
        triples: Sequence[Triple],
        model: Optional[str] = None,
        deadline_ms: Optional[int] = None,
    ) -> List[float]:
        payload: Dict[str, Any] = {"triples": [list(t) for t in triples]}
        if model:
            payload["model"] = model
        if deadline_ms is not None:
            payload["deadline_ms"] = int(deadline_ms)
        return self._call("POST", "/score", payload)["scores"]

    def top_k_tails(
        self,
        head: int,
        relation: int,
        k: int = 10,
        model: Optional[str] = None,
        exclude_known: bool = True,
    ) -> List[Dict[str, Any]]:
        payload: Dict[str, Any] = {
            "head": int(head),
            "relation": int(relation),
            "k": int(k),
            "exclude_known": exclude_known,
        }
        if model:
            payload["model"] = model
        return self._call("POST", "/topk", payload)["predictions"]

    def top_k_heads(
        self,
        tail: int,
        relation: int,
        k: int = 10,
        model: Optional[str] = None,
        exclude_known: bool = True,
    ) -> List[Dict[str, Any]]:
        payload: Dict[str, Any] = {
            "tail": int(tail),
            "relation": int(relation),
            "k": int(k),
            "exclude_known": exclude_known,
        }
        if model:
            payload["model"] = model
        return self._call("POST", "/topk", payload)["predictions"]
