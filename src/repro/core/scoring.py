"""Triple scoring heads (paper eqs. 11, 15, 16 + extensions).

Base: ``score = W h^K_rt`` (eq. 11).  With the NE module the enclosing and
disclosing representations are fused by

* ``sum``    — eq. 15;
* ``concat`` — eq. 16, through an extra linear map ``W3``;
* ``gated``  — a learned convex combination ``g*h + (1-g)*h_d`` with
  ``g = sigmoid(W_g [h ⊕ h_d])`` (extension, see §IV-F2's call for more
  robust fusion functions).

With ``clue_dim > 0`` the head additionally accepts an entity-clue vector
(a summary of the enclosing subgraph's double-radius labels) projected into
the scoring space — the paper's future-work item 2 (§VI).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import Linear, Module, Tensor, ops


class ScoringHead(Module):
    """Linear scorer over the target relation representation."""

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        fusion: str = "sum",
        use_disclosing: bool = False,
        clue_dim: int = 0,
    ) -> None:
        super().__init__()
        if fusion not in ("sum", "concat", "gated"):
            raise ValueError(f"unknown fusion {fusion!r}")
        self.fusion = fusion
        self.use_disclosing = use_disclosing
        self.output = Linear(dim, 1, rng, bias=False)
        self.merge = Linear(2 * dim, dim, rng, bias=False) if fusion == "concat" else None
        self.gate = Linear(2 * dim, dim, rng) if fusion == "gated" else None
        self.clue_proj = Linear(clue_dim, dim, rng, bias=False) if clue_dim > 0 else None

    def forward(
        self,
        enclosing: Tensor,
        disclosing: Optional[Tensor] = None,
        entity_clue: Optional[Tensor] = None,
    ) -> Tensor:
        """Score from ``(1, dim)`` representations; returns a ``(1, 1)`` tensor."""
        fused = enclosing
        if self.use_disclosing and disclosing is not None:
            if self.fusion == "sum":
                fused = ops.add(enclosing, disclosing)
            elif self.fusion == "concat":
                fused = self.merge(ops.concat([enclosing, disclosing], axis=1))
            else:  # gated
                gate = ops.sigmoid(self.gate(ops.concat([enclosing, disclosing], axis=1)))
                fused = ops.add(
                    ops.mul(gate, enclosing),
                    ops.mul(ops.sub(1.0, gate), disclosing),
                )
        if self.clue_proj is not None and entity_clue is not None:
            fused = ops.add(fused, self.clue_proj(entity_clue))
        return self.output(fused)
