"""Relation embedding providers: the two unseen-relation settings (§IV-D).

* :class:`RandomInitEmbedding` — a learnable table over the *global*
  relation id space.  Rows for relations absent from the training graph
  never receive gradient, so at test time an unseen relation is represented
  by its (frozen) random initialisation — exactly the paper's *Random
  Initialized* setting; its useful representation must then be built by
  aggregating neighboring seen relations.
* :class:`SchemaInitEmbedding` — the *Schema Enhanced* setting: initial
  representations are projections (eq. 10) of TransE vectors pre-trained on
  the schema graph, which covers seen and unseen relations alike.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Module, Tensor
from repro.schema.projection import SchemaProjection


class RandomInitEmbedding(Module):
    """Learnable relation embeddings over the global relation id space."""

    def __init__(self, num_relations: int, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.table = Embedding(num_relations, dim, rng)
        self.dim = dim

    def forward(self, relation_ids) -> Tensor:
        return self.table(relation_ids)


class SchemaInitEmbedding(Module):
    """Schema-projected relation embeddings (paper eq. 10)."""

    def __init__(
        self,
        schema_vectors: np.ndarray,
        dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.projection = SchemaProjection(schema_vectors, dim, rng)
        self.dim = dim

    def forward(self, relation_ids) -> Tensor:
        return self.projection(relation_ids)
