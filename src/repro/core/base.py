"""Shared machinery for subgraph-scoring models.

Every model in this repository (RMPI variants, GraIL, TACT, CoMPILE) scores
a candidate triple from a subgraph extracted around it.  This module gives
them a common API:

* ``prepare(graph, triple)``      — model-specific sample construction
  (extraction, transformation, plan compilation), memoised per
  ``(graph, triple)`` because training revisits the same positives across
  epochs;
* ``score_sample(sample)``        — differentiable scoring of one sample;
* ``score_batch(graph, triples)`` — stacked scores as a 1-D tensor;
* ``score_triples(graph, triples)`` — plain ``np.ndarray`` scores in eval
  mode (the evaluation protocols' entry point).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.autograd import Module, Tensor, no_grad, ops
from repro.autograd.engine import SCORE_DTYPE
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.obs import get_registry

#: Per-process sequence for model metric namespaces.  Models are
#: constructed before any fork, so a namespace assigned here names the
#: same model in every worker — which is what lets the pool merge
#: worker-side scoring counts back into the parent's metrics.
_MODEL_SEQ = itertools.count()


class ScoringStats:
    """Compatibility shim over the :mod:`repro.obs` metrics registry.

    Counts how work arrives at a model: ``batch_calls`` is the number of
    batched scoring invocations, ``triples_scored`` the total triples across
    them, ``largest_batch`` the biggest single call.  The serving layer's
    micro-batching scheduler is validated against these counters (N
    coalesced requests must show up as *one* ``batch_calls`` increment).

    The counts live in the process-wide registry under
    ``model.<namespace>.*`` (counters for the first two, a high-water
    gauge for ``largest_batch``), so the same numbers surface on the
    serving ``GET /metrics`` endpoint — including work done inside
    ``repro.parallel`` worker processes, whose registry deltas merge back
    under the identical names.  The attribute API is unchanged from the
    pre-registry dataclass; prefer :meth:`snapshot` deltas over
    :meth:`reset` when asserting on a model shared across tests.
    """

    __slots__ = ("namespace",)

    def __init__(self, namespace: str) -> None:
        self.namespace = namespace

    def record(self, batch_size: int) -> None:
        registry = get_registry()
        registry.counter(f"{self.namespace}.batch_calls").inc()
        registry.counter(f"{self.namespace}.triples_scored").inc(batch_size)
        registry.gauge(f"{self.namespace}.largest_batch").set_max(batch_size)

    @property
    def batch_calls(self) -> int:
        return int(get_registry().counter_value(f"{self.namespace}.batch_calls"))

    @property
    def triples_scored(self) -> int:
        return int(
            get_registry().counter_value(f"{self.namespace}.triples_scored")
        )

    @property
    def largest_batch(self) -> int:
        return int(get_registry().gauge_value(f"{self.namespace}.largest_batch"))

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy — subtract two snapshots to assert on the
        work a specific code path did, without resetting shared state."""
        return {
            "batch_calls": self.batch_calls,
            "triples_scored": self.triples_scored,
            "largest_batch": self.largest_batch,
        }

    def reset(self) -> None:
        """Zero only this model's namespace in the process registry."""
        get_registry().reset(prefix=f"{self.namespace}.")


class SubgraphScoringModel(Module):
    """Base class: memoised prepare + batch scoring over subgraph samples."""

    def __init__(self) -> None:
        super().__init__()
        self._sample_cache: Dict[Tuple[int, Triple], Any] = {}
        self._cached_graphs: Dict[int, KnowledgeGraph] = {}
        self.scoring_stats = ScoringStats(f"model.m{next(_MODEL_SEQ)}")

    # ------------------------------------------------------------------
    def prepare(self, graph: KnowledgeGraph, triple: Triple) -> Any:
        """Build the model-specific sample for ``triple`` in ``graph``."""
        raise NotImplementedError

    def prepare_many(
        self, graph: KnowledgeGraph, triples: Sequence[Triple]
    ) -> List[Any]:
        """Batched :meth:`prepare`, order-aligned with ``triples``.

        The default delegates to per-triple :meth:`prepare`; models whose
        sample construction starts with subgraph extraction override this to
        route the whole batch through
        :func:`repro.subgraph.extraction.extract_subgraphs_many`, which
        shares K-hop frontiers across candidates of one ranking query.
        """
        return [self.prepare(graph, triple) for triple in triples]

    def _prepare_from_enclosing(
        self,
        graph: KnowledgeGraph,
        triples: Sequence[Triple],
        num_hops: int,
        build,
    ) -> List[Any]:
        """Shared ``prepare_many`` template for enclosing-subgraph models:
        batch-extract, then call ``build(triple, subgraph)`` per item."""
        from repro.subgraph.extraction import extract_subgraphs_many

        triples = list(triples)
        subgraphs = extract_subgraphs_many(graph, triples, num_hops)
        return [build(triple, subgraph) for triple, subgraph in zip(triples, subgraphs)]

    def _prepare_from_relational(
        self,
        graph: KnowledgeGraph,
        triples: Sequence[Triple],
        num_hops: int,
        build,
    ) -> List[Any]:
        """Shared ``prepare_many`` template for relation-view models:
        batch-extract, batch-transform to relation view (one shared numpy
        pass across the candidate list), then call
        ``build(triple, subgraph, relational)`` per item."""
        from repro.subgraph.extraction import extract_subgraphs_many
        from repro.subgraph.linegraph import build_relational_graphs_many

        triples = list(triples)
        subgraphs = extract_subgraphs_many(graph, triples, num_hops)
        relationals = build_relational_graphs_many(subgraphs)
        return [
            build(triple, subgraph, relational)
            for triple, subgraph, relational in zip(triples, subgraphs, relationals)
        ]

    def score_sample(self, sample: Any) -> Tensor:
        """Differentiable score of one prepared sample, shape ``(1, 1)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def prepared(self, graph: KnowledgeGraph, triple: Triple) -> Any:
        """Memoised :meth:`prepare` (keyed on graph identity + triple)."""
        return self.prepared_many(graph, [triple])[0]

    def prepared_many(
        self, graph: KnowledgeGraph, triples: Sequence[Triple]
    ) -> List[Any]:
        """Memoised batch prepare: only cache misses hit :meth:`prepare_many`."""
        triples = list(triples)
        keys = [(id(graph), tuple(int(x) for x in triple)) for triple in triples]  # repro-lint: disable=RL003 _cached_graphs pins the graph so its id cannot be recycled
        missing: Dict[Tuple[int, Triple], Triple] = {
            key: key[1]
            for key in keys
            if key not in self._sample_cache
        }
        if missing:
            samples = self.prepare_many(graph, list(missing.values()))
            for key, sample in zip(missing, samples):
                self._sample_cache[key] = sample
            # Keep the graph alive so id() keys stay unambiguous.
            self._cached_graphs[id(graph)] = graph  # repro-lint: disable=RL003 this line IS the pin backing the id() keys
        return [self._sample_cache[key] for key in keys]

    def install_samples(
        self,
        graph: KnowledgeGraph,
        triples: Sequence[Triple],
        samples: Sequence[Any],
    ) -> None:
        """Insert externally prepared ``samples`` into the memoised cache.

        The parallel layer's :class:`~repro.parallel.prepare.ShardedPreparer`
        prepares shards in worker processes and installs the merged results
        here, so subsequent (serial) scoring calls hit the cache exactly as
        if :meth:`prepared_many` had built them.
        """
        if len(triples) != len(samples):
            raise ValueError(
                f"{len(triples)} triples but {len(samples)} samples"
            )
        for triple, sample in zip(triples, samples):
            key = (id(graph), tuple(int(x) for x in triple))  # repro-lint: disable=RL003 _cached_graphs pins the graph so its id cannot be recycled
            self._sample_cache[key] = sample
        if len(triples):
            self._cached_graphs[id(graph)] = graph  # repro-lint: disable=RL003 this line IS the pin backing the id() keys

    def clear_cache(self) -> None:
        self._sample_cache.clear()
        self._cached_graphs.clear()

    def cache_size(self) -> int:
        return len(self._sample_cache)

    # ------------------------------------------------------------------
    def score_batch(self, graph: KnowledgeGraph, triples: Sequence[Triple]) -> Tensor:
        """Differentiable scores for a batch, shape ``(n, 1)``."""
        scores: List[Tensor] = [
            self.score_sample(sample) for sample in self.prepared_many(graph, triples)
        ]
        if len(scores) == 1:
            return scores[0]
        return ops.concat(scores, axis=0)

    def score_batch_fused(
        self, graph: KnowledgeGraph, triples: Sequence[Triple]
    ) -> Tensor:
        """Differentiable batched scores through the fastest available path.

        The generic fallback is :meth:`score_batch` — batched (memoised)
        prepare followed by per-sample scoring — so every model supports
        fused training (``TrainingConfig.use_fused_scoring``, on by
        default).  Models with a true disjoint-union fused forward (RMPI)
        override this with a single merged message-passing pass.
        """
        return self.score_batch(graph, triples)

    def score_triples(self, graph: KnowledgeGraph, triples: Sequence[Triple]) -> np.ndarray:
        """Numpy scores in eval mode (no dropout, no graph recording).

        This is the evaluation protocols' entry point: the whole candidate
        list of a ranking query arrives in one call, so extraction-backed
        models batch it through :meth:`prepared_many`.
        """
        triples = list(triples)
        self.scoring_stats.record(len(triples))
        was_training = self.training
        self.eval()
        try:
            # No-grad: eval scoring builds no backward graph at all.
            with no_grad():
                values = [
                    float(self.score_sample(sample).data.reshape(-1)[0])
                    for sample in self.prepared_many(graph, triples)
                ]
        finally:
            if was_training:
                self.train()
        return np.asarray(values, dtype=SCORE_DTYPE)
