"""Disclosing-subgraph neighborhood aggregation — the NE module (§III-F).

When a target triple's enclosing subgraph is empty, nothing flows to the
target relation node.  The NE module aggregates the *one-hop* neighbors of
the target relation in the disclosing (union) subgraph with an attention
mechanism (eqs. 13–14): every neighbor's initial embedding is transformed by
a shared ``W_d``, attention weights come from dot-product similarity with
the transformed target embedding, and the weighted sum passes through ReLU.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd import Module, Tensor, ops
from repro.autograd.init import xavier_uniform
from repro.autograd.module import Parameter
from repro.autograd.segment import gather, segment_softmax, segment_sum


class DisclosingAggregator(Module):
    """Attentive one-hop aggregation over disclosing-subgraph relations."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        self.weight = Parameter(xavier_uniform((dim, dim), rng), name="W_d")

    def forward(self, neighbor_embeddings: Tensor, target_embedding: Tensor) -> Tensor:
        """Aggregate ``h^d`` (eq. 13).

        Parameters
        ----------
        neighbor_embeddings:
            ``(n, dim)`` initial embeddings of the target's disclosing
            one-hop neighbor relations (n may be 0).
        target_embedding:
            ``(1, dim)`` initial embedding of the target relation.

        Returns a ``(1, dim)`` tensor; zeros when there are no neighbors.
        """
        if neighbor_embeddings.shape[0] == 0:
            return Tensor(
                np.zeros((1, self.dim), dtype=target_embedding.data.dtype)
            )
        n = neighbor_embeddings.shape[0]
        return self.forward_batched(
            neighbor_embeddings, np.zeros(n, dtype=np.int64), target_embedding
        )

    def forward_batched(
        self,
        neighbor_embeddings: Tensor,
        segment_ids: np.ndarray,
        target_embeddings: Tensor,
    ) -> Tensor:
        """Aggregate ``h^d`` for many targets in one fused pass.

        Parameters
        ----------
        neighbor_embeddings:
            ``(m, dim)`` ragged concatenation of every target's disclosing
            one-hop neighbor embeddings (m may be 0).
        segment_ids:
            ``(m,)`` index of the owning target per neighbor row.
        target_embeddings:
            ``(n, dim)`` initial embeddings of the target relations.

        Returns an ``(n, dim)`` tensor; rows of targets with no neighbors
        are zero — numerically identical to per-target :meth:`forward`
        calls stacked with ``ops.concat``.
        """
        num_targets = target_embeddings.shape[0]
        if neighbor_embeddings.shape[0] == 0:
            return Tensor(
                np.zeros(
                    (num_targets, self.dim), dtype=target_embeddings.data.dtype
                )
            )
        transformed = ops.matmul(neighbor_embeddings, self.weight)  # W_d h0_ri
        target_proj = ops.matmul(target_embeddings, self.weight)  # W_d h0_rt
        per_neighbor_target = gather(target_proj, segment_ids)
        logits = ops.leaky_relu(
            ops.sum(ops.mul(transformed, per_neighbor_target), axis=1),
            negative_slope=0.2,
        )
        alpha = segment_softmax(logits, segment_ids, num_targets)
        weighted = ops.mul(
            transformed, ops.reshape(alpha, (neighbor_embeddings.shape[0], 1))
        )
        pooled = segment_sum(weighted, segment_ids, num_targets)
        return ops.relu(pooled)
