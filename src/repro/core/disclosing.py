"""Disclosing-subgraph neighborhood aggregation — the NE module (§III-F).

When a target triple's enclosing subgraph is empty, nothing flows to the
target relation node.  The NE module aggregates the *one-hop* neighbors of
the target relation in the disclosing (union) subgraph with an attention
mechanism (eqs. 13–14): every neighbor's initial embedding is transformed by
a shared ``W_d``, attention weights come from dot-product similarity with
the transformed target embedding, and the weighted sum passes through ReLU.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd import Module, Tensor, ops
from repro.autograd.init import xavier_uniform
from repro.autograd.module import Parameter
from repro.autograd.segment import segment_softmax, segment_sum


class DisclosingAggregator(Module):
    """Attentive one-hop aggregation over disclosing-subgraph relations."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        self.weight = Parameter(xavier_uniform((dim, dim), rng), name="W_d")

    def forward(self, neighbor_embeddings: Tensor, target_embedding: Tensor) -> Tensor:
        """Aggregate ``h^d`` (eq. 13).

        Parameters
        ----------
        neighbor_embeddings:
            ``(n, dim)`` initial embeddings of the target's disclosing
            one-hop neighbor relations (n may be 0).
        target_embedding:
            ``(1, dim)`` initial embedding of the target relation.

        Returns a ``(1, dim)`` tensor; zeros when there are no neighbors.
        """
        if neighbor_embeddings.shape[0] == 0:
            return Tensor(np.zeros((1, self.dim)))
        transformed = ops.matmul(neighbor_embeddings, self.weight)  # W_d h0_ri
        target_proj = ops.matmul(target_embedding, self.weight)  # W_d h0_rt
        logits = ops.leaky_relu(
            ops.sum(ops.mul(transformed, target_proj), axis=1), negative_slope=0.2
        )
        n = neighbor_embeddings.shape[0]
        alpha = segment_softmax(logits, np.zeros(n, dtype=np.int64), 1)
        weighted = ops.mul(transformed, ops.reshape(alpha, (n, 1)))
        pooled = segment_sum(weighted, np.zeros(n, dtype=np.int64), 1)
        return ops.relu(pooled)
