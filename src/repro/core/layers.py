"""Relational message passing layers (paper §III-C, eqs. 6–9).

One layer aggregates, for every destination relation-node, the transformed
features of its incoming neighbors, per connection-pattern edge type
(R-GCN style, eq. 6), optionally weighted by target-relation-aware attention
(eq. 7), and combines via a residual sum (eq. 8).  The final layer uses
*equal* (unattended) aggregation for the target node (eq. 9).

The implementation is vectorised: the whole node-feature matrix ``H`` is
updated at once.  Destinations outside the layer's update set simply have
no incoming edge rows (the :class:`~repro.subgraph.pruning.MessagePlan`
filtered them), so their aggregate is zero and the residual leaves them
unchanged — realising Algorithm 1's shrinking frontier without indexing
gymnastics.

The per-edge-type transforms ``W_e`` (eq. 6) live in ONE stacked
``(NUM_EDGE_TYPES, dim, dim)`` parameter and are applied by
:func:`repro.autograd.ops.typed_matmul` — a single sort-by-type batched
matmul with a fused backward, replacing the original mask/matmul/concat/
reorder loop (kept below as the legacy reference path, selected engine-wide
via :func:`repro.autograd.engine.legacy_kernels`).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.autograd import Module, Parameter, Tensor
from repro.autograd import engine, ops
from repro.autograd.init import xavier_uniform
from repro.autograd.segment import gather, segment_count, segment_softmax, segment_sum
from repro.subgraph.linegraph import NUM_EDGE_TYPES


class RelationalMessagePassingLayer(Module):
    """One layer of edge-type-aware relational message passing."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.dim = dim
        # One transform W_e per connection-pattern type (eq. 6), stacked
        # into a single (T, dim, dim) parameter for the fused typed matmul.
        # Per-slice Xavier draws keep the rng stream (and init statistics)
        # identical to the historical per-type parameters.
        self.weight = Parameter(
            np.stack(
                [xavier_uniform((dim, dim), rng) for _ in range(NUM_EDGE_TYPES)]
            ),
            name="W_types",
        )

    def forward(
        self,
        features: Tensor,
        edges: np.ndarray,
        target_index: int,
        use_attention: bool,
        is_last: bool,
        edge_keep: Optional[np.ndarray] = None,
        attention_kind: str = "dot",
        edge_targets: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Run one message passing step.

        Parameters
        ----------
        features:
            ``(num_nodes, dim)`` node feature matrix ``h^{k-1}``.
        edges:
            ``(m, 3)`` rows of ``(src, edge_type, dst)`` — already filtered
            to this layer's update frontier by the message plan.
        target_index:
            Row of the target relation node (attention query).
        use_attention:
            Apply eq. 7 attention; otherwise use mean aggregation.
        is_last:
            Final layer: equal (sum) aggregation per eq. 9.
        edge_keep:
            Optional boolean mask implementing edge dropout (precomputed by
            the model so train/eval behaviour is explicit).
        attention_kind:
            'dot' (paper eq. 7) or 'scaled_dot' (1/sqrt(dim)-scaled logits).
        edge_targets:
            Optional per-edge target-node indices (disjoint-union batched
            scoring): each edge's attention query is its own sample's
            target instead of the single ``target_index``.

        Returns the updated feature matrix ``h^k`` (residual included).
        """
        if len(edges) == 0:
            return features
        if edge_keep is not None:
            edges = edges[edge_keep]
            if edge_targets is not None:
                edge_targets = edge_targets[edge_keep]
            if len(edges) == 0:
                return features

        num_nodes = features.shape[0]
        src, etype, dst = edges[:, 0], edges[:, 1], edges[:, 2]

        h_src: Optional[Tensor] = None
        if engine.fast_kernels_enabled():
            # Fused path: one gather + one typed matmul over type-grouped
            # edges.  Adopting the sorted order up front (a no-op for
            # batched plans, which arrive pre-sorted from merge_plans) lets
            # typed_matmul skip its scatter-back permutation entirely.
            if len(etype) > 1 and np.any(etype[1:] < etype[:-1]):
                order = np.argsort(etype, kind="stable")
                src, etype, dst = src[order], etype[order], dst[order]
                if edge_targets is not None:
                    edge_targets = edge_targets[order]
            h_src = gather(features, src)
            messages = ops.typed_matmul(h_src, self.weight, etype)
        else:
            # Legacy reference: per-edge-type mask/matmul, re-assembled in
            # type-grouped order (the original loop, kept for equivalence
            # tests and benchmark contenders).
            message_parts: List[Tensor] = []
            order_parts: List[np.ndarray] = []
            for edge_type in range(NUM_EDGE_TYPES):
                mask = etype == edge_type
                if not mask.any():
                    continue
                idx = np.nonzero(mask)[0]
                h_part = gather(features, src[idx])
                message_parts.append(
                    ops.matmul(h_part, ops.index_select(self.weight, edge_type))
                )
                order_parts.append(idx)
            order = np.concatenate(order_parts)
            messages = ops.concat(message_parts, axis=0)
            src, etype, dst = src[order], etype[order], dst[order]
            if edge_targets is not None:
                edge_targets = edge_targets[order]

        if is_last:
            # Eq. 9: equal aggregation — plain sum of transformed neighbors.
            aggregated = segment_sum(messages, dst, num_nodes)
        else:
            # Attention groups: neighbors of the same destination under the
            # same edge type (the N^e_ri of eq. 7).
            groups = dst * NUM_EDGE_TYPES + etype
            num_groups = num_nodes * NUM_EDGE_TYPES
            if use_attention:
                if h_src is None:
                    h_src = gather(features, src)
                if edge_targets is not None:
                    target_row = gather(features, edge_targets)
                else:
                    target_row = gather(features, np.asarray([target_index]))
                # Dot-product similarity with the target's previous-layer
                # representation, passed through LeakyReLU (eq. 7).
                logits = ops.sum(ops.mul(h_src, target_row), axis=1)
                if attention_kind == "scaled_dot":
                    logits = ops.mul(logits, 1.0 / np.sqrt(self.dim))
                logits = ops.leaky_relu(logits, negative_slope=0.2)
                alpha = segment_softmax(logits, groups, num_groups)
                weights = ops.reshape(alpha, (len(dst), 1))
            else:
                counts = segment_count(groups, num_groups).astype(
                    features.data.dtype
                )
                inv = 1.0 / np.maximum(counts[groups], 1.0)
                weights = Tensor(inv.reshape(-1, 1))
            aggregated = segment_sum(ops.mul(messages, weights), dst, num_nodes)

        # σ1 = ReLU on the aggregate (eq. 6), residual combine (eqs. 8/9).
        return ops.add(ops.relu(aggregated), features)
