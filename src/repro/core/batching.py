"""Batched subgraph scoring via disjoint-union merging.

Per-sample scoring dispatches a full set of numpy ops per subgraph; since
subgraphs are tiny, Python dispatch overhead dominates.  This module merges
a batch of :class:`~repro.subgraph.pruning.MessagePlan` objects into one
disjoint-union plan — node indices offset so the graphs never interact —
letting the relational message passing layers process the whole batch in a
single vectorised pass (the same trick DGL's batched graphs use).

Target-aware attention still works per sample: every edge carries the node
index of *its own* sample's target, so attention queries stay local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.subgraph.pruning import MessagePlan


@dataclass(frozen=True)
class BatchedLayer:
    """One layer of the merged plan.

    ``edges`` rows are ``(src, type, dst)`` in merged node indices;
    ``edge_targets[i]`` is the merged index of the target node of the
    sample owning edge ``i`` (the attention query for that edge).
    """

    edges: np.ndarray
    edge_targets: np.ndarray


@dataclass(frozen=True)
class BatchedPlan:
    """A disjoint union of per-sample message plans."""

    node_relations: np.ndarray  # merged relation ids
    target_indices: np.ndarray  # merged index of each sample's target node
    layers: Tuple[BatchedLayer, ...]
    sample_offsets: np.ndarray  # node offset of each sample

    @property
    def num_nodes(self) -> int:
        return len(self.node_relations)

    @property
    def num_samples(self) -> int:
        return len(self.target_indices)


def merge_plans(plans: Sequence[MessagePlan]) -> BatchedPlan:
    """Merge per-sample plans into one batched plan.

    All plans must have the same number of layers.
    """
    if not plans:
        raise ValueError("nothing to merge")
    num_layers = {len(plan.layers) for plan in plans}
    if len(num_layers) != 1:
        raise ValueError("plans disagree on layer count")
    depth = num_layers.pop()

    offsets = np.zeros(len(plans), dtype=np.int64)
    total = 0
    for i, plan in enumerate(plans):
        offsets[i] = total
        total += plan.num_nodes

    node_relations = np.concatenate([plan.node_relations for plan in plans])
    target_indices = np.asarray(
        [offsets[i] + plan.target_index for i, plan in enumerate(plans)],
        dtype=np.int64,
    )

    layers: List[BatchedLayer] = []
    for k in range(depth):
        edge_parts: List[np.ndarray] = []
        target_parts: List[np.ndarray] = []
        for i, plan in enumerate(plans):
            edges = plan.layers[k].edges
            if len(edges) == 0:
                continue
            shifted = edges.copy()
            shifted[:, 0] += offsets[i]
            shifted[:, 2] += offsets[i]
            edge_parts.append(shifted)
            target_parts.append(
                np.full(len(edges), target_indices[i], dtype=np.int64)
            )
        if edge_parts:
            merged_edges = np.concatenate(edge_parts)
            merged_targets = np.concatenate(target_parts)
        else:
            merged_edges = np.empty((0, 3), dtype=np.int64)
            merged_targets = np.empty(0, dtype=np.int64)
        layers.append(BatchedLayer(edges=merged_edges, edge_targets=merged_targets))

    return BatchedPlan(
        node_relations=node_relations,
        target_indices=target_indices,
        layers=tuple(layers),
        sample_offsets=offsets,
    )
