"""Batched subgraph scoring via disjoint-union merging.

Per-sample scoring dispatches a full set of numpy ops per subgraph; since
subgraphs are tiny, Python dispatch overhead dominates.  This module merges
a batch of :class:`~repro.subgraph.pruning.MessagePlan` objects into one
disjoint-union plan — node indices offset so the graphs never interact —
letting the relational message passing layers process the whole batch in a
single vectorised pass (the same trick DGL's batched graphs use).

Target-aware attention still works per sample: every edge carries the node
index of *its own* sample's target, so attention queries stay local.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.subgraph.pruning import MessagePlan


@dataclass(frozen=True)
class BatchedLayer:
    """One layer of the merged plan.

    ``edges`` rows are ``(src, type, dst)`` in merged node indices;
    ``edge_targets[i]`` is the merged index of the target node of the
    sample owning edge ``i`` (the attention query for that edge).
    """

    edges: np.ndarray
    edge_targets: np.ndarray


@dataclass(frozen=True)
class BatchedPlan:
    """A disjoint union of per-sample message plans."""

    node_relations: np.ndarray  # merged relation ids
    target_indices: np.ndarray  # merged index of each sample's target node
    layers: Tuple[BatchedLayer, ...]
    sample_offsets: np.ndarray  # node offset of each sample

    @property
    def num_nodes(self) -> int:
        return len(self.node_relations)

    @property
    def num_samples(self) -> int:
        return len(self.target_indices)


def merge_plans(plans: Sequence[MessagePlan]) -> BatchedPlan:
    """Merge per-sample plans into one batched plan.

    All plans must have the same number of layers.
    """
    if not plans:
        raise ValueError("nothing to merge")
    num_layers = {len(plan.layers) for plan in plans}
    if len(num_layers) != 1:
        raise ValueError("plans disagree on layer count")
    depth = num_layers.pop()

    node_counts = np.asarray([plan.num_nodes for plan in plans], dtype=np.int64)
    offsets = np.zeros(len(plans), dtype=np.int64)
    np.cumsum(node_counts[:-1], out=offsets[1:])

    node_relations = np.concatenate([plan.node_relations for plan in plans])
    target_indices = offsets + np.asarray(
        [plan.target_index for plan in plans], dtype=np.int64
    )

    layers: List[BatchedLayer] = []
    for k in range(depth):
        edge_counts = np.asarray(
            [len(plan.layers[k].edges) for plan in plans], dtype=np.int64
        )
        if int(edge_counts.sum()) == 0:
            layers.append(
                BatchedLayer(
                    edges=np.empty((0, 3), dtype=np.int64),
                    edge_targets=np.empty(0, dtype=np.int64),
                )
            )
            continue
        merged_edges = np.concatenate(
            [plan.layers[k].edges for plan in plans if len(plan.layers[k].edges)]
        )
        # One shift pass over the concatenated copy instead of a
        # copy-and-add per plan.
        shift = np.repeat(offsets, edge_counts)
        merged_edges[:, 0] += shift
        merged_edges[:, 2] += shift
        merged_targets = np.repeat(target_indices, edge_counts)
        # Pre-group by edge type (stable, so each sample's edges keep their
        # relative order): the typed-linear matmul then consumes the batch
        # without re-sorting, once per merged plan instead of per step.
        type_order = np.argsort(merged_edges[:, 1], kind="stable")
        merged_edges = merged_edges[type_order]
        merged_targets = merged_targets[type_order]
        layers.append(BatchedLayer(edges=merged_edges, edge_targets=merged_targets))

    return BatchedPlan(
        node_relations=node_relations,
        target_indices=target_indices,
        layers=tuple(layers),
        sample_offsets=offsets,
    )
