"""`repro.core` — the RMPI model (the paper's primary contribution)."""

from repro.core.base import SubgraphScoringModel
from repro.core.batching import BatchedPlan, merge_plans
from repro.core.config import RMPIConfig
from repro.core.disclosing import DisclosingAggregator
from repro.core.embeddings import RandomInitEmbedding, SchemaInitEmbedding
from repro.core.layers import RelationalMessagePassingLayer
from repro.core.model import RMPI, RMPISample
from repro.core.scoring import ScoringHead

__all__ = [
    "RMPI",
    "RMPISample",
    "RMPIConfig",
    "SubgraphScoringModel",
    "RelationalMessagePassingLayer",
    "DisclosingAggregator",
    "ScoringHead",
    "RandomInitEmbedding",
    "SchemaInitEmbedding",
    "BatchedPlan",
    "merge_plans",
]
