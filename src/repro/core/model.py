"""The RMPI model (paper §III).

Scoring pipeline for a target triple ``(u, r_t, v)``:

1. extract the K-hop enclosing subgraph and transform it to relation view
   (§III-B);
2. compile the Algorithm-1 pruned message plan and run the relational
   message passing layers (§III-C), with target-aware attention when the TA
   variant is on;
3. (NE variant) aggregate the disclosing subgraph's one-hop relational
   neighborhood (§III-F);
4. score via eq. 11, or the fusion heads eq. 15/16.

Unseen relations need no special casing at inference: their initial
embedding comes from the embedding provider (random row or schema
projection) and the *trained aggregation functions* build their effective
representation from neighboring relations (§III-D) — the paper's central
mechanism.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autograd import ModuleList, Tensor, no_grad, ops
from repro.autograd.engine import SCORE_DTYPE
from repro.autograd.segment import gather
from repro.core.base import SubgraphScoringModel
from repro.core.config import RMPIConfig
from repro.core.disclosing import DisclosingAggregator
from repro.core.embeddings import RandomInitEmbedding, SchemaInitEmbedding
from repro.core.layers import RelationalMessagePassingLayer
from repro.core.scoring import ScoringHead
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.subgraph.extraction import extract_subgraphs_many
from repro.subgraph.labeling import encode_labels, label_feature_dim
from repro.subgraph.linegraph import (
    build_relational_graphs_many,
    target_one_hop_relations,
)
from repro.subgraph.pruning import MessagePlan, build_message_plans_many


@dataclass(frozen=True)
class RMPISample:
    """A prepared target triple: pruned plan + disclosing neighborhood."""

    triple: Triple
    plan: MessagePlan
    disclosing_relations: Optional[np.ndarray]
    enclosing_empty: bool
    entity_clue: Optional[np.ndarray] = None


class RMPI(SubgraphScoringModel):
    """Relational Message Passing network for Inductive KGC.

    Parameters
    ----------
    num_relations:
        Size of the global relation id space (seen + unseen ids).
    rng:
        Generator for parameter initialisation and edge dropout.
    config:
        :class:`~repro.core.config.RMPIConfig`; defaults reproduce the
        paper's RMPI-base.
    schema_vectors:
        Optional ``(num_relations, schema_dim)`` TransE vectors; switches
        the initial relation representations to the *Schema Enhanced*
        setting (eq. 10).
    """

    def __init__(
        self,
        num_relations: int,
        rng: np.random.Generator,
        config: Optional[RMPIConfig] = None,
        schema_vectors: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.config = config or RMPIConfig()
        self.num_relations = num_relations
        self._rng = rng
        dim = self.config.embed_dim
        if schema_vectors is not None:
            if schema_vectors.shape[0] < num_relations:
                raise ValueError("schema vectors must cover all relations")
            self.embedding = SchemaInitEmbedding(schema_vectors, dim, rng)
        else:
            self.embedding = RandomInitEmbedding(num_relations, dim, rng)
        self.layers = ModuleList(
            [RelationalMessagePassingLayer(dim, rng) for _ in range(self.config.num_layers)]
        )
        self.ne = DisclosingAggregator(dim, rng) if self.config.use_disclosing else None
        clue_dim = (
            label_feature_dim(self.config.num_hops) if self.config.use_entity_clues else 0
        )
        self.head = ScoringHead(
            dim,
            rng,
            fusion=self.config.fusion,
            use_disclosing=self.config.use_disclosing,
            clue_dim=clue_dim,
        )
        # Bounded LRU of merge_plans outputs keyed by the identity of the
        # (memoised) per-sample plans: epochs and serving loops that revisit
        # the same batch skip the disjoint-union merge entirely.  Values
        # keep the plan objects alive so ids can never be recycled.
        self._merge_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._merge_cache_size = 64

    # ------------------------------------------------------------------
    def prepare(self, graph: KnowledgeGraph, triple: Triple) -> RMPISample:
        return self.prepare_many(graph, [triple])[0]

    def prepare_many(self, graph: KnowledgeGraph, triples) -> list:
        """Batched sample construction: shared numpy passes end to end.

        Enclosing (and, for the NE variant, disclosing) subgraphs for the
        whole batch come from :func:`extract_subgraphs_many`, so the 50
        candidates of one ranking query share their K-hop frontier BFS; the
        relation-view transforms and Algorithm-1 plan compilations likewise
        run through the batched :func:`build_relational_graphs_many` /
        :func:`build_message_plans_many` kernels in one pass each.
        """
        triples = [tuple(int(x) for x in triple) for triple in triples]
        enclosings = extract_subgraphs_many(
            graph, triples, self.config.num_hops, kind="enclosing"
        )
        disclosings = (
            extract_subgraphs_many(
                graph, triples, self.config.num_hops, kind="disclosing"
            )
            if self.config.use_disclosing
            else [None] * len(triples)
        )
        relationals = build_relational_graphs_many(enclosings)
        plans = build_message_plans_many(relationals, self.config.num_layers)
        samples: list = []
        for triple, enclosing, disclosing, plan in zip(
            triples, enclosings, disclosings, plans
        ):
            disclosing_relations: Optional[np.ndarray] = None
            if disclosing is not None:
                disclosing_relations = np.asarray(
                    target_one_hop_relations(disclosing), dtype=np.int64
                )
            entity_clue: Optional[np.ndarray] = None
            if self.config.use_entity_clues:
                # Entity-side evidence (future-work item 2): mean double-radius
                # label over the enclosing subgraph's entities summarises its
                # shape around the target pair.
                label_features, _index = encode_labels(enclosing)
                entity_clue = label_features.mean(axis=0, keepdims=True)
            samples.append(
                RMPISample(
                    triple=triple,
                    plan=plan,
                    disclosing_relations=disclosing_relations,
                    enclosing_empty=enclosing.is_empty,
                    entity_clue=entity_clue,
                )
            )
        return samples

    # ------------------------------------------------------------------
    def score_sample(self, sample: RMPISample) -> Tensor:
        plan = sample.plan
        features = self.embedding(plan.node_relations)
        num_layers = len(self.layers)
        for k, layer in enumerate(self.layers):
            is_last = k == num_layers - 1
            edges = plan.layers[k].edges
            edge_keep = None
            if self.training and self.config.dropout > 0.0 and len(edges):
                edge_keep = self._rng.random(len(edges)) >= self.config.dropout
            features = layer(
                features,
                edges,
                target_index=plan.target_index,
                use_attention=self.config.use_target_attention and not is_last,
                is_last=is_last,
                edge_keep=edge_keep,
                attention_kind=self.config.attention_kind,
            )
        enclosing_repr = gather(features, np.asarray([plan.target_index]))

        disclosing_repr: Optional[Tensor] = None
        if self.ne is not None:
            relation = sample.triple[1]
            target_embedding = self.embedding(np.asarray([relation]))
            neighbors = sample.disclosing_relations
            if neighbors is not None and len(neighbors):
                neighbor_embeddings = self.embedding(neighbors)
            else:
                neighbor_embeddings = Tensor(
                    np.zeros(
                        (0, self.config.embed_dim),
                        dtype=target_embedding.data.dtype,
                    )
                )
            disclosing_repr = self.ne(neighbor_embeddings, target_embedding)

        entity_clue: Optional[Tensor] = None
        if self.config.use_entity_clues and sample.entity_clue is not None:
            entity_clue = Tensor(
                np.asarray(sample.entity_clue, dtype=enclosing_repr.data.dtype)
            )

        return self.head(enclosing_repr, disclosing_repr, entity_clue)

    # ------------------------------------------------------------------
    def score_samples_batched(self, samples) -> Tensor:
        """Score many samples in one fused pass (disjoint-union batching).

        Numerically equivalent to per-sample :meth:`score_sample` in eval
        mode (dropout masks differ in training), but amortises the numpy
        dispatch overhead across the batch.  Returns an ``(n, 1)`` tensor
        ordered like ``samples``.
        """
        samples = list(samples)
        if not samples:
            raise ValueError("empty batch")
        batched = self._merged_plan(samples)
        features = self.embedding(batched.node_relations)
        num_layers = len(self.layers)
        for k, layer in enumerate(self.layers):
            is_last = k == num_layers - 1
            layer_plan = batched.layers[k]
            edge_keep = None
            if self.training and self.config.dropout > 0.0 and len(layer_plan.edges):
                edge_keep = self._rng.random(len(layer_plan.edges)) >= self.config.dropout
            features = layer(
                features,
                layer_plan.edges,
                target_index=0,  # unused when edge_targets given
                use_attention=self.config.use_target_attention and not is_last,
                is_last=is_last,
                edge_keep=edge_keep,
                attention_kind=self.config.attention_kind,
                edge_targets=layer_plan.edge_targets,
            )
        enclosing = gather(features, batched.target_indices)  # (n, dim)

        disclosing: Optional[Tensor] = None
        if self.ne is not None:
            # One ragged concat over every sample's disclosing neighborhood:
            # a single embedding lookup + one segment-attention pass replace
            # the per-sample loop of tiny NE forwards.
            counts = np.asarray(
                [
                    len(s.disclosing_relations)
                    if s.disclosing_relations is not None
                    else 0
                    for s in samples
                ],
                dtype=np.int64,
            )
            target_embeddings = self.embedding(
                np.asarray([s.triple[1] for s in samples], dtype=np.int64)
            )
            if int(counts.sum()):
                all_neighbors = np.concatenate(
                    [
                        s.disclosing_relations
                        for s in samples
                        if s.disclosing_relations is not None
                        and len(s.disclosing_relations)
                    ]
                )
                neighbor_embeddings = self.embedding(all_neighbors)
            else:
                neighbor_embeddings = Tensor(
                    np.zeros(
                        (0, self.config.embed_dim),
                        dtype=target_embeddings.data.dtype,
                    )
                )
            segment_ids = np.repeat(np.arange(len(samples), dtype=np.int64), counts)
            disclosing = self.ne.forward_batched(
                neighbor_embeddings, segment_ids, target_embeddings
            )

        entity_clue: Optional[Tensor] = None
        if self.config.use_entity_clues:
            clues = np.concatenate(
                [sample.entity_clue for sample in samples], axis=0
            )
            entity_clue = Tensor(clues.astype(enclosing.data.dtype, copy=False))

        return self.head(enclosing, disclosing, entity_clue)

    def _merged_plan(self, samples):
        """Memoised :func:`~repro.core.batching.merge_plans` over the
        (already-memoised) per-sample plans, keyed by plan identity.

        Only populated in eval mode: those are the batches that actually
        repeat (ranking candidate lists, coalesced serving queries,
        benchmarks).  Training batches reshuffle and re-sample negatives
        every step, so caching there would only pin dead plans.
        """
        from repro.core.batching import merge_plans

        key = tuple(id(sample.plan) for sample in samples)  # repro-lint: disable=RL003 cache values store the plan list, pinning every keyed plan
        hit = self._merge_cache.get(key)
        if hit is not None:
            self._merge_cache.move_to_end(key)
            return hit[1]
        batched = merge_plans([sample.plan for sample in samples])
        if not self.training:
            self._merge_cache[key] = (
                [sample.plan for sample in samples],
                batched,
            )
            if len(self._merge_cache) > self._merge_cache_size:
                self._merge_cache.popitem(last=False)
        return batched

    def score_batch_fused(self, graph: KnowledgeGraph, triples) -> Tensor:
        """Prepare (memoised, batch-extracted) and score in one fused pass."""
        return self.score_samples_batched(self.prepared_many(graph, list(triples)))

    def score_triples_fused(self, graph: KnowledgeGraph, triples) -> np.ndarray:
        """Numpy scores via the fused disjoint-union forward (eval mode).

        The serving fast path: equivalent to :meth:`score_triples` (within
        float round-off, see ``tests/test_batching.py``) but runs the whole
        batch through one merged message-passing pass instead of one tiny
        forward per sample, amortising numpy dispatch overhead — which is
        what makes coalescing concurrent queries into micro-batches pay off.
        """
        triples = list(triples)
        self.scoring_stats.record(len(triples))
        was_training = self.training
        self.eval()
        try:
            # No-grad: the serving/eval forward allocates zero backward
            # closures (see repro.autograd.engine).
            with no_grad():
                scores = self.score_batch_fused(graph, triples)
        finally:
            if was_training:
                self.train()
        return np.asarray(scores.data, dtype=SCORE_DTYPE).reshape(-1)

    def clear_cache(self) -> None:
        super().clear_cache()
        self._merge_cache.clear()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        schema = isinstance(self.embedding, SchemaInitEmbedding)
        return self.config.variant_name + ("+schema" if schema else "")
