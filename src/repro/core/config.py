"""Configuration for RMPI models (paper §IV-B defaults, scaled)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RMPIConfig:
    """Hyper-parameters of the relational message passing network.

    Paper defaults: 2-hop subgraphs, two message-passing layers, relation
    embedding size 32, edge dropout 0.5, margin 10, Adam lr 1e-3, batch 16.

    Attributes
    ----------
    embed_dim:
        Relation embedding size.
    num_layers:
        Number of message passing layers on the enclosing subgraph.
    num_hops:
        K for K-hop subgraph extraction.
    use_disclosing:
        The NE variant — aggregate the disclosing subgraph's one-hop
        neighborhood to handle empty enclosing subgraphs (§III-F).
    use_target_attention:
        The TA variant — target-relation-aware neighborhood attention
        (eq. 7) instead of mean aggregation.
    fusion:
        'sum' (eq. 15) or 'concat' (eq. 16) for combining enclosing and
        disclosing representations, or 'gated' — a learned convex gate
        between the two (an extension along the paper's future-work item
        of "more robust fusion functions", §IV-F2).
    dropout:
        Edge-message dropout rate during training.
    attention_kind:
        'dot' — the paper's eq. 7 dot-product attention; 'scaled_dot' —
        dot-product scaled by 1/sqrt(dim), an extension along the paper's
        future-work item of "more robust mechanisms for TA" (§IV-F1).
    use_entity_clues:
        Extension along future-work item 2 (§VI): augment the score with a
        projected summary of the enclosing subgraph's double-radius entity
        labels, re-injecting entity-side structural evidence.
    """

    embed_dim: int = 32
    num_layers: int = 2
    num_hops: int = 2
    use_disclosing: bool = False
    use_target_attention: bool = False
    fusion: str = "sum"
    dropout: float = 0.5
    attention_kind: str = "dot"
    use_entity_clues: bool = False

    def __post_init__(self) -> None:
        if self.fusion not in ("sum", "concat", "gated"):
            raise ValueError(
                f"fusion must be 'sum', 'concat' or 'gated', got {self.fusion!r}"
            )
        if self.attention_kind not in ("dot", "scaled_dot"):
            raise ValueError(
                f"attention_kind must be 'dot' or 'scaled_dot', got {self.attention_kind!r}"
            )
        if self.num_layers < 1:
            raise ValueError("need at least one message passing layer")
        if self.num_hops < 1:
            raise ValueError("need at least one hop")

    @property
    def variant_name(self) -> str:
        """Paper-style variant label, e.g. 'RMPI-NE-TA'."""
        suffix = ""
        if self.use_disclosing:
            suffix += "-NE"
        if self.use_target_attention:
            suffix += "-TA"
        if self.use_entity_clues:
            suffix += "-EC"
        return f"RMPI{suffix or '-base'}"
