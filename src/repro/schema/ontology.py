"""RDFS schema graphs (paper §III-D2).

The paper injects relation semantics from a KG's ontological schema: a graph
whose nodes are KG relations and concepts (entity types) and whose edges use
four RDFS vocabularies —

* ``rdfs:subPropertyOf``  (relation -> relation),
* ``rdfs:domain``         (relation -> concept),
* ``rdfs:range``          (relation -> concept),
* ``rdfs:subClassOf``     (concept -> concept).

:func:`build_schema_graph` derives such a graph from the generative
:class:`~repro.kg.ontology.Ontology` — playing the role of the released
NELL-995 schema graph used in the paper.  Crucially, the schema covers *all*
relations (seen and unseen), so pre-trained schema embeddings connect unseen
relations to seen ones through shared concepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.kg.ontology import Ontology

# Meta-relation ids within a schema graph.
SUB_PROPERTY_OF = 0
DOMAIN = 1
RANGE = 2
SUB_CLASS_OF = 3
NUM_META_RELATIONS = 4
META_RELATION_NAMES = ("rdfs:subPropertyOf", "rdfs:domain", "rdfs:range", "rdfs:subClassOf")


@dataclass(frozen=True)
class SchemaGraph:
    """A schema graph over ``num_relations + num_concepts`` nodes.

    Node ids: KG relation ``r`` is node ``r``; concept ``c`` is node
    ``num_relations + c``.  ``triples`` rows are ``(node, meta_relation,
    node)`` — the RDF triples of the schema.
    """

    num_relations: int
    num_concepts: int
    triples: np.ndarray  # (n, 3) int64

    @property
    def num_nodes(self) -> int:
        return self.num_relations + self.num_concepts

    def relation_node(self, relation: int) -> int:
        return relation

    def concept_node(self, concept: int) -> int:
        return self.num_relations + concept

    def statistics(self) -> Dict[str, int]:
        return {"nodes": self.num_nodes, "triples": len(self.triples)}


def build_schema_graph(ontology: Ontology) -> SchemaGraph:
    """Materialise the RDFS schema graph of a generative ontology."""
    num_relations = ontology.num_relations
    rows: List[Tuple[int, int, int]] = []

    def concept(c: int) -> int:
        return num_relations + c

    # rdfs:domain / rdfs:range from relation signatures.
    for sig in ontology.signatures:
        rows.append((sig.relation, DOMAIN, concept(sig.domain)))
        rows.append((sig.relation, RANGE, concept(sig.range)))
    # rdfs:subPropertyOf from the relation hierarchy.
    for child, parent in sorted(ontology.subproperty.items()):
        rows.append((child, SUB_PROPERTY_OF, parent))
    # rdfs:subClassOf from the concept hierarchy (root excluded: no self-loop).
    for child, parent in enumerate(ontology.concept_parent):
        if child != parent:
            rows.append((concept(child), SUB_CLASS_OF, concept(parent)))

    return SchemaGraph(
        num_relations=num_relations,
        num_concepts=ontology.num_concepts,
        triples=np.asarray(sorted(set(rows)), dtype=np.int64),
    )
