"""Pluggable schema pre-training backends.

Paper §III-D2 pre-trains the schema graph "using KG embedding techniques
e.g., the method by TransE" — the "e.g." makes the backend a free choice.
This module runs *any* :mod:`repro.transductive` model over the schema
graph's triples and extracts relation-node vectors, complementing the
fast hand-rolled TransE in :mod:`repro.schema.transe`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kg.triples import TripleSet
from repro.schema.ontology import NUM_META_RELATIONS, SchemaGraph
from repro.transductive import (
    TransductiveTrainingConfig,
    create_model,
    train_transductive,
)
from repro.utils.seeding import seeded_rng


def pretrain_schema_with(
    schema: SchemaGraph,
    model_name: str = "TransE",
    dim: int = 32,
    config: Optional[TransductiveTrainingConfig] = None,
    seed: int = 0,
) -> np.ndarray:
    """Pre-train ``model_name`` on the schema graph; return relation vectors.

    Schema nodes play the entity role and the four RDFS meta-relations play
    the relation role.  The returned array has one row per *KG relation*
    (rows ``0..num_relations-1`` of the schema node space).
    """
    rng = seeded_rng(seed)
    model = create_model(
        model_name,
        num_entities=schema.num_nodes,
        num_relations=NUM_META_RELATIONS,
        dim=dim,
        rng=rng,
    )
    triples = TripleSet.from_array(schema.triples)
    train_transductive(
        model,
        triples,
        config or TransductiveTrainingConfig(epochs=60, seed=seed),
    )
    return model.entities.weight.data[: schema.num_relations].copy()
