"""TransE pre-training on schema graphs (paper §III-D2 / §IV-A).

TransE (Bordes et al., 2013) embeds a triple ``(h, r, t)`` so that
``h + r ≈ t``; the plausibility score is the negative distance
``-||h + r - t||``.  The paper pre-trains TransE on the schema graph and
uses the resulting *relation-node* vectors as semantic initialisations for
(seen and unseen) KG relations.

Implemented directly on numpy with hand-derived gradients — the model is a
shallow lookup table, so going through the autograd engine would only add
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.schema.ontology import NUM_META_RELATIONS, SchemaGraph
from repro.utils.seeding import seeded_rng


@dataclass
class TransEConfig:
    """Hyper-parameters for schema pre-training (scaled-down defaults)."""

    dim: int = 32
    margin: float = 1.0
    learning_rate: float = 0.05
    epochs: int = 120
    batch_size: int = 64
    seed: int = 0


class TransE:
    """TransE over a schema graph's nodes and meta-relations."""

    def __init__(self, schema: SchemaGraph, config: Optional[TransEConfig] = None) -> None:
        self.schema = schema
        self.config = config or TransEConfig()
        rng = seeded_rng(self.config.seed)
        bound = 6.0 / np.sqrt(self.config.dim)
        self.node_embeddings = rng.uniform(
            -bound, bound, size=(schema.num_nodes, self.config.dim)
        )
        self.meta_embeddings = rng.uniform(
            -bound, bound, size=(NUM_META_RELATIONS, self.config.dim)
        )
        self._normalise_nodes()
        self._rng = rng

    # ------------------------------------------------------------------
    def _normalise_nodes(self) -> None:
        norms = np.linalg.norm(self.node_embeddings, axis=1, keepdims=True)
        self.node_embeddings /= np.maximum(norms, 1e-9)

    def score(self, heads: np.ndarray, metas: np.ndarray, tails: np.ndarray) -> np.ndarray:
        """Negative L2 distance (higher = more plausible)."""
        delta = (
            self.node_embeddings[heads]
            + self.meta_embeddings[metas]
            - self.node_embeddings[tails]
        )
        return -np.linalg.norm(delta, axis=1)

    # ------------------------------------------------------------------
    def fit(self) -> list:
        """Margin-based training with uniform node corruption.

        Returns the per-epoch mean losses (useful for convergence tests).
        """
        triples = self.schema.triples
        if len(triples) == 0:
            return []
        config = self.config
        losses = []
        for _epoch in range(config.epochs):
            order = self._rng.permutation(len(triples))
            epoch_loss = 0.0
            for start in range(0, len(triples), config.batch_size):
                batch = triples[order[start : start + config.batch_size]]
                heads, metas, tails = batch[:, 0], batch[:, 1], batch[:, 2]
                # Corrupt head or tail with a random node.
                corrupt_head = self._rng.random(len(batch)) < 0.5
                random_nodes = self._rng.integers(self.schema.num_nodes, size=len(batch))
                neg_heads = np.where(corrupt_head, random_nodes, heads)
                neg_tails = np.where(corrupt_head, tails, random_nodes)

                pos_delta = (
                    self.node_embeddings[heads]
                    + self.meta_embeddings[metas]
                    - self.node_embeddings[tails]
                )
                neg_delta = (
                    self.node_embeddings[neg_heads]
                    + self.meta_embeddings[metas]
                    - self.node_embeddings[neg_tails]
                )
                pos_dist = np.linalg.norm(pos_delta, axis=1)
                neg_dist = np.linalg.norm(neg_delta, axis=1)
                violation = pos_dist - neg_dist + config.margin
                active = violation > 0.0
                epoch_loss += float(violation[active].sum())
                if not active.any():
                    continue

                # d||x|| / dx = x / ||x||; accumulate per-index updates.
                pos_grad = pos_delta / np.maximum(pos_dist, 1e-9)[:, None]
                neg_grad = neg_delta / np.maximum(neg_dist, 1e-9)[:, None]
                lr = config.learning_rate
                node_update = np.zeros_like(self.node_embeddings)
                meta_update = np.zeros_like(self.meta_embeddings)
                idx = np.nonzero(active)[0]
                # Scatter form kept on purpose: schema pretraining runs
                # once per ontology on tiny schema graphs (hundreds of
                # rows), outside the autograd engine and its sort kernels.
                np.add.at(node_update, heads[idx], pos_grad[idx])  # repro-lint: disable=RL002 one-shot schema pretraining, cold path outside the engine
                np.add.at(node_update, tails[idx], -pos_grad[idx])  # repro-lint: disable=RL002 one-shot schema pretraining, cold path outside the engine
                np.add.at(meta_update, metas[idx], pos_grad[idx])  # repro-lint: disable=RL002 one-shot schema pretraining, cold path outside the engine
                np.add.at(node_update, neg_heads[idx], -neg_grad[idx])  # repro-lint: disable=RL002 one-shot schema pretraining, cold path outside the engine
                np.add.at(node_update, neg_tails[idx], neg_grad[idx])  # repro-lint: disable=RL002 one-shot schema pretraining, cold path outside the engine
                np.add.at(meta_update, metas[idx], -neg_grad[idx])  # repro-lint: disable=RL002 one-shot schema pretraining, cold path outside the engine
                self.node_embeddings -= lr * node_update
                self.meta_embeddings -= lr * meta_update
            self._normalise_nodes()
            losses.append(epoch_loss / len(triples))
        return losses

    # ------------------------------------------------------------------
    def relation_vectors(self) -> np.ndarray:
        """Semantic vectors of all KG relations (rows 0..num_relations-1)."""
        return self.node_embeddings[: self.schema.num_relations].copy()


def pretrain_schema_embeddings(
    schema: SchemaGraph, config: Optional[TransEConfig] = None
) -> np.ndarray:
    """Convenience: train TransE and return the relation semantic vectors."""
    model = TransE(schema, config)
    model.fit()
    return model.relation_vectors()
