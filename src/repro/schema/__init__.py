"""`repro.schema` — ontological schema support.

RDFS schema graphs derived from the generative ontology, TransE
pre-training of schema embeddings, and the projection layer that injects
them into the relational message passing network (paper §III-D2).
"""

from repro.schema.ontology import (
    DOMAIN,
    META_RELATION_NAMES,
    NUM_META_RELATIONS,
    RANGE,
    SUB_CLASS_OF,
    SUB_PROPERTY_OF,
    SchemaGraph,
    build_schema_graph,
)
from repro.schema.pretraining import pretrain_schema_with
from repro.schema.projection import SchemaProjection
from repro.schema.transe import TransE, TransEConfig, pretrain_schema_embeddings

__all__ = [
    "SchemaGraph",
    "build_schema_graph",
    "SUB_PROPERTY_OF",
    "DOMAIN",
    "RANGE",
    "SUB_CLASS_OF",
    "NUM_META_RELATIONS",
    "META_RELATION_NAMES",
    "TransE",
    "TransEConfig",
    "pretrain_schema_embeddings",
    "pretrain_schema_with",
    "SchemaProjection",
]
