"""Projection of schema semantic vectors into the message-passing space.

Paper eq. (10): ``h0_ri = W1 (W2 h_onto_ri)`` — two stacked linear maps
(no intermediate nonlinearity) from the TransE schema space to the relation
embedding space used by the relational message passing network.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Linear, Module, Tensor
from repro.autograd.engine import get_default_dtype
from repro.autograd.segment import gather


class SchemaProjection(Module):
    """Maps frozen schema vectors to trainable relation initialisations."""

    def __init__(
        self,
        schema_vectors: np.ndarray,
        output_dim: int,
        rng: np.random.Generator,
        hidden_dim: int = 0,
    ) -> None:
        super().__init__()
        # Engine dtype: these vectors multiply float32 Linear weights; a
        # float64 constant here would promote the whole projection (RL001).
        self.schema_vectors = Tensor(
            np.asarray(schema_vectors, dtype=get_default_dtype())
        )
        schema_dim = self.schema_vectors.shape[1]
        hidden_dim = hidden_dim or output_dim
        self.inner = Linear(schema_dim, hidden_dim, rng, bias=False)
        self.outer = Linear(hidden_dim, output_dim, rng, bias=False)

    def forward(self, relation_ids) -> Tensor:
        """Projected initial embeddings for the given relation ids."""
        onto = gather(self.schema_vectors, np.asarray(relation_ids, dtype=np.int64))
        return self.outer(self.inner(onto))

    @property
    def num_relations(self) -> int:
        return self.schema_vectors.shape[0]
