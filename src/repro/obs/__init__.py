"""Lightweight metrics/tracing core for the repro system.

The north star is a serving system under heavy traffic; this package is
how the repo measures itself on the way there.  Storage
(:mod:`repro.obs.registry`), measurement (:mod:`repro.obs.spans`) and
rendering (:mod:`repro.obs.export`) are separate layers:

* ``get_registry()`` — the process-wide :class:`MetricsRegistry` that
  instrumented hot paths (prepare, train step, eval ranking, serving)
  record into; fork-aware via the ``repro.parallel`` worker pool, which
  merges per-rank deltas back over its result channel.
* ``span(name)`` — context manager / decorator timing a region into
  ``span.<name>.ms`` / ``.self_ms`` histograms with nested attribution.
* ``render_text()`` / ``render_json()`` — exporters behind the serving
  ``GET /metrics`` endpoint and the ``repro obs`` CLI subcommand.
"""

from repro.obs.export import render_json, render_text
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.spans import Span, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "get_registry",
    "set_registry",
    "Span",
    "span",
    "render_json",
    "render_text",
]
