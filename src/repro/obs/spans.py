"""Wall-clock span timing with nested-span attribution.

``span("train.step")`` works as a context manager or decorator.  Each
span records into the process registry:

* ``span.<name>.ms`` — histogram of *total* wall time per entry;
* ``span.<name>.self_ms`` — histogram of total minus time spent in
  directly nested spans, so a parent span like ``prepare.batch`` shows
  how much it cost *beyond* its ``prepare.extract`` children;
* ``span.<name>.calls`` — counter of completed entries.

Nesting is tracked with a thread-local stack: serving handler threads
and the micro-batch scheduler worker time independently without
cross-attributing children.

This module is the only place in ``src/repro`` allowed to call
``time.perf_counter`` directly — lint rule RL008 pins every other
call site onto spans.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, TypeVar

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["span", "Span"]

F = TypeVar("F", bound=Callable)

_STACK = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


class Span:
    """One timed region; re-usable as a decorator, re-entrant as a
    context manager (each ``with`` entry is an independent timing)."""

    def __init__(
        self, name: str, registry: Optional[MetricsRegistry] = None
    ) -> None:
        self.name = name
        self._registry = registry
        self._start: Optional[float] = None
        self._child_s = 0.0
        #: Total seconds of the most recently completed entry (benchmark
        #: runners read this instead of keeping their own clock pairs).
        self.elapsed_s: float = 0.0

    @property
    def registry(self) -> MetricsRegistry:
        # Resolved per use, not at construction: module-level decorated
        # functions must follow set_registry() swaps in tests.
        return self._registry if self._registry is not None else get_registry()

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        self._child_s = 0.0
        _stack().append(self)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        end = time.perf_counter()
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        assert self._start is not None
        self.elapsed_s = end - self._start
        self_s = max(0.0, self.elapsed_s - self._child_s)
        if stack:
            stack[-1]._child_s += self.elapsed_s
        registry = self.registry
        registry.histogram(f"span.{self.name}.ms").observe(self.elapsed_s * 1e3)
        registry.histogram(f"span.{self.name}.self_ms").observe(self_s * 1e3)
        registry.counter(f"span.{self.name}.calls").inc()

    # -- decorator ------------------------------------------------------
    def __call__(self, fn: F) -> F:
        def wrapper(*args: object, **kwargs: object) -> object:
            # A fresh Span per call keeps decorated functions re-entrant
            # (recursion would otherwise clobber _start/_child_s).
            with Span(self.name, self._registry):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapper")
        wrapper.__doc__ = fn.__doc__
        wrapper.__qualname__ = getattr(fn, "__qualname__", wrapper.__name__)
        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]


def span(name: str, registry: Optional[MetricsRegistry] = None) -> Span:
    """Time a region of code under ``span.<name>.*`` metrics.

    >>> with span("eval.rank"):
    ...     run_queries()

    >>> @span("train.step")
    ... def _batch_step(...): ...
    """
    return Span(name, registry)
