"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the storage layer of :mod:`repro.obs` — deliberately
decoupled from where measurements are *taken* (spans, instrumented hot
paths) and from where they are *rendered* (:mod:`repro.obs.export`, the
serving ``/metrics`` endpoint), in the storage-vs-dispatch layering
MegEngine uses for its instrumentation seams.

Three metric kinds, all keyed by flat dotted names:

* :class:`Counter` — monotonically increasing float; merge = sum.
* :class:`Gauge` — last-set value; merge = max (gauges record high-water
  marks such as largest batch or peak queue depth, so the fork-merge that
  combines per-rank registries keeps the *worst* observation).
* :class:`Histogram` — fixed upper-bound buckets plus an implicit
  overflow bucket, with count/sum/min/max; merge = element-wise sum of
  bucket counts (min/max fold accordingly).

Fork safety: each process accumulates into its own module-global registry
(:func:`get_registry`).  Worker processes of
:class:`repro.parallel.pool.WorkerPool` reset their inherited copy at
startup and ship a :meth:`MetricsRegistry.collect` delta back through the
pool's result channel after every task; the parent merges the delta, so
``workers=N`` ends with the same registry totals the serial run produces
(pinned by ``tests/test_obs.py``).

All mutation goes through one re-entrant lock per registry: the serving
layer increments from its scheduler worker and HTTP handler threads
concurrently.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "get_registry",
    "set_registry",
]

#: Default histogram buckets for millisecond latencies: roughly
#: logarithmic from sub-millisecond numpy calls to multi-second epochs.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (merge keeps the maximum across processes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def set_max(self, value: float) -> None:
        """High-water-mark update (``largest_batch`` style gauges)."""
        value = float(value)
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with an implicit overflow bucket.

    ``buckets`` holds the *upper bounds* of each finite bucket; a sample
    larger than the last bound lands in the overflow bucket, so
    ``len(counts) == len(buckets) + 1`` always.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "min", "max")

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> None:
        bounds = tuple(
            float(b) for b in (buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS_MS)
        )
        if not bounds:
            raise ValueError(f"histogram {self.__class__.__name__} needs >=1 bucket")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} buckets must be ascending")
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the ``q``-th sample); ``None`` on an empty histogram.

        Samples in the overflow bucket report the observed maximum — the
        histogram has no upper bound there, but it does know the extreme.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return None
        # Rank of the q-th sample (1-based, ceiling), clamped to >= 1.
        rank = max(1, int(-(-q * self.count // 1)))
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                if i < len(self.buckets):
                    return self.buckets[i]
                return self.max
        return self.max  # pragma: no cover - rank <= count always hits


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot/merge/reset.

    One instance per process is the normal mode (:func:`get_registry`);
    standalone registries are used by tests and by anything that wants
    isolated accounting.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, self._counters)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, self._gauges)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, self._histograms)
                metric = self._histograms[name] = Histogram(name, buckets)
            return metric

    def _check_free(self, name: str, owner: Mapping[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise ValueError(
                    f"metric name {name!r} already registered as a different kind"
                )

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready copy of every metric (exporters and ``/metrics``)."""
        with self._lock:
            return {
                "counters": {
                    name: metric.value for name, metric in sorted(self._counters.items())
                },
                "gauges": {
                    name: metric.value for name, metric in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts),
                        "count": metric.count,
                        "sum": metric.sum,
                        "min": metric.min,
                        "max": metric.max,
                    }
                    for name, metric in sorted(self._histograms.items())
                },
            }

    def collect(self, reset: bool = False) -> dict:
        """Snapshot, optionally zeroing afterwards (the per-task delta the
        worker pool ships back to the parent)."""
        with self._lock:
            data = self.snapshot()
            if reset:
                self.reset()
            return data

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot`/:meth:`collect` delta into this registry:
        counters and histogram buckets sum, gauges keep the maximum."""
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                if value:
                    self.counter(name).inc(value)
            for name, value in snapshot.get("gauges", {}).items():
                self.gauge(name).set_max(value)
            for name, data in snapshot.get("histograms", {}).items():
                if not data.get("count"):
                    continue
                hist = self.histogram(name, data["buckets"])
                if list(hist.buckets) != [float(b) for b in data["buckets"]]:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch on merge: "
                        f"{list(hist.buckets)} vs {data['buckets']}"
                    )
                for i, bucket_count in enumerate(data["counts"]):
                    hist.counts[i] += int(bucket_count)
                hist.count += int(data["count"])
                hist.sum += float(data["sum"])
                for bound, fold in ((data.get("min"), min), (data.get("max"), max)):
                    if bound is None:
                        continue
                    attr = "min" if fold is min else "max"
                    current = getattr(hist, attr)
                    setattr(
                        hist,
                        attr,
                        float(bound) if current is None else fold(current, float(bound)),
                    )

    def reset(self, prefix: str = "") -> None:
        """Zero every metric (or only names under ``prefix``).

        Metrics are zeroed in place, not removed: live references held by
        instrumented code keep working after a reset.
        """
        with self._lock:
            for name, counter in self._counters.items():
                if name.startswith(prefix):
                    counter.value = 0.0
            for name, gauge in self._gauges.items():
                if name.startswith(prefix):
                    gauge.value = 0.0
            for name, hist in self._histograms.items():
                if name.startswith(prefix):
                    hist.counts = [0] * (len(hist.buckets) + 1)
                    hist.count = 0
                    hist.sum = 0.0
                    hist.min = None
                    hist.max = None

    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        with self._lock:
            metric = self._counters.get(name)
            return metric.value if metric is not None else 0.0

    def gauge_value(self, name: str) -> float:
        with self._lock:
            metric = self._gauges.get(name)
            return metric.value if metric is not None else 0.0

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                list(self._counters) + list(self._gauges) + list(self._histograms)
            )


#: The process-wide registry every instrumented hot path records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (forked children inherit a copy; the
    worker pool resets it at worker startup and merges deltas back)."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one (tests)."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous
