"""Render a registry snapshot as JSON or flat text.

The text form is a Prometheus-style exposition (one ``name value`` line
per sample, histogram buckets as ``name_bucket{le="..."}``) so ``curl
/metrics?format=text`` and the ``repro obs`` CLI stay grep-able; the
JSON form is the raw :meth:`MetricsRegistry.snapshot` dict.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["render_json", "render_text"]


def render_json(
    registry: Optional[MetricsRegistry] = None, indent: int = 2
) -> str:
    registry = registry if registry is not None else get_registry()
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def _sample_name(name: str) -> str:
    """Dotted metric names become underscore sample names in text form."""
    return name.replace(".", "_").replace("-", "_")


def render_text(
    registry_or_snapshot: Optional[object] = None,
) -> str:
    """Flat-text exposition of a registry or a snapshot dict."""
    if registry_or_snapshot is None:
        snapshot: Mapping = get_registry().snapshot()
    elif isinstance(registry_or_snapshot, MetricsRegistry):
        snapshot = registry_or_snapshot.snapshot()
    else:
        snapshot = registry_or_snapshot  # type: ignore[assignment]

    lines = []
    for name, value in snapshot.get("counters", {}).items():
        lines.append(f"{_sample_name(name)}_total {_fmt(value)}")
    for name, value in snapshot.get("gauges", {}).items():
        lines.append(f"{_sample_name(name)} {_fmt(value)}")
    for name, data in snapshot.get("histograms", {}).items():
        sample = _sample_name(name)
        cumulative = 0
        for bound, count in zip(data["buckets"], data["counts"]):
            cumulative += count
            lines.append(f'{sample}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{sample}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{sample}_count {data['count']}")
        lines.append(f"{sample}_sum {_fmt(data['sum'])}")
        if data.get("min") is not None:
            lines.append(f"{sample}_min {_fmt(data['min'])}")
        if data.get("max") is not None:
            lines.append(f"{sample}_max {_fmt(data['max'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: object) -> str:
    number = float(value)  # type: ignore[arg-type]
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)
