"""File discovery, suppression parsing and the single-pass AST walk.

Each file is parsed once and walked once; every active rule that declared
interest in a node's type sees the node during that walk.  Cross-file
rules stash state on themselves and emit from ``finalize`` after the last
file.

Suppressions are trailing or standalone comments::

    value = id(graph)  # repro-lint: disable=RL003 value dict keeps graph alive
    # repro-lint: disable=RL001 scores are float64 by serving contract
    out = np.asarray(scores, dtype=np.float64)

A standalone suppression applies to the next line; a trailing one to its
own line.  The reason text after the rule list is **mandatory** — a
suppression without one (or with an unknown rule code) is itself reported
as RL000, so the escape hatch cannot rot into unexplained mutes.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

from repro.lint.config import LintConfig
from repro.lint.registry import Rule, all_rules, resolve_rules
from repro.lint.reporting import Violation

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z]{2}\d{3}(?:\s*,\s*[A-Za-z]{2}\d{3})*)"
    r"(?P<reason>.*)$"
)

#: Directories never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "results", ".mypy_cache"}


@dataclass
class Suppression:
    """One parsed ``repro-lint: disable=...`` comment."""

    codes: Tuple[str, ...]
    reason: str
    comment_line: int
    target_line: int


@dataclass
class FileContext:
    """Everything a rule may ask about the file being walked."""

    path: str  # project-relative, posix slashes
    source: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)
    #: child -> parent links for the whole tree (ast nodes hash by identity).
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)
    #: local names bound to the numpy module (``np``, ``numpy``).
    numpy_aliases: Set[str] = field(default_factory=set)
    #: names assigned at module scope (module-global mutable state).
    module_globals: Set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_functions(self, node: ast.AST) -> Iterator[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield ancestor

    def in_legacy_function(self, node: ast.AST) -> bool:
        """True inside a ``legacy_*`` reference implementation."""
        return any(
            fn.name.startswith("legacy_")
            for fn in self.enclosing_functions(node)
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
        )

    def is_numpy_attr(self, node: ast.AST, *path: str) -> bool:
        """Whether ``node`` is an attribute chain ``np.<path...>``."""
        for part in reversed(path):
            if not isinstance(node, ast.Attribute) or node.attr != part:
                return False
            node = node.value
        return isinstance(node, ast.Name) and node.id in self.numpy_aliases


def parse_suppressions(source: str) -> List[Suppression]:
    """Extract suppression comments via ``tokenize`` (comments inside
    string literals are not comments and never match)."""
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper() for code in match.group("codes").split(",")
        )
        reason = match.group("reason").strip()
        line = token.start[0]
        standalone = token.line.strip().startswith("#")
        suppressions.append(
            Suppression(
                codes=codes,
                reason=reason,
                comment_line=line,
                target_line=line + 1 if standalone else line,
            )
        )
    return suppressions


def build_context(path: str, source: str, tree: ast.Module) -> FileContext:
    """One prep walk: parent links, numpy aliases, module-global names."""
    ctx = FileContext(path=path, source=source, tree=tree)
    ctx.suppressions = parse_suppressions(source)
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            ctx.parents[child] = node
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    ctx.numpy_aliases.add(alias.asname or "numpy")
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                ctx.module_globals.add(target.id)
    return ctx


@dataclass
class LintRun:
    """State shared across one full lint invocation."""

    config: LintConfig
    rules: List[Rule] = field(default_factory=list)
    contexts: Dict[str, FileContext] = field(default_factory=dict)
    files_scanned: int = 0

    @property
    def root(self) -> str:
        return self.config.root

    def load_extra_file(self, path: str) -> Optional[FileContext]:
        """Parse a file that was not part of the scanned set (cross-file
        rules that need, e.g., the parity-test modules regardless of which
        paths the CLI was pointed at)."""
        relative = _relpath(path, self.root)
        if relative in self.contexts:
            return self.contexts[relative]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source)
        except (OSError, SyntaxError):
            return None
        ctx = build_context(relative, source, tree)
        self.contexts[relative] = ctx
        return ctx


def _relpath(path: str, root: str) -> str:
    relative = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    return relative.replace(os.sep, "/")


def discover_files(paths: Sequence[str], root: str) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[str] = []
    for entry in paths:
        full = entry if os.path.isabs(entry) else os.path.join(root, entry)
        if os.path.isfile(full):
            found.append(full)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames[:] = sorted(
                name for name in dirnames if name not in _SKIP_DIRS
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return found


def _apply_suppressions(
    violations: Iterable[Violation], ctx: FileContext, known_codes: Set[str]
) -> Iterator[Violation]:
    """Drop suppressed violations; emit RL000 for malformed suppressions."""
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in ctx.suppressions:
        by_line.setdefault(suppression.target_line, []).append(suppression)
    for violation in violations:
        suppressed = False
        for suppression in by_line.get(violation.line, []):
            if violation.rule in suppression.codes and suppression.reason:
                suppressed = True
                break
        if not suppressed:
            yield violation
    for suppression in ctx.suppressions:
        if not suppression.reason:
            yield Violation(
                "RL000",
                ctx.path,
                suppression.comment_line,
                1,
                "suppression without a reason: every "
                "'repro-lint: disable=...' must justify itself",
            )
        for code in suppression.codes:
            if code not in known_codes:
                yield Violation(
                    "RL000",
                    ctx.path,
                    suppression.comment_line,
                    1,
                    f"suppression names unknown rule {code}",
                )


def lint_sources(
    sources: Sequence[Tuple[str, str]],
    config: Optional[LintConfig] = None,
) -> List[Violation]:
    """Lint in-memory ``(path, source)`` pairs (the test harness entry)."""
    config = config or LintConfig()
    run = LintRun(config=config, rules=list(resolve_rules(config.select, config.ignore)))
    violations: List[Violation] = []
    known_codes = set(all_rules()) | {"RL000"}

    dispatch: Dict[Type[ast.AST], List[Rule]] = {}
    for rule in run.rules:
        for node_type in rule.node_types:
            dispatch.setdefault(node_type, []).append(rule)

    for path, source in sources:
        path = path.replace(os.sep, "/")
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            violations.append(
                Violation(
                    "RL000",
                    path,
                    int(error.lineno or 1),
                    int(error.offset or 1),
                    f"syntax error: {error.msg}",
                )
            )
            continue
        ctx = build_context(path, source, tree)
        run.contexts[path] = ctx
        run.files_scanned += 1
        path_ignored = set(config.ignored_rules_for(path))
        file_violations: List[Violation] = []
        for rule in run.rules:
            rule.begin_file(ctx)
        for node in ast.walk(tree):
            for rule in dispatch.get(type(node), ()):
                file_violations.extend(rule.visit(node, ctx))
        for rule in run.rules:
            file_violations.extend(rule.end_file(ctx))
        file_violations = [
            v for v in file_violations if v.rule not in path_ignored
        ]
        violations.extend(
            _apply_suppressions(file_violations, ctx, known_codes)
        )

    # Cross-file rules run after every file was seen; their violations are
    # filtered through the owning file's suppressions and path ignores.
    for rule in run.rules:
        for violation in rule.finalize(run):
            if violation.rule in set(config.ignored_rules_for(violation.path)):
                continue
            ctx = run.contexts.get(violation.path)
            if ctx is not None:
                kept = list(
                    _apply_suppressions([violation], ctx, known_codes)
                )
                # _apply_suppressions re-reports malformed suppressions on
                # every call; only keep the violation itself here.
                violations.extend(
                    v for v in kept if v.key() == violation.key()
                )
            else:
                violations.append(violation)
    return sorted(set(violations), key=Violation.sort_key)


def lint_paths(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> Tuple[List[Violation], int]:
    """Lint files/directories on disk; returns (violations, files scanned)."""
    config = config or LintConfig()
    files = discover_files(paths, config.root)
    sources: List[Tuple[str, str]] = []
    for full in files:
        with open(full, "r", encoding="utf-8") as handle:
            sources.append((_relpath(full, config.root), handle.read()))
    return lint_sources(sources, config), len(sources)
