"""The project rules (RL001–RL008).

Each rule encodes a bug class this repository has actually shipped (and
fixed) or an architectural invariant the ROADMAP depends on.  The rule
docstrings name the incident; the messages tell the author what to do
instead.  Justified exceptions carry inline suppressions whose mandatory
reasons double as site-local documentation.
"""

from __future__ import annotations

import ast
import fnmatch
import os
from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

from repro.lint.registry import Rule, register_rule
from repro.lint.reporting import Violation
from repro.lint.walker import FileContext, LintRun


def _root_name(expr: ast.AST) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain (``a.b[c].d`` → a)."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


def _is_register_op_decorator(decorator: ast.expr) -> bool:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Name):
        return target.id == "register_op"
    return isinstance(target, ast.Attribute) and target.attr == "register_op"


# ---------------------------------------------------------------------------
# RL001 — dtype policy
# ---------------------------------------------------------------------------
@register_rule
class DtypePolicyRule(Rule):
    """No hardcoded float64 outside the engine policy module.

    PR 4's bug class: backward closures and feature constructors that
    hardcoded ``np.float64`` silently promoted every downstream array,
    defeating the float32 engine policy and doubling memory bandwidth.
    The only place float64 may be named is ``repro/autograd/engine.py``
    (the policy itself); everything else asks the engine
    (``get_default_dtype()``) or declares a justified suppression.
    """

    code = "RL001"
    name = "dtype-policy"
    summary = (
        "hardcoded np.float64 / dtype=float outside repro/autograd/engine.py"
    )
    node_types = (ast.Attribute, ast.keyword, ast.Call)

    _MESSAGE = (
        "hardcoded float64 defeats the engine dtype policy (PR 4 promotion "
        "bug class); use repro.autograd.engine.get_default_dtype() / "
        "SCORE_DTYPE, or suppress with the reason the width is required"
    )

    def _exempt(self, node: ast.AST, ctx: FileContext) -> bool:
        if ctx.path.endswith("repro/autograd/engine.py"):
            return True
        return ctx.in_legacy_function(node)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        if isinstance(node, ast.Attribute):
            if node.attr == "float64" and ctx.is_numpy_attr(node, "float64"):
                if self._exempt(node, ctx):
                    return
                # dtype *checks* (`x.dtype == np.float64`) inspect, they
                # don't construct; comparisons are allowed.
                parent = ctx.parents.get(node)
                if isinstance(parent, ast.Compare):
                    return
                yield self.violation(node, ctx, self._MESSAGE)
        elif isinstance(node, ast.keyword):
            if (
                node.arg == "dtype"
                and isinstance(node.value, ast.Name)
                and node.value.id == "float"
                and not self._exempt(node.value, ctx)
            ):
                yield self.violation(
                    node.value,
                    ctx,
                    "dtype=float is platform-spelled float64; " + self._MESSAGE,
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "astype"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id == "float"
                and not self._exempt(node, ctx)
            ):
                yield self.violation(
                    node, ctx, "astype(float) promotes to float64; " + self._MESSAGE
                )


# ---------------------------------------------------------------------------
# RL002 — no scatter-add outside the legacy reference kernels
# ---------------------------------------------------------------------------
@register_rule
class ScatterAddRule(Rule):
    """``np.add.at`` / ``ufunc.at`` only inside ``legacy_*`` references.

    PR 4 replaced the buffered-scatter kernels with sort-based
    ``reduceat``/``bincount`` reductions for a 2.2x train step; the
    scatter form survives solely as the ``legacy_*`` reference
    implementations the equivalence suites compare against.  New scatter
    calls reintroduce the slow path.
    """

    code = "RL002"
    name = "no-scatter-add"
    summary = "ufunc.at scatter kernels outside legacy_* references"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "at"):
            return
        ufunc = func.value
        if not (
            isinstance(ufunc, ast.Attribute)
            and isinstance(ufunc.value, ast.Name)
            and ufunc.value.id in ctx.numpy_aliases
        ):
            return
        if ctx.in_legacy_function(node):
            return
        yield self.violation(
            node,
            ctx,
            f"np.{ufunc.attr}.at scatter kernel outside a legacy_* reference; "
            "use the sort-based kernels in repro.autograd.segment "
            "(segment_sum / _segment_sum_array) superseding it since PR 4",
        )


# ---------------------------------------------------------------------------
# RL003 — no id()-keyed caches
# ---------------------------------------------------------------------------
@register_rule
class IdKeyedCacheRule(Rule):
    """Any ``id(...)`` call must justify the keyed object's lifetime.

    PR 5's bug class: ``schema_vectors_for`` cached by ``id(ontology)``;
    the ontology was garbage collected, CPython recycled the id for a new
    ontology, and the cache served stale vectors for the wrong object.
    Static analysis cannot prove lifetimes, so every ``id()`` use is
    flagged: either key by a content fingerprint, or suppress with the
    reason the object provably outlives the key (e.g. the cache's value
    dict holds a strong reference).
    """

    code = "RL003"
    name = "no-id-keyed-cache"
    summary = "id() used as a key/identity (recycled-id aliasing hazard)"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        assert isinstance(node, ast.Call)
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "id"
            and len(node.args) == 1
            and not node.keywords
        ):
            yield self.violation(
                node,
                ctx,
                "id() keys alias once the object is collected and its id "
                "recycled (the schema_vectors_for stale-cache bug); key by a "
                "content fingerprint or suppress with the lifetime guarantee",
            )


# ---------------------------------------------------------------------------
# RL004 — seeding discipline
# ---------------------------------------------------------------------------
@register_rule
class SeedingDisciplineRule(Rule):
    """RNG construction and global-stream sampling only via repro.utils.seeding.

    Determinism contract: every stream derives from an explicit seed
    through ``derive_seed``/``seeded_rng``/``worker_rng`` so parallel
    ranks decorrelate and reruns reproduce bitwise (PR 5's trailing-zero
    entropy collision lived exactly here).  Bare ``np.random.*`` sampling
    reads hidden global state; ``np.random.default_rng`` scattered through
    the codebase leaves no audit chokepoint.
    """

    code = "RL004"
    name = "seeding-discipline"
    summary = "np.random construction/sampling outside repro.utils.seeding"
    node_types = (ast.Call,)

    _CONSTRUCTORS = {"default_rng", "seed", "RandomState", "SeedSequence"}
    _SAMPLERS = {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
        "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
        "multinomial", "multivariate_normal", "negative_binomial",
        "noncentral_chisquare", "noncentral_f", "normal", "pareto",
        "permutation", "permuted", "poisson", "power", "rand", "randint",
        "randn", "random", "random_integers", "random_sample", "ranf",
        "rayleigh", "sample", "set_state", "shuffle", "standard_cauchy",
        "standard_exponential", "standard_gamma", "standard_normal",
        "standard_t", "triangular", "uniform", "vonmises", "wald",
        "weibull", "zipf",
    }

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        assert isinstance(node, ast.Call)
        if ctx.path.endswith("repro/utils/seeding.py"):
            return
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        module = func.value
        if not (
            isinstance(module, ast.Attribute)
            and module.attr == "random"
            and isinstance(module.value, ast.Name)
            and module.value.id in ctx.numpy_aliases
        ):
            return
        if func.attr in self._CONSTRUCTORS:
            yield self.violation(
                node,
                ctx,
                f"np.random.{func.attr} outside repro.utils.seeding; build "
                "streams through seeded_rng/worker_rng/derive_seed so every "
                "RNG is auditable and rank-decorrelated",
            )
        elif func.attr in self._SAMPLERS:
            yield self.violation(
                node,
                ctx,
                f"bare np.random.{func.attr} samples hidden global state; "
                "pass an explicit Generator from repro.utils.seeding",
            )


# ---------------------------------------------------------------------------
# RL005 — fork safety of worker-pool operations
# ---------------------------------------------------------------------------
@register_rule
class ForkSafetyRule(Rule):
    """Worker-pool ops must be module-level, closure-free and side-effect
    free on module state.

    ``repro.parallel`` dispatches ops by *name* to forked children; the
    function object must therefore exist identically in every process
    (module-level def, importable before the fork) and must not mutate
    module globals — with ``workers=1`` the very same op runs inline in
    the parent, where such mutations corrupt shared state that forked
    runs would never see.
    """

    code = "RL005"
    name = "fork-safety"
    summary = "closure/lambda ops or module-global mutation in worker code"
    node_types = (ast.Call, ast.FunctionDef)

    _MUTATORS = {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "setdefault", "update",
    }

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        if isinstance(node, ast.Call):
            # register_op("x")(lambda ...) — unreproducible across forks.
            if (
                isinstance(node.func, ast.Call)
                and _is_register_op_decorator(node.func)
                and any(isinstance(arg, ast.Lambda) for arg in node.args)
            ):
                yield self.violation(
                    node,
                    ctx,
                    "lambda registered as a worker op; ops must be "
                    "module-level defs so forked children resolve the same "
                    "function by name",
                )
            return
        assert isinstance(node, ast.FunctionDef)
        if not any(
            _is_register_op_decorator(d) for d in node.decorator_list
        ):
            return
        if any(True for _ in ctx.enclosing_functions(node)):
            yield self.violation(
                node,
                ctx,
                f"worker op {node.name!r} is a nested closure; captured "
                "frame state diverges between the parent and forked "
                "children — move it to module level",
            )
            return
        yield from self._check_op_body(node, ctx)

    def _check_op_body(
        self, op: ast.FunctionDef, ctx: FileContext
    ) -> Iterator[Violation]:
        local_names: Set[str] = {arg.arg for arg in op.args.args}
        local_names.update(arg.arg for arg in op.args.kwonlyargs)
        if op.args.vararg:
            local_names.add(op.args.vararg.arg)
        if op.args.kwarg:
            local_names.add(op.args.kwarg.arg)
        for inner in ast.walk(op):
            if isinstance(inner, ast.Name) and isinstance(
                inner.ctx, ast.Store
            ):
                local_names.add(inner.id)
        for inner in ast.walk(op):
            if isinstance(inner, ast.Global):
                yield self.violation(
                    inner,
                    ctx,
                    f"worker op {op.name!r} rebinds module global(s) "
                    f"{', '.join(inner.names)}; inline (workers=1) runs "
                    "mutate the parent's module state — thread state "
                    "through the op's `state` dict or the payload",
                )
            elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                targets = (
                    inner.targets
                    if isinstance(inner, ast.Assign)
                    else [inner.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if (
                            root is not None
                            and root in ctx.module_globals
                            and root not in local_names
                        ):
                            yield self.violation(
                                inner,
                                ctx,
                                f"worker op {op.name!r} writes into module "
                                f"global {root!r}; per-process caches must "
                                "live in the op's `state` dict",
                            )
            elif isinstance(inner, ast.Call) and isinstance(
                inner.func, ast.Attribute
            ):
                if inner.func.attr in self._MUTATORS:
                    root = _root_name(inner.func.value)
                    if (
                        root is not None
                        and root in ctx.module_globals
                        and root not in local_names
                    ):
                        yield self.violation(
                            inner,
                            ctx,
                            f"worker op {op.name!r} mutates module global "
                            f"{root!r} via .{inner.func.attr}(); "
                            "per-process caches must live in the op's "
                            "`state` dict",
                        )


# ---------------------------------------------------------------------------
# RL006 — every legacy_* reference keeps its parity suite
# ---------------------------------------------------------------------------
@register_rule
class LegacyParityRule(Rule):
    """Each ``legacy_*`` function in ``src/`` must be exercised by a
    ``tests/test_*equivalence*`` module.

    The ``legacy_*`` implementations are the ground truth the fast
    kernels are proven against; a reference whose parity suite silently
    disappears is dead weight that *looks* like a safety net.  This rule
    is cross-file: it collects ``legacy_*`` defs during the walk and
    resolves references against the equivalence test modules (loading
    them from disk even when the CLI wasn't pointed at ``tests/``).
    """

    code = "RL006"
    name = "legacy-parity-pairing"
    summary = "legacy_* reference without a test_*equivalence* suite"
    node_types = (ast.FunctionDef,)

    _TEST_GLOB = "test_*equivalence*.py"

    def __init__(self) -> None:
        self._legacy_defs: List[Tuple[str, ast.FunctionDef, str]] = []

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        assert isinstance(node, ast.FunctionDef)
        if not node.name.startswith("legacy_"):
            return
        if "src/" not in ctx.path and not ctx.path.startswith("src"):
            return
        if any(True for _ in ctx.enclosing_functions(node)):
            return
        self._legacy_defs.append((ctx.path, node, node.name))
        return
        yield  # pragma: no cover - makes this a generator

    def _equivalence_contexts(self, run: LintRun) -> List[FileContext]:
        contexts = [
            ctx
            for path, ctx in run.contexts.items()
            if fnmatch.fnmatch(os.path.basename(path), self._TEST_GLOB)
        ]
        tests_dir = os.path.join(run.root, "tests")
        if os.path.isdir(tests_dir):
            for name in sorted(os.listdir(tests_dir)):
                if fnmatch.fnmatch(name, self._TEST_GLOB):
                    ctx = run.load_extra_file(os.path.join(tests_dir, name))
                    if ctx is not None and ctx not in contexts:
                        contexts.append(ctx)
        return contexts

    def finalize(self, run: LintRun) -> Iterator[Violation]:
        if not self._legacy_defs:
            return
        referenced: Set[str] = set()
        for ctx in self._equivalence_contexts(run):
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Name):
                    referenced.add(node.id)
                elif isinstance(node, ast.Attribute):
                    referenced.add(node.attr)
                elif isinstance(node, ast.Constant) and isinstance(
                    node.value, str
                ):
                    if node.value.isidentifier():
                        referenced.add(node.value)
        for path, node, name in self._legacy_defs:
            if name not in referenced:
                ctx = run.contexts[path]
                yield self.violation(
                    node,
                    ctx,
                    f"reference implementation {name!r} is not exercised by "
                    "any tests/test_*equivalence* module; a legacy kernel "
                    "without its parity suite is an unverified safety net",
                )


# ---------------------------------------------------------------------------
# RL007 — backward closures must be gated on _needs_graph
# ---------------------------------------------------------------------------
@register_rule
class GradHygieneRule(Rule):
    """Autograd ops building backward closures must guard on the grad mode.

    PR 4's ``no_grad()`` contract: eval and serving forwards allocate
    *zero* autograd bookkeeping.  An op that constructs
    ``Tensor(..., backward_fn=...)`` without consulting ``_needs_graph``
    (or ``is_grad_enabled``) silently re-enables closure allocation on
    the inference path — invisible until someone profiles serving.
    """

    code = "RL007"
    name = "no-grad-hygiene"
    summary = "Tensor(..., backward_fn=...) without a _needs_graph guard"
    node_types = (ast.FunctionDef,)

    _GUARDS = {"_needs_graph", "is_grad_enabled"}

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        assert isinstance(node, ast.FunctionDef)
        if "repro/autograd/" not in ctx.path:
            return
        builds_graph = False
        for inner in ast.walk(node):
            if not isinstance(inner, ast.Call):
                continue
            if not (
                isinstance(inner.func, ast.Name)
                and inner.func.id == "Tensor"
                and any(kw.arg == "backward_fn" for kw in inner.keywords)
            ):
                continue
            # Attribute the construction to its *nearest* enclosing
            # function so nested helpers are checked once, not twice.
            nearest = next(ctx.enclosing_functions(inner), None)
            if nearest is node:
                builds_graph = True
                break
        if not builds_graph:
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and inner.id in self._GUARDS:
                return
            if isinstance(inner, ast.Attribute) and inner.attr in self._GUARDS:
                return
        yield self.violation(
            node,
            ctx,
            f"{node.name!r} builds a backward closure without guarding on "
            "_needs_graph/is_grad_enabled; no_grad() inference would "
            "allocate graph bookkeeping (PR 4 hygiene contract)",
        )


# ---------------------------------------------------------------------------
# RL008 — instrumentation clock discipline
# ---------------------------------------------------------------------------
@register_rule
class InstrumentationClockRule(Rule):
    """No hand-rolled wall-clock instrumentation outside ``repro.obs``.

    PR 7's consolidation: scattered ``time.perf_counter()`` pairs across
    the benchmark scripts each reinvented timing, reporting and reset
    semantics, and none of their numbers reached ``/metrics``.  Library
    code under ``src/repro`` times through :func:`repro.obs.span` (which
    owns the one sanctioned ``perf_counter`` call site), so every
    measurement lands in the shared registry with nested attribution.
    ``time.monotonic`` stays legal — the scheduler's size-or-deadline
    coalescing uses it for control flow, not measurement.
    """

    code = "RL008"
    name = "obs-clock-discipline"
    summary = (
        "direct time.time()/perf_counter() instrumentation in src/repro "
        "outside repro.obs"
    )
    node_types = (ast.Call,)

    _BANNED = {
        "time",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }

    def begin_file(self, ctx: FileContext) -> None:
        # Names bound to the time module / its banned members in this file.
        self._time_aliases: Set[str] = set()
        self._from_time: Set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self._time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in self._BANNED:
                        self._from_time.add(alias.asname or alias.name)

    def _message(self, call: str) -> str:
        return (
            f"{call} is hand-rolled instrumentation; time through "
            "repro.obs.span(name) so the measurement reaches the metrics "
            "registry (RL008 clock discipline)"
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        assert isinstance(node, ast.Call)
        if not ctx.path.startswith("src/repro/") or ctx.path.startswith(
            "src/repro/obs/"
        ):
            return
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self._BANNED
            and isinstance(func.value, ast.Name)
            and func.value.id in self._time_aliases
        ):
            yield self.violation(
                node, ctx, self._message(f"{func.value.id}.{func.attr}()")
            )
        elif isinstance(func, ast.Name) and func.id in self._from_time:
            yield self.violation(node, ctx, self._message(f"{func.id}()"))


# ---------------------------------------------------------------------------
# RL009 — no silently swallowed exceptions
# ---------------------------------------------------------------------------
@register_rule
class SilentSwallowRule(Rule):
    """No ``except ...: pass`` (or bare ``except:``) discarding the error.

    The fault-tolerance PR's bug class: a worker pool that swallows a
    queue error during teardown is tolerable, but the same pattern around
    dispatch or result collection turns a crashed worker into a silent
    hang — the failure the chaos suite exists to surface.  Library code
    under ``src/repro`` must handle, translate, count, or re-raise; a
    handler that does literally nothing needs an inline suppression whose
    mandatory reason documents why dropping the error is safe *here*.
    """

    code = "RL009"
    name = "no-silent-swallow"
    summary = (
        "except clause in src/repro that discards the exception "
        "(pass-only body or bare except without re-raise)"
    )
    node_types = (ast.ExceptHandler,)

    @staticmethod
    def _is_noop(statement: ast.stmt) -> bool:
        if isinstance(statement, ast.Pass):
            return True
        return (
            isinstance(statement, ast.Expr)
            and isinstance(statement.value, ast.Constant)
            and statement.value.value is Ellipsis
        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(child, ast.Raise)
            for statement in handler.body
            for child in ast.walk(statement)
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Violation]:
        assert isinstance(node, ast.ExceptHandler)
        if not ctx.path.startswith("src/repro/"):
            return
        if all(self._is_noop(statement) for statement in node.body):
            yield self.violation(
                node,
                ctx,
                "except clause silently swallows the exception; handle it, "
                "count it into the metrics registry, or suppress with the "
                "reason dropping it is safe (RL009 no-silent-swallow)",
            )
            return
        if node.type is None and not self._reraises(node):
            yield self.violation(
                node,
                ctx,
                "bare except: catches SystemExit/KeyboardInterrupt and hides "
                "the error type; catch a concrete exception or re-raise "
                "(RL009 no-silent-swallow)",
            )


# Dict of code -> rule class is assembled by the registry; importing this
# module is what populates it (see repro.lint.registry.all_rules).
RULES: Dict[str, Type[Rule]] = {
    rule.code: rule
    for rule in (
        DtypePolicyRule,
        ScatterAddRule,
        IdKeyedCacheRule,
        SeedingDisciplineRule,
        ForkSafetyRule,
        LegacyParityRule,
        GradHygieneRule,
        InstrumentationClockRule,
        SilentSwallowRule,
    )
}
