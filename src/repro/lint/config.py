"""``[tool.repro-lint]`` configuration loading.

The committed configuration lives in ``pyproject.toml``; on interpreters
without ``tomllib`` (< 3.11, where no TOML parser is baked in) the loader
falls back to :data:`FALLBACK_CONFIG`, a Python mirror of the committed
section.  ``tests/test_lint.py`` asserts the two stay in sync whenever
``tomllib`` is importable, so the mirror cannot drift silently.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback, exercised in CI
    tomllib = None  # type: ignore[assignment]

#: Mirror of the committed ``[tool.repro-lint]`` section (see
#: ``pyproject.toml`` for the rationale comments on each entry).
FALLBACK_CONFIG: Dict[str, Any] = {
    "select": [],
    "ignore": [],
    "baseline": "lint-baseline.json",
    "per-path-ignores": {
        "tests/": ["RL001", "RL004"],
    },
}


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration."""

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    baseline: str = "lint-baseline.json"
    per_path_ignores: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    root: str = "."

    def ignored_rules_for(self, path: str) -> Tuple[str, ...]:
        """Rules disabled for ``path`` (project-relative, posix slashes)."""
        ignored: List[str] = []
        for pattern, rules in self.per_path_ignores:
            prefix = pattern.rstrip("/") + "/"
            if path.startswith(prefix) or fnmatch.fnmatch(path, pattern):
                ignored.extend(rules)
        return tuple(ignored)


def _from_mapping(raw: Mapping[str, Any], root: str) -> LintConfig:
    per_path = raw.get("per-path-ignores", {})
    return LintConfig(
        select=tuple(str(code) for code in raw.get("select", [])),
        ignore=tuple(str(code) for code in raw.get("ignore", [])),
        baseline=str(raw.get("baseline", "lint-baseline.json")),
        per_path_ignores=tuple(
            (str(pattern), tuple(str(code) for code in rules))
            for pattern, rules in per_path.items()
        ),
        root=root,
    )


def load_config(root: str = ".") -> LintConfig:
    """Load ``[tool.repro-lint]`` from ``<root>/pyproject.toml``.

    Missing file/section or missing TOML parser both fall back to
    :data:`FALLBACK_CONFIG` so the linter behaves identically everywhere.
    """
    pyproject = os.path.join(root, "pyproject.toml")
    raw: Mapping[str, Any] = FALLBACK_CONFIG
    if tomllib is not None and os.path.isfile(pyproject):
        with open(pyproject, "rb") as handle:
            parsed = tomllib.load(handle)
        section: Optional[Mapping[str, Any]] = parsed.get("tool", {}).get(
            "repro-lint"
        )
        if section is not None:
            raw = section
    return _from_mapping(raw, root)
