"""`repro.lint` — project-specific AST static analysis.

Every rule in this package encodes an invariant this codebase has already
paid for in debugging time: silent float64 promotion in backward closures
(PR 4), an ``id()``-keyed cache aliasing a recycled object id (PR 5), a
seed-entropy collision in ``derive_seed`` (PR 5), and the fork-safety
contract of ``repro.parallel``.  Instead of relying on reviewer vigilance,
the linter walks every file once and reports violations; CI runs it as a
hard gate (``python -m repro.lint src tests benchmarks``).

Framework shape:

* :mod:`repro.lint.walker`     — file discovery, suppression parsing, the
  single-pass AST dispatch;
* :mod:`repro.lint.registry`   — the rule registry (``@register_rule``);
* :mod:`repro.lint.rules`      — the project rules (RL001–RL007);
* :mod:`repro.lint.reporting`  — :class:`Violation` and text/JSON output;
* :mod:`repro.lint.baseline`   — the committed-baseline escape hatch
  (empty on ``main``: new violations are fixed or suppressed, not parked);
* :mod:`repro.lint.config`     — ``[tool.repro-lint]`` in ``pyproject.toml``.

Inline suppressions use ``# repro-lint: disable=RL00x <reason>`` — the
reason is mandatory and missing/unknown codes are themselves violations
(RL000), so every suppression doubles as documentation of *why* the
invariant is safe to break at that site.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.registry import all_rules, register_rule
from repro.lint.reporting import Violation, render_json, render_text
from repro.lint.walker import LintRun, lint_paths, lint_sources

__all__ = [
    "LintConfig",
    "LintRun",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_sources",
    "load_config",
    "register_rule",
    "render_json",
    "render_text",
]
