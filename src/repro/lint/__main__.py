"""CLI: ``python -m repro.lint [paths] [--format text|json] [--select/--ignore RULE]``.

Exit status: 0 when clean (after suppressions and baseline), 1 when
violations remain, 2 on usage errors.  ``--write-baseline`` records the
current violations instead of failing (for staging large cleanups); the
committed baseline on main stays empty.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import filter_baselined, load_baseline, write_baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.registry import all_rules
from repro.lint.reporting import render_json, render_text
from repro.lint.walker import lint_paths

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific AST invariant checker (rules RL001-RL007).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rules (repeatable / comma-separated)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULE",
        help="disable these rules (repeatable / comma-separated)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="project root holding pyproject.toml (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: [tool.repro-lint].baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current violations as the baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _split_codes(values: Sequence[str]) -> List[str]:
    codes: List[str] = []
    for value in values:
        codes.extend(code.strip() for code in value.split(",") if code.strip())
    return codes


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code, rule in sorted(all_rules().items()):
            print(f"{code}  {rule.name:24s} {rule.summary}")
        return 0

    file_config = load_config(args.root)
    select = _split_codes(args.select) or file_config.select
    ignore = _split_codes(args.ignore) or file_config.ignore
    config = LintConfig(
        select=tuple(select),
        ignore=tuple(ignore),
        baseline=args.baseline or file_config.baseline,
        per_path_ignores=file_config.per_path_ignores,
        root=args.root,
    )

    try:
        violations, files_scanned = lint_paths(args.paths, config)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2

    baseline_path = (
        config.baseline
        if os.path.isabs(config.baseline)
        else os.path.join(config.root, config.baseline)
    )
    if args.write_baseline:
        write_baseline(baseline_path, violations)
        print(
            f"wrote {len(violations)} baseline entries to {baseline_path}",
            file=sys.stderr,
        )
        return 0
    violations = filter_baselined(violations, load_baseline(baseline_path))

    if args.format == "json":
        print(render_json(violations, files_scanned))
    else:
        print(render_text(violations, files_scanned))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
