"""Violation record and output rendering for :mod:`repro.lint`."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location.

    ``line``/``column`` are 1-based (column 1-based to match editors and
    compiler output, unlike ``ast``'s 0-based ``col_offset``).
    """

    rule: str
    path: str
    line: int
    column: int
    message: str

    def key(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers shift under unrelated edits, so
        the baseline matches on ``(rule, path, message)`` only."""
        return (self.rule, self.path, self.message)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule)


def render_text(violations: Sequence[Violation], files_scanned: int) -> str:
    """Compiler-style ``path:line:col: RULE message`` lines + a summary."""
    lines: List[str] = [
        f"{v.path}:{v.line}:{v.column}: {v.rule} {v.message}"
        for v in sorted(violations, key=Violation.sort_key)
    ]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"{len(violations)} {noun} in {files_scanned} files")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation], files_scanned: int) -> str:
    """Machine-readable output for CI annotation tooling."""
    payload = {
        "files_scanned": files_scanned,
        "count": len(violations),
        "violations": [
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "column": v.column,
                "message": v.message,
            }
            for v in sorted(violations, key=Violation.sort_key)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
