"""Rule registry for :mod:`repro.lint`.

Rules are classes registered with :func:`register_rule`; the walker
instantiates one object per rule per run (rules may carry cross-file state
for project-level invariants) and dispatches AST nodes to every rule that
declared interest in the node's type — one tree walk per file regardless
of how many rules are active.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Sequence, Tuple, Type

from repro.lint.reporting import Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.walker import FileContext, LintRun


class Rule:
    """Base class for lint rules.

    Subclasses set ``code`` (``RL0xx``), ``name`` (kebab-case slug),
    ``summary`` (one line for ``--list-rules`` and docs) and
    ``node_types`` (the AST node classes :meth:`visit` wants to see).
    """

    code: str = "RL000"
    name: str = "abstract"
    summary: str = ""
    node_types: Tuple[Type[ast.AST], ...] = ()

    def begin_file(self, ctx: "FileContext") -> None:
        """Per-file setup before any :meth:`visit` call."""

    def visit(self, node: ast.AST, ctx: "FileContext") -> Iterator[Violation]:
        """Check one node; yields violations."""
        return iter(())

    def end_file(self, ctx: "FileContext") -> Iterator[Violation]:
        """Per-file wrap-up after the walk."""
        return iter(())

    def finalize(self, run: "LintRun") -> Iterator[Violation]:
        """Project-level wrap-up after every file was walked (cross-file
        rules emit here)."""
        return iter(())

    def violation(
        self, node: ast.AST, ctx: "FileContext", message: str
    ) -> Violation:
        line = int(getattr(node, "lineno", 1))
        column = int(getattr(node, "col_offset", 0)) + 1
        return Violation(self.code, ctx.path, line, column, message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code or cls.code == Rule.code:
        raise ValueError(f"rule {cls.__name__} must define a unique code")
    existing = _REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(f"rule code {cls.code} already registered")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Registered rules by code (import :mod:`repro.lint.rules` first)."""
    import repro.lint.rules  # noqa: F401  — registers the project rules

    return dict(_REGISTRY)


def resolve_rules(
    select: Sequence[str] = (), ignore: Sequence[str] = ()
) -> Iterable[Rule]:
    """Instantiate the active rule set.

    ``select`` empty means "all registered"; ``ignore`` always wins.
    Unknown codes raise so a typo in config can't silently disable a gate.
    """
    registry = all_rules()
    for code in (*select, *ignore):
        if code not in registry:
            raise KeyError(
                f"unknown rule code {code!r}; known: {sorted(registry)}"
            )
    active = list(select) if select else sorted(registry)
    return [registry[code]() for code in active if code not in set(ignore)]
