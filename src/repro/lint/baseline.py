"""Committed-baseline support.

A baseline lets the linter land as a hard CI gate while a cleanup is in
flight: known violations are parked in ``lint-baseline.json`` and only
*new* ones fail the build.  Policy for this repository: the baseline is
**empty on main** — the sweep that shipped with the linter fixed or
inline-suppressed (with reasons) every pre-existing violation, and the
file exists so a future large refactor can stage its cleanup without
turning the gate off.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence, Set, Tuple

from repro.lint.reporting import Violation

_VERSION = 1

BaselineKey = Tuple[str, str, str]


def load_baseline(path: str) -> Set[BaselineKey]:
    """Read baseline entries; a missing file is an empty baseline."""
    if not os.path.isfile(path):
        return set()
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    return {
        (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
        for entry in payload.get("entries", [])
    }


def write_baseline(path: str, violations: Sequence[Violation]) -> None:
    """Persist ``violations`` as the new baseline (sorted, stable diff)."""
    entries = sorted(
        (
            {"rule": v.rule, "path": v.path, "message": v.message}
            for v in violations
        ),
        key=lambda entry: (entry["path"], entry["rule"], entry["message"]),
    )
    payload = {"version": _VERSION, "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def filter_baselined(
    violations: Sequence[Violation], baseline: Set[BaselineKey]
) -> List[Violation]:
    """Drop violations already recorded in the baseline."""
    return [v for v in violations if v.key() not in baseline]
