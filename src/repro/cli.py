"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
``stats``   — print statistics of a benchmark (Table I style + analysis).
``run``     — train one model on one benchmark and print metrics.
``full``    — fully inductive run (semi/fully unseen relations).
``models``  — list available model names.
``serve``   — boot the online link-prediction service (JSON over HTTP).
``obs``     — dump metrics: from a live server's /metrics, or this process.

Examples::

    python -m repro.cli stats --family NELL-995 --version 2
    python -m repro.cli run --family WN18RR --version 1 --model RMPI-NE --epochs 8
    python -m repro.cli full --family NELL-995 --train-version 1 \
        --test-version 3 --model RMPI-NE --setting fully --schema
    python -m repro.cli serve --family NELL-995 --version 1 --model RMPI-base \
        --epochs 2 --port 8080
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    MODEL_NAMES,
    format_table,
    run_experiment,
    run_full_experiment,
)
from repro.kg import build_full_benchmark, build_partial_benchmark
from repro.kg.analysis import characterise
from repro.train import ParallelConfig, TrainingConfig


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", default="NELL-995", choices=["WN18RR", "FB15k-237", "NELL-995"])
    parser.add_argument("--scale", type=float, default=0.06, help="dataset size multiplier")
    parser.add_argument("--seed", type=int, default=0)


def _add_training(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="RMPI-base", choices=list(MODEL_NAMES))
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--max-triples", type=int, default=200)
    parser.add_argument("--schema", action="store_true", help="schema-enhanced initialisation")
    parser.add_argument("--fusion", default="sum", choices=["sum", "concat", "gated"])
    parser.add_argument("--negatives", type=int, default=49, help="ranking negatives")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for training batches and eval ranking "
        "(1 = serial; see README 'Parallel execution')",
    )
    parser.add_argument(
        "--parallel-backend", default="auto", choices=["auto", "pickle", "shm"],
        help="parameter transport for data-parallel training: pickle ships "
        "the state dict in every payload, shm publishes weights to a "
        "shared-memory segment (zero-copy broadcast, bitwise-identical "
        "results); auto reads REPRO_PARALLEL_BACKEND (default pickle)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="print benchmark statistics")
    _add_common(stats)
    stats.add_argument("--version", type=int, default=1, choices=[1, 2, 3, 4])

    run = sub.add_parser("run", help="partially inductive experiment")
    _add_common(run)
    run.add_argument("--version", type=int, default=1, choices=[1, 2, 3, 4])
    _add_training(run)

    full = sub.add_parser("full", help="fully inductive experiment")
    _add_common(full)
    full.add_argument("--train-version", type=int, default=1, choices=[1, 2, 3, 4])
    full.add_argument("--test-version", type=int, default=3, choices=[1, 2, 3, 4])
    full.add_argument("--setting", default="semi", choices=["semi", "fully"])
    _add_training(full)

    sub.add_parser("models", help="list model names")

    serve = sub.add_parser("serve", help="boot the online inference service")
    _add_common(serve)
    serve.add_argument("--version", type=int, default=1, choices=[1, 2, 3, 4])
    serve.add_argument("--model", default="RMPI-base", choices=list(MODEL_NAMES))
    serve.add_argument(
        "--epochs", type=int, default=0,
        help="train this many epochs before serving (0 = untrained weights)",
    )
    serve.add_argument("--max-triples", type=int, default=200)
    serve.add_argument(
        "--checkpoint", default=None,
        help="load weights from a checkpoint instead of training",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0, help="0 = ephemeral port")
    serve.add_argument("--max-batch-size", type=int, default=64)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--cache-size", type=int, default=65536)
    serve.add_argument(
        "--workers", type=int, default=1,
        help="scoring worker processes behind the micro-batching scheduler "
        "(1 = in-process scoring)",
    )
    serve.add_argument(
        "--no-fused", action="store_true",
        help="score through the per-sample path instead of the fused batch forward",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=256,
        help="admission watermark: more waiting requests than this are shed "
        "with HTTP 503 + Retry-After (0 = unbounded)",
    )
    serve.add_argument(
        "--retry-after-s", type=float, default=1.0,
        help="backoff hint carried by 503 load-shedding responses",
    )
    serve.add_argument(
        "--request-deadline-s", type=float, default=30.0,
        help="server-side cap on request lifetime, queue time included; "
        "expired requests are dropped before scoring (0 = no deadline)",
    )
    serve.add_argument(
        "--fault-plan", default=None,
        help="activate a fault-injection plan for chaos runs: inline JSON "
        "or @path to a JSON file (see repro.faults)",
    )
    serve.add_argument(
        "--dry-run", action="store_true",
        help="build the app, print its configuration, and exit without serving",
    )

    obs = sub.add_parser("obs", help="dump observability metrics")
    obs.add_argument(
        "--url", default=None,
        help="base URL of a live serving process (fetches <url>/metrics); "
        "omitted, dumps this process's registry",
    )
    obs.add_argument("--format", default="text", choices=["text", "json"])
    obs.add_argument("--timeout", type=float, default=10.0)
    return parser


def cmd_stats(args: argparse.Namespace) -> str:
    benchmark = build_partial_benchmark(args.family, args.version, args.scale, args.seed)
    stats = benchmark.statistics()
    rows = [
        ["train", stats["train"]["relations"], stats["train"]["entities"], stats["train"]["triples"]],
        ["test", stats["test"]["relations"], stats["test"]["entities"], stats["test"]["triples"]],
    ]
    table = format_table(["graph", "#R", "#E", "#T"], rows, title=benchmark.name)
    analysis = characterise(benchmark.train_graph)
    lines = [table, "", "training graph analysis:"]
    lines += [f"  {key}: {value:.3f}" for key, value in analysis.items()]
    return "\n".join(lines)


def cmd_run(args: argparse.Namespace) -> str:
    benchmark = build_partial_benchmark(args.family, args.version, args.scale, args.seed)
    result = run_experiment(
        benchmark,
        args.model,
        TrainingConfig(
            epochs=args.epochs,
            seed=args.seed,
            max_triples_per_epoch=args.max_triples,
            parallel=ParallelConfig(
                workers=args.workers, backend=args.parallel_backend
            ),
        ),
        seed=args.seed,
        use_schema=args.schema,
        fusion=args.fusion,
        num_negatives=args.negatives,
    )
    rows = [[key, value] for key, value in result.metrics.items()]
    return format_table(["metric", "value"], rows, title=f"{result.model} on {result.benchmark}")


def cmd_full(args: argparse.Namespace) -> str:
    benchmark = build_full_benchmark(
        args.family, args.train_version, args.test_version, args.scale, args.seed
    )
    result = run_full_experiment(
        benchmark,
        args.model,
        args.setting,
        TrainingConfig(
            epochs=args.epochs,
            seed=args.seed,
            max_triples_per_epoch=args.max_triples,
            parallel=ParallelConfig(
                workers=args.workers, backend=args.parallel_backend
            ),
        ),
        seed=args.seed,
        use_schema=args.schema,
        fusion=args.fusion,
    )
    rows = [[key, value] for key, value in result.metrics.items()]
    return format_table(["metric", "value"], rows, title=f"{result.model} on {result.benchmark}")


def cmd_models(_args: argparse.Namespace) -> str:
    return "\n".join(MODEL_NAMES)


def cmd_serve(args: argparse.Namespace) -> str:
    from repro.experiments import make_model
    from repro.serve import ModelRegistry, ServingApp, ServingConfig, ServingServer
    from repro.train import load_checkpoint, train_model

    benchmark = build_partial_benchmark(args.family, args.version, args.scale, args.seed)
    model = make_model(args.model, benchmark.num_relations, seed=args.seed)
    weights = "untrained"
    if args.checkpoint:
        load_checkpoint(model, args.checkpoint)
        weights = f"checkpoint {args.checkpoint}"
    elif args.epochs > 0:
        train_model(
            model,
            benchmark.train_graph,
            benchmark.train_triples,
            benchmark.valid_triples,
            TrainingConfig(
                epochs=args.epochs, seed=args.seed,
                max_triples_per_epoch=args.max_triples,
            ),
        )
        weights = f"trained {args.epochs} epochs"

    registry = ModelRegistry()
    registry.register(
        args.model, model, meta={"benchmark": benchmark.name, "weights": weights}
    )
    if args.fault_plan:
        from repro.faults import FaultPlan, activate

        activate(FaultPlan.from_cli(args.fault_plan))
    config = ServingConfig(
        host=args.host,
        port=args.port,
        default_model=args.model,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        cache_size=args.cache_size,
        use_fused=not args.no_fused,
        workers=args.workers,
        max_queue_depth=args.max_queue_depth or None,
        retry_after_s=args.retry_after_s,
        request_deadline_s=args.request_deadline_s or None,
    )
    # Serve the inductive benchmark's *testing* graph: queries rank links
    # among entities unseen during training, the paper's core setting.
    app = ServingApp(registry, benchmark.test_graph, config)

    summary = app.describe()
    lines = [
        f"serving {args.model} ({weights}) on {benchmark.name} test graph",
        f"  graph: {summary['graph']['entities']} entities / "
        f"{summary['graph']['relations']} relations / "
        f"{summary['graph']['triples']} triples "
        f"[{summary['graph']['fingerprint'][:12]}]",
        f"  micro-batching: max_batch_size={config.max_batch_size} "
        f"max_wait_ms={config.max_wait_ms}",
        f"  score cache: {config.cache_size} entries, "
        f"fused scoring: {config.use_fused}",
        f"  scoring workers: {config.workers}",
        f"  admission: max_queue_depth={config.max_queue_depth} "
        f"retry_after_s={config.retry_after_s} "
        f"request_deadline_s={config.request_deadline_s}",
    ]
    if args.fault_plan:
        lines.append(f"  fault plan ACTIVE: {args.fault_plan}")
    if args.dry_run:
        app.close()
        lines.append("dry run: configuration OK, not serving")
        return "\n".join(lines)

    server = ServingServer(app)
    lines.append(f"listening on {server.url} (Ctrl-C to stop)")
    print("\n".join(lines))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
    return "serving stopped"


def cmd_obs(args: argparse.Namespace) -> str:
    import json

    from repro.obs import get_registry, render_json, render_text

    if args.url is None:
        return (
            render_json(get_registry())
            if args.format == "json"
            else render_text(get_registry()).rstrip("\n")
        )
    from urllib.request import urlopen

    url = args.url.rstrip("/") + "/metrics"
    if args.format == "text":
        url += "?format=text"
    with urlopen(url, timeout=args.timeout) as response:
        body = response.read().decode("utf-8")
    if args.format == "json":
        # Round-trip for validation + stable pretty-printing.
        return json.dumps(json.loads(body), indent=2, sort_keys=True)
    return body.rstrip("\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "stats": cmd_stats,
        "run": cmd_run,
        "full": cmd_full,
        "models": cmd_models,
        "serve": cmd_serve,
        "obs": cmd_obs,
    }
    print(handlers[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
