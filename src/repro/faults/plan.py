"""Deterministic fault-injection plans (the chaos substrate).

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each naming
an operation plus optional rank / task-index filters and a bounded fire
budget (``times``).  Execution layers *consult* the plan at well-defined
decision points — the worker pool before dispatching a task, the serving
scheduler before dispatching a batch — via :meth:`FaultPlan.take`, which
atomically claims one firing of the first matching spec.  Because the
consultation points are deterministic for a given workload (rank-addressed
dispatch, sequential batch dispatch), a chaos run with a given plan is
**replayable**: the same faults fire at the same places every run.

Four fault kinds:

* ``kill``    — the worker process SIGKILLs itself before running the op
                (the honest ``kill -9`` crash; skipped on inline pools,
                which cannot crash the parent);
* ``error``   — the op raises :class:`FaultInjected` instead of running;
* ``latency`` — ``latency_s`` of artificial sleep before the op runs;
* ``drop``    — the op runs but its result is discarded (a lost message;
                only a task deadline can rescue it — skipped inline).

The **active plan** is a module global consulted through
:func:`active_plan`.  By default it is the empty no-op plan; activate one
explicitly (:func:`activate` / the :func:`inject` context manager), from
the CLI (``repro serve --fault-plan``), or via the ``REPRO_FAULT_PLAN``
environment variable (a JSON literal, or ``@path`` to a JSON file) — the
env plan is loaded lazily on first consultation so forked workers and
subprocess smoke checks see it without extra wiring.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.obs import get_registry

__all__ = [
    "ENV_PLAN_VAR",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "NO_FAULTS",
    "activate",
    "active_plan",
    "deactivate",
    "inject",
    "plan_from_env",
]

#: Environment variable holding a plan as JSON (or ``@path`` to a file).
ENV_PLAN_VAR = "REPRO_FAULT_PLAN"

FAULT_KINDS = ("kill", "error", "latency", "drop")


class FaultInjected(RuntimeError):
    """An exception raised *on purpose* by an ``error``-kind fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault, addressed by ``(op, rank, task_index)``.

    ``rank`` / ``task_index`` of ``None`` match any value; ``task_index``
    counts dispatches of ``op`` on that rank (pool) or batch dispatches
    (scheduler), so ``task_index=2`` targets the third dispatch.  A spec
    fires at most ``times`` total — bounded chaos that lets a retried task
    succeed instead of dying forever.
    """

    op: str
    kind: str
    rank: Optional[int] = None
    task_index: Optional[int] = None
    times: int = 1
    latency_s: float = 0.0
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")

    def matches(self, op: str, rank: int, task_index: int) -> bool:
        return (
            self.op in (op, "*")
            and (self.rank is None or self.rank == rank)
            and (self.task_index is None or self.task_index == task_index)
        )

    def as_dict(self) -> Dict[str, Any]:
        return dict(vars(self))

    #: Wire form handed to worker processes with the task (plain dict so
    #: the task payload does not pickle this module's types).
    def directive(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "latency_s": self.latency_s,
            "message": self.message,
        }


class FaultPlan:
    """An ordered set of :class:`FaultSpec` with per-spec firing budgets.

    Thread-safe: the serving scheduler consults the plan from its worker
    thread while the HTTP layer or a trainer consults it from others.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self.specs: List[FaultSpec] = list(specs)
        self._fired: List[int] = [0] * len(self.specs)
        self._lock = threading.Lock()

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    def take(
        self,
        op: str,
        rank: int,
        task_index: int,
        kinds: Optional[Sequence[str]] = None,
    ) -> Optional[FaultSpec]:
        """Claim one firing of the first live spec matching the key.

        Returns the spec (and counts the injection into the metrics
        registry) or ``None``.  Claiming is atomic, so concurrent
        consultation points never over-fire a budget.  ``kinds`` restricts
        which fault kinds this consultation point can execute (an inline
        pool cannot crash the parent, so it only takes error/latency);
        non-executable specs are left unclaimed.
        """
        if not self.specs:
            return None
        with self._lock:
            for index, spec in enumerate(self.specs):
                if self._fired[index] >= spec.times:
                    continue
                if kinds is not None and spec.kind not in kinds:
                    continue
                if not spec.matches(op, rank, task_index):
                    continue
                self._fired[index] += 1
                registry = get_registry()
                registry.counter("faults.injected").inc()
                registry.counter(f"faults.injected.{spec.kind}").inc()
                return spec
        return None

    def fired(self) -> int:
        """Total firings so far (observability / test assertions)."""
        with self._lock:
            return sum(self._fired)

    def reset(self) -> None:
        """Restore every spec's full budget (replay the same plan)."""
        with self._lock:
            self._fired = [0] * len(self.specs)

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {"specs": [spec.as_dict() for spec in self.specs]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        raw = data.get("specs", data.get("faults", []))
        if not isinstance(raw, list):
            raise ValueError("fault plan must hold a 'specs' list")
        return cls([FaultSpec(**entry) for entry in raw])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_cli(cls, value: str) -> "FaultPlan":
        """Parse a CLI/env plan value: ``@path`` reads a JSON file,
        anything else is an inline JSON literal."""
        if value.startswith("@"):
            with open(value[1:], "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        return cls.from_json(value)


#: The shared no-op plan: consulting it is a cheap None.
NO_FAULTS = FaultPlan()

#: Explicitly activated plan, or None → fall back to the (cached) env plan.
_ACTIVE: Optional[FaultPlan] = None
_ENV_PLAN: Optional[FaultPlan] = None


def plan_from_env(environ: Optional[Dict[str, str]] = None) -> FaultPlan:
    """The plan named by ``REPRO_FAULT_PLAN``, or :data:`NO_FAULTS`."""
    value = (environ if environ is not None else os.environ).get(ENV_PLAN_VAR)
    if not value:
        return NO_FAULTS
    return FaultPlan.from_cli(value)


def active_plan() -> FaultPlan:
    """The plan every consultation point reads (never ``None``).

    Resolution order: an explicitly :func:`activate`-d plan, else the
    ``REPRO_FAULT_PLAN`` environment plan (parsed once and cached), else
    the no-op plan.
    """
    global _ENV_PLAN
    if _ACTIVE is not None:
        return _ACTIVE
    if _ENV_PLAN is None:
        _ENV_PLAN = plan_from_env()
    return _ENV_PLAN


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the active plan; returns the previous one."""
    global _ACTIVE
    previous = active_plan()
    _ACTIVE = plan
    return previous


def deactivate() -> None:
    """Back to the no-op plan (also drops the cached env plan, so tests
    that mutate the environment re-read it)."""
    global _ACTIVE, _ENV_PLAN
    _ACTIVE = None
    _ENV_PLAN = None


class inject:
    """``with inject(plan): ...`` — activate for a scope, then restore."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self.plan
        return self.plan

    def __exit__(self, *exc_info: object) -> None:
        global _ACTIVE
        _ACTIVE = self._previous


def iter_specs(plan: FaultPlan) -> Iterator[FaultSpec]:
    """Convenience for reporting/debugging tools."""
    return iter(plan.specs)
