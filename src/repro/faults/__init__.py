"""Deterministic fault injection for chaos testing (see ``plan.py``).

Public surface::

    from repro.faults import FaultPlan, FaultSpec, inject

    plan = FaultPlan([FaultSpec(op="prepare", kind="kill", rank=1)])
    with inject(plan):
        preparer.prepare_many(graph, triples)   # rank 1 dies, pool heals

The default active plan is a no-op; production code paths consult
:func:`active_plan` and proceed untouched unless a plan was activated via
code, CLI (``repro serve --fault-plan``), or ``REPRO_FAULT_PLAN``.
"""

from repro.faults.plan import (
    ENV_PLAN_VAR,
    FAULT_KINDS,
    NO_FAULTS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    activate,
    active_plan,
    deactivate,
    inject,
    plan_from_env,
)

__all__ = [
    "ENV_PLAN_VAR",
    "FAULT_KINDS",
    "NO_FAULTS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "activate",
    "active_plan",
    "deactivate",
    "inject",
    "plan_from_env",
]
