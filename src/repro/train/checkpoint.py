"""Model checkpointing: save/load parameter state to ``.npz`` archives.

Works for any :class:`~repro.autograd.module.Module` tree via its
``state_dict``; dotted parameter names are the archive keys.
"""

from __future__ import annotations

import os

import numpy as np

from repro.autograd.module import Module


def save_checkpoint(model: Module, path: str) -> None:
    """Write the model's parameters to ``path`` (``.npz`` appended by numpy
    if missing)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    state = model.state_dict()
    # npz keys cannot be empty; dotted names are fine.
    np.savez(path, **state)


def load_checkpoint(model: Module, path: str) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    The model must have the same architecture (same parameter names and
    shapes); mismatches raise ``KeyError``/``ValueError``.
    """
    if not path.endswith(".npz") and not os.path.exists(path):
        path = path + ".npz"
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    model.load_state_dict(state)
