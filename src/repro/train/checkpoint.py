"""Model checkpointing: save/load parameter state to ``.npz`` archives.

Works for any :class:`~repro.autograd.module.Module` tree via its
``state_dict``; dotted parameter names are the archive keys.

Every checkpoint carries a ``__meta__`` entry (JSON): format version, the
model's class name, and its parameter count, plus any caller-supplied
extras (e.g. the serving registry records the model spec it was built
from).  :func:`load_checkpoint` validates the metadata against the
receiving model and raises :class:`CheckpointMismatchError` — a ``KeyError``
subclass with a human-readable message — on architecture mismatch.
Pre-metadata checkpoints (plain parameter archives) still load.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Optional

import numpy as np

from repro.autograd.module import Module

#: Pre-stacked-typed-linear checkpoints stored one ``(dim, dim)`` array per
#: connection-pattern type under ``<prefix>.type_weights[<i>]``.
_TYPE_WEIGHTS_KEY = re.compile(r"^(?P<prefix>.+)\.type_weights\[(?P<index>\d+)\]$")

#: Bumped when the archive layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: Archive key holding the JSON metadata (dotted parameter names can never
#: collide with it).
META_KEY = "__meta__"


class CheckpointMismatchError(KeyError):
    """A checkpoint does not fit the model it is being loaded into.

    Subclasses ``KeyError`` for backwards compatibility with callers that
    caught the raw ``load_state_dict`` error, but renders its message
    verbatim instead of ``KeyError``'s quoted-repr form.
    """

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

    def __str__(self) -> str:
        return self.message


def resolve_checkpoint_path(path: str) -> str:
    """Deterministic suffix resolution for :func:`load_checkpoint`.

    An existing file at exactly ``path`` always wins — it is never shadowed
    by an unrelated ``.npz`` sibling.  Otherwise the ``.npz``-suffixed
    sibling that :func:`save_checkpoint` would have written is used.  When
    neither exists, ``FileNotFoundError`` names every candidate tried.
    """
    candidates = [path]
    if not path.endswith(".npz"):
        candidates.append(path + ".npz")
    for candidate in candidates:
        if os.path.exists(candidate):
            return candidate
    raise FileNotFoundError(
        "no checkpoint at " + " or ".join(repr(c) for c in candidates)
    )


def save_checkpoint(
    model: Module, path: str, extra_meta: Optional[Dict[str, Any]] = None
) -> str:
    """Write the model's parameters (plus metadata) to ``path``.

    The ``.npz`` suffix is appended when missing (numpy would do so anyway);
    the actual path written is returned.  ``extra_meta`` entries must be
    JSON-serialisable and are merged into the ``__meta__`` record.
    """
    written = path if path.endswith(".npz") else path + ".npz"
    os.makedirs(os.path.dirname(written) or ".", exist_ok=True)
    state = model.state_dict()
    meta: Dict[str, Any] = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "model_class": type(model).__name__,
        "num_parameters": int(model.num_parameters()),
    }
    if extra_meta:
        meta.update(extra_meta)
    np.savez(written, **state, **{META_KEY: np.asarray(json.dumps(meta))})
    return written


def checkpoint_metadata(path: str) -> Dict[str, Any]:
    """Read a checkpoint's ``__meta__`` record without loading parameters.

    Returns ``{}`` for pre-metadata checkpoints.
    """
    with np.load(resolve_checkpoint_path(path)) as archive:
        if META_KEY not in archive.files:
            return {}
        return json.loads(str(archive[META_KEY]))


def migrate_state_dict(state: Dict[str, Any], model: Module) -> Dict[str, Any]:
    """Upgrade legacy parameter layouts to fit the receiving ``model``.

    Currently one migration: relational message passing layers used to hold
    one ``(dim, dim)`` parameter per connection-pattern edge type
    (``<layer>.type_weights[0..T-1]``); they now hold a single stacked
    ``(T, dim, dim)`` parameter ``<layer>.weight``.  Complete per-type
    groups whose stacked target exists on the receiving model (and is not
    already present in the checkpoint) are stacked in index order.  Models
    that still use per-type parameter lists (e.g. TACT) are untouched, as
    is any incomplete or ambiguous group — ``load_state_dict`` then reports
    the mismatch as usual.
    """
    groups: Dict[str, list] = {}
    for key in state:
        match = _TYPE_WEIGHTS_KEY.match(key)
        if match:
            groups.setdefault(match.group("prefix"), []).append(
                (int(match.group("index")), key)
            )
    if not groups:
        return state
    own = {name for name, _ in model.named_parameters()}
    migrated = dict(state)
    for prefix, entries in groups.items():
        target = f"{prefix}.weight"
        if target not in own or target in state:
            continue
        if any(key in own for _, key in entries):
            continue
        entries.sort()
        if [index for index, _ in entries] != list(range(len(entries))):
            continue
        migrated[target] = np.stack(
            [np.asarray(migrated.pop(key)) for _, key in entries]
        )
    return migrated


def load_checkpoint(model: Module, path: str) -> Dict[str, Any]:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    The model must have the same architecture (same parameter names and
    shapes).  Mismatches raise :class:`CheckpointMismatchError` naming the
    saved and receiving architectures; shape mismatches raise
    ``ValueError``.  Returns the checkpoint's metadata dict (``{}`` for
    pre-metadata checkpoints).
    """
    resolved = resolve_checkpoint_path(path)
    with np.load(resolved) as archive:
        state = {key: archive[key] for key in archive.files}
    raw_meta = state.pop(META_KEY, None)
    meta: Dict[str, Any] = json.loads(str(raw_meta)) if raw_meta is not None else {}
    if meta:
        version = meta.get("format_version", 0)
        if version > CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {resolved!r} has format version {version}, newer "
                f"than supported version {CHECKPOINT_FORMAT_VERSION}"
            )
        saved_class = meta.get("model_class")
        if saved_class is not None and saved_class != type(model).__name__:
            raise CheckpointMismatchError(
                f"checkpoint {resolved!r} was saved from a {saved_class!r} "
                f"model and cannot be loaded into a {type(model).__name__!r}"
            )
        saved_count = meta.get("num_parameters")
        if saved_count is not None and saved_count != model.num_parameters():
            raise CheckpointMismatchError(
                f"checkpoint {resolved!r} holds {saved_count} parameters but "
                f"the receiving {type(model).__name__!r} has "
                f"{model.num_parameters()} — architecture mismatch "
                "(check the model variant/config it was saved from)"
            )
    state = migrate_state_dict(state, model)
    try:
        model.load_state_dict(state)
    except KeyError as error:
        raise CheckpointMismatchError(
            f"checkpoint {resolved!r} does not match the receiving "
            f"{type(model).__name__!r} architecture: {error.args[0]}"
        ) from error
    return meta
