"""Generic trainer for subgraph-scoring models (paper §III-E, §IV-B).

Training contrasts positive triples from the training graph against
uniformly corrupted negatives with a margin ranking loss (eq. 12), using
Adam (lr 1e-3), batch size 16 and margin 10 — the paper's configuration.

Subgraph preparation is memoised inside the models, so epochs after the
first are dominated by the numpy forward/backward passes.  By default the
step is *one-pass*: positives and negatives ride a single merged scoring
call (one disjoint-union forward and one backward per step instead of
two), halving the engine's graph traversals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.autograd import Adam, clip_grad_norm, margin_ranking_loss
from repro.core.base import SubgraphScoringModel
from repro.eval.protocol import evaluate_triple_classification
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import negative_triples
from repro.kg.triples import TripleSet
from repro.obs import get_registry, span
from repro.utils.seeding import seeded_rng


@dataclass(frozen=True)
class ParallelConfig:
    """Multi-process execution section (see :mod:`repro.parallel`).

    ``workers=1`` — the default everywhere — keeps the serial code path
    completely untouched (no processes, no queues).  With ``workers > 1``
    training shards each batch across a fork-based worker pool
    (data-parallel gradients, averaged in the parent before the Adam
    step) and evaluation fans ranking queries across the same pool.
    """

    workers: int = 1
    eval_workers: Optional[int] = None  # None = same as ``workers``
    # Parameter-transport backend for data-parallel training:
    # ``"pickle"`` ships the full state dict inside every worker payload;
    # ``"shm"`` publishes weights to a shared-memory segment and stamps
    # payloads with a param version (zero-copy broadcast, bitwise-equal
    # checkpoints — see :mod:`repro.parallel.shm`).  ``"auto"`` reads the
    # ``REPRO_PARALLEL_BACKEND`` env var, defaulting to ``"pickle"``.
    backend: str = "auto"
    # Fault-tolerance knobs forwarded to the worker pool: how long one
    # task (batch shard / query shard) may run before its worker is deemed
    # wedged and recycled, and how many times a task lost to a worker
    # crash or an expired deadline is requeued before the run fails.
    task_deadline_s: Optional[float] = None
    max_task_retries: int = 2

    def resolved_eval_workers(self) -> int:
        return self.workers if self.eval_workers is None else self.eval_workers

    def resolved_backend(self) -> str:
        """``"pickle"`` or ``"shm"`` (``"auto"`` consults the env)."""
        from repro.parallel.shm import resolve_backend

        return resolve_backend(self.backend)


@dataclass(frozen=True)
class TrainingConfig:
    """Optimisation hyper-parameters (paper defaults, scaled epochs)."""

    epochs: int = 10
    batch_size: int = 16
    learning_rate: float = 1e-3
    margin: float = 10.0
    clip_norm: float = 5.0
    max_triples_per_epoch: Optional[int] = None
    validate_every: int = 0  # 0 = no intra-training validation
    patience: int = 3
    seed: int = 0
    use_fused_scoring: bool = True  # batched scoring (fused forward on RMPI)
    one_pass_step: bool = True  # positives+negatives in ONE forward/backward
    parallel: ParallelConfig = field(default_factory=ParallelConfig)


@dataclass
class TrainingHistory:
    """Per-epoch records produced by :meth:`Trainer.fit`."""

    losses: List[float] = field(default_factory=list)
    validation_auc_pr: List[float] = field(default_factory=list)
    best_epoch: int = -1
    stopped_early: bool = False


class Trainer:
    """Margin-ranking trainer over a training graph's target triples."""

    def __init__(
        self,
        model: SubgraphScoringModel,
        graph: KnowledgeGraph,
        train_triples: TripleSet,
        valid_triples: Optional[TripleSet] = None,
        config: Optional[TrainingConfig] = None,
    ) -> None:
        self.model = model
        self.graph = graph
        self.train_triples = train_triples
        self.valid_triples = valid_triples
        self.config = config or TrainingConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)
        self._rng = seeded_rng(self.config.seed)
        self._known = set(graph.triples) | set(train_triples)
        self._entities = sorted(graph.triples.entities())

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        history = TrainingHistory()
        config = self.config
        best_auc = -np.inf
        best_state = None
        bad_epochs = 0
        for epoch in range(config.epochs):
            history.losses.append(self._run_epoch())
            should_validate = (
                config.validate_every > 0
                and self.valid_triples is not None
                and len(self.valid_triples) > 0
                and (epoch + 1) % config.validate_every == 0
            )
            if should_validate:
                auc = self._validate(epoch)
                history.validation_auc_pr.append(auc)
                if auc > best_auc:
                    best_auc = auc
                    best_state = self.model.state_dict()
                    history.best_epoch = epoch
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= config.patience:
                        history.stopped_early = True
                        break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history

    # ------------------------------------------------------------------
    def _run_epoch(self) -> float:
        config = self.config
        self.model.train()
        triples = self.train_triples
        if (
            config.max_triples_per_epoch is not None
            and len(triples) > config.max_triples_per_epoch
        ):
            triples = triples.sample(config.max_triples_per_epoch, self._rng)
        positives = list(triples)
        order = self._rng.permutation(len(positives))
        epoch_loss = 0.0
        num_batches = 0
        for start in range(0, len(positives), config.batch_size):
            batch = [positives[i] for i in order[start : start + config.batch_size]]
            negatives = negative_triples(
                TripleSet(batch),
                num_entities=self.graph.num_entities,
                rng=self._rng,
                known=self._known,
                candidate_entities=self._entities,
            )
            with span("train.step"):
                step_loss = self._batch_step(batch, negatives)
            if step_loss is None:
                continue
            epoch_loss += step_loss
            num_batches += 1
            get_registry().counter("train.triples").inc(len(batch))
        get_registry().counter("train.epochs").inc()
        self.model.eval()
        return epoch_loss / max(num_batches, 1)

    def _batch_step(self, batch, negatives) -> Optional[float]:
        """Forward/backward/optimise one batch; returns its loss.

        The only trainer hook subclasses override: :meth:`_run_epoch` is
        the single owner of the epoch's RNG stream (subsampling,
        permutation, negative drawing), so changing step *execution* —
        e.g. the data-parallel fan-out — can never desynchronise the data
        order from the serial trainer.  Returning ``None`` skips the step
        (no optimiser state advanced).
        """
        config = self.config
        score_fn = (
            self.model.score_batch_fused
            if config.use_fused_scoring
            else self.model.score_batch
        )
        if config.one_pass_step:
            # One merged forward/backward per step: positives and
            # negatives ride the same (disjoint-union) scoring pass,
            # halving the graph traversals of the two-call layout.
            scores = score_fn(self.graph, list(batch) + list(negatives))
            pos_scores = scores[: len(batch)]
            neg_scores = scores[len(batch) :]
        else:
            pos_scores = score_fn(self.graph, batch)
            neg_scores = score_fn(self.graph, negatives)
        loss = margin_ranking_loss(pos_scores, neg_scores, margin=config.margin)
        self.optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(self.model.parameters(), config.clip_norm)
        self.optimizer.step()
        return float(loss.data)

    def _validate(self, epoch: int) -> float:
        result = evaluate_triple_classification(
            self.model,
            self.graph,
            self.valid_triples,
            seeded_rng((self.config.seed, 7, epoch)),
        )
        return result.auc_pr


def train_model(
    model: SubgraphScoringModel,
    graph: KnowledgeGraph,
    train_triples: TripleSet,
    valid_triples: Optional[TripleSet] = None,
    config: Optional[TrainingConfig] = None,
) -> TrainingHistory:
    """Convenience one-shot training entry point.

    Dispatches to the data-parallel trainer when the config's ``parallel``
    section asks for more than one worker; otherwise the serial
    :class:`Trainer` runs exactly as before.
    """
    config = config or TrainingConfig()
    if config.parallel.workers > 1:
        from repro.parallel.trainer import DataParallelTrainer

        return DataParallelTrainer(
            model, graph, train_triples, valid_triples, config
        ).fit()
    return Trainer(model, graph, train_triples, valid_triples, config).fit()
