"""`repro.train` — training loops for subgraph-scoring models."""

from repro.train.checkpoint import load_checkpoint, save_checkpoint
from repro.train.trainer import Trainer, TrainingConfig, TrainingHistory, train_model

__all__ = [
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "train_model",
    "save_checkpoint",
    "load_checkpoint",
]
