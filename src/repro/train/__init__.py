"""`repro.train` — training loops for subgraph-scoring models."""

from repro.train.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointMismatchError,
    checkpoint_metadata,
    load_checkpoint,
    migrate_state_dict,
    resolve_checkpoint_path,
    save_checkpoint,
)
from repro.train.trainer import (
    ParallelConfig,
    Trainer,
    TrainingConfig,
    TrainingHistory,
    train_model,
)

__all__ = [
    "ParallelConfig",
    "Trainer",
    "TrainingConfig",
    "TrainingHistory",
    "train_model",
    "save_checkpoint",
    "load_checkpoint",
    "migrate_state_dict",
    "checkpoint_metadata",
    "resolve_checkpoint_path",
    "CheckpointMismatchError",
    "CHECKPOINT_FORMAT_VERSION",
]
