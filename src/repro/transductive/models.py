"""Transductive KG embedding models (paper §V-A lineage).

The paper's related-work taxonomy covers three families of transductive
scorers; the schema pre-training step (§III-D2) says relation semantics are
learned "using KG embedding techniques e.g., the method by TransE".  This
package implements the classic members of each family on the autograd
engine so (i) schema pre-training can use any of them, and (ii) they serve
as transductive reference points:

* translation-based — :class:`TransE` (Bordes et al. 2013),
  :class:`TransH` (Wang et al. 2014), :class:`RotatE` (Sun et al. 2019);
* semantic matching — :class:`DistMult` (Yang et al. 2015),
  :class:`ComplEx` (Trouillon et al. 2016).

All models share the :class:`TransductiveModel` interface: integer-id score
batches in, ``(n,)`` score tensors out (higher = more plausible).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd import Embedding, Module, Tensor, ops
from repro.autograd.segment import gather


class TransductiveModel(Module):
    """Base class: entity/relation tables + a score function."""

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.entities = Embedding(num_entities, dim, rng)
        self.relations = Embedding(num_relations, dim, rng)

    # ------------------------------------------------------------------
    def score(self, heads, relations, tails) -> Tensor:
        """Differentiable scores, shape ``(n,)``; higher = more plausible."""
        raise NotImplementedError

    def score_array(self, triples: Sequence) -> np.ndarray:
        """Eval-mode numpy scores for (h, r, t) tuples."""
        array = np.asarray([tuple(t) for t in triples], dtype=np.int64)
        return self.score(array[:, 0], array[:, 1], array[:, 2]).data

    def relation_vectors(self) -> np.ndarray:
        """The learned relation embedding table (used for schema vectors)."""
        return self.relations.weight.data.copy()


class TransE(TransductiveModel):
    """``-||h + r - t||_2`` — translations in a single real space."""

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        delta = ops.sub(ops.add(h, r), t)
        return ops.mul(ops.sqrt(ops.sum(ops.mul(delta, delta), axis=1)), -1.0)


class TransH(TransductiveModel):
    """TransE on relation-specific hyperplanes.

    Entities are projected onto the hyperplane with normal ``w_r`` before
    translation: ``h_perp = h - (w.h) w``.
    """

    def __init__(self, num_entities, num_relations, dim, rng) -> None:
        super().__init__(num_entities, num_relations, dim, rng)
        self.normals = Embedding(num_relations, dim, rng)

    def _project(self, vectors: Tensor, normals: Tensor) -> Tensor:
        # Normalise the normals so the projection is well-conditioned.
        norm = ops.sqrt(ops.sum(ops.mul(normals, normals), axis=1, keepdims=True))
        unit = ops.div(normals, ops.add(norm, 1e-9))
        dots = ops.sum(ops.mul(vectors, unit), axis=1, keepdims=True)
        return ops.sub(vectors, ops.mul(dots, unit))

    def score(self, heads, relations, tails) -> Tensor:
        w = self.normals(relations)
        h = self._project(self.entities(heads), w)
        t = self._project(self.entities(tails), w)
        r = self.relations(relations)
        delta = ops.sub(ops.add(h, r), t)
        return ops.mul(ops.sqrt(ops.sum(ops.mul(delta, delta), axis=1)), -1.0)


class DistMult(TransductiveModel):
    """``<h, diag(r), t>`` — symmetric bilinear matching."""

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        r = self.relations(relations)
        t = self.entities(tails)
        return ops.sum(ops.mul(ops.mul(h, r), t), axis=1)


class ComplEx(TransductiveModel):
    """Complex bilinear matching: ``Re(<h, r, conj(t)>)``.

    The ``dim`` real dimensions are split into real/imaginary halves.
    """

    def __init__(self, num_entities, num_relations, dim, rng) -> None:
        if dim % 2 != 0:
            raise ValueError("ComplEx needs an even dimension")
        super().__init__(num_entities, num_relations, dim, rng)
        self.half = dim // 2

    def _split(self, x: Tensor):
        n = x.shape[0]
        real = ops.matmul(x, Tensor(np.vstack([np.eye(self.half), np.zeros((self.half, self.half))])))
        imag = ops.matmul(x, Tensor(np.vstack([np.zeros((self.half, self.half)), np.eye(self.half)])))
        return real, imag

    def score(self, heads, relations, tails) -> Tensor:
        h_re, h_im = self._split(self.entities(heads))
        r_re, r_im = self._split(self.relations(relations))
        t_re, t_im = self._split(self.entities(tails))
        # Re(<h, r, conj(t)>) expanded into four real trilinear terms.
        term1 = ops.mul(ops.mul(h_re, r_re), t_re)
        term2 = ops.mul(ops.mul(h_im, r_re), t_im)
        term3 = ops.mul(ops.mul(h_re, r_im), t_im)
        term4 = ops.mul(ops.mul(h_im, r_im), t_re)
        combined = ops.sub(ops.add(ops.add(term1, term2), term3), term4)
        return ops.sum(combined, axis=1)


class RotatE(TransductiveModel):
    """Relations as rotations in the complex plane: ``-||h ∘ r - t||``.

    Relation parameters are interpreted as phase angles; entity dimensions
    split into real/imaginary halves as in ComplEx.
    """

    def __init__(self, num_entities, num_relations, dim, rng) -> None:
        if dim % 2 != 0:
            raise ValueError("RotatE needs an even dimension")
        super().__init__(num_entities, num_relations, dim, rng)
        self.half = dim // 2
        self._re_proj = Tensor(
            np.vstack([np.eye(self.half), np.zeros((self.half, self.half))])
        )
        self._im_proj = Tensor(
            np.vstack([np.zeros((self.half, self.half)), np.eye(self.half)])
        )
        self._phase_proj = Tensor(np.eye(dim)[:, : self.half])

    def score(self, heads, relations, tails) -> Tensor:
        h = self.entities(heads)
        t = self.entities(tails)
        h_re, h_im = ops.matmul(h, self._re_proj), ops.matmul(h, self._im_proj)
        t_re, t_im = ops.matmul(t, self._re_proj), ops.matmul(t, self._im_proj)
        phases = ops.matmul(self.relations(relations), self._phase_proj)
        r_re, r_im = ops.cos(phases), ops.sin(phases)
        # (h_re + i h_im)(r_re + i r_im) - (t_re + i t_im)
        rot_re = ops.sub(ops.mul(h_re, r_re), ops.mul(h_im, r_im))
        rot_im = ops.add(ops.mul(h_re, r_im), ops.mul(h_im, r_re))
        d_re = ops.sub(rot_re, t_re)
        d_im = ops.sub(rot_im, t_im)
        sq = ops.add(ops.mul(d_re, d_re), ops.mul(d_im, d_im))
        return ops.mul(ops.sqrt(ops.sum(sq, axis=1)), -1.0)


MODEL_REGISTRY = {
    "TransE": TransE,
    "TransH": TransH,
    "DistMult": DistMult,
    "ComplEx": ComplEx,
    "RotatE": RotatE,
}


def create_model(
    name: str,
    num_entities: int,
    num_relations: int,
    dim: int,
    rng: np.random.Generator,
) -> TransductiveModel:
    """Instantiate a transductive model by name."""
    if name not in MODEL_REGISTRY:
        raise ValueError(f"unknown transductive model {name!r}; choose from {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[name](num_entities, num_relations, dim, rng)
