"""`repro.transductive` — classic KG embedding models.

TransE / TransH / DistMult / ComplEx / RotatE on the autograd engine, with
a shared trainer and link-prediction evaluation.  Used as the pluggable
schema pre-training backend (§III-D2 "KG embedding techniques e.g. TransE")
and as transductive reference points for the related-work families (§V-A).
"""

from repro.transductive.models import (
    MODEL_REGISTRY,
    ComplEx,
    DistMult,
    RotatE,
    TransductiveModel,
    TransE,
    TransH,
    create_model,
)
from repro.transductive.trainer import (
    LinkPredictionResult,
    TransductiveTrainingConfig,
    evaluate_link_prediction,
    train_transductive,
)

__all__ = [
    "TransductiveModel",
    "TransE",
    "TransH",
    "DistMult",
    "ComplEx",
    "RotatE",
    "MODEL_REGISTRY",
    "create_model",
    "TransductiveTrainingConfig",
    "train_transductive",
    "evaluate_link_prediction",
    "LinkPredictionResult",
]
