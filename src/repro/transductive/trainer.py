"""Training and evaluation for transductive embedding models.

Standard protocol: margin ranking (or self-adversarial-free softplus) over
uniformly corrupted negatives; link-prediction evaluation ranks the truth
against sampled candidates with the same metrics as the inductive pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.autograd import Adam, margin_ranking_loss, ops
from repro.eval.metrics import hits_at, mrr, rank_of_first
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import ranking_candidates
from repro.kg.triples import TripleSet
from repro.transductive.models import TransductiveModel
from repro.utils.seeding import seeded_rng


@dataclass(frozen=True)
class TransductiveTrainingConfig:
    epochs: int = 50
    batch_size: int = 128
    learning_rate: float = 0.01
    margin: float = 4.0
    loss: str = "margin"  # or "softplus"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.loss not in ("margin", "softplus"):
            raise ValueError(f"unknown loss {self.loss!r}")


def train_transductive(
    model: TransductiveModel,
    triples: TripleSet,
    config: Optional[TransductiveTrainingConfig] = None,
) -> List[float]:
    """Train on a triple set; returns per-epoch mean losses."""
    config = config or TransductiveTrainingConfig()
    rng = seeded_rng(config.seed)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)
    array = triples.array
    known = set(triples)
    losses: List[float] = []
    model.train()
    for _epoch in range(config.epochs):
        order = rng.permutation(len(array))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(array), config.batch_size):
            batch = array[order[start : start + config.batch_size]]
            heads, rels, tails = batch[:, 0], batch[:, 1], batch[:, 2]
            corrupt_head = rng.random(len(batch)) < 0.5
            random_entities = rng.integers(model.num_entities, size=len(batch))
            neg_heads = np.where(corrupt_head, random_entities, heads)
            neg_tails = np.where(corrupt_head, tails, random_entities)

            pos = model.score(heads, rels, tails)
            neg = model.score(neg_heads, rels, neg_tails)
            if config.loss == "margin":
                loss = margin_ranking_loss(
                    ops.reshape(pos, (len(batch), 1)),
                    ops.reshape(neg, (len(batch), 1)),
                    margin=config.margin,
                )
            else:
                # softplus(-pos) + softplus(neg): push positives up, negatives down.
                loss = ops.mean(
                    ops.add(ops.softplus(ops.mul(pos, -1.0)), ops.softplus(neg))
                )
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_loss += float(loss.data)
            batches += 1
        losses.append(epoch_loss / max(batches, 1))
    model.eval()
    return losses


@dataclass(frozen=True)
class LinkPredictionResult:
    mrr: float
    hits_at_10: float
    hits_at_1: float


def evaluate_link_prediction(
    model: TransductiveModel,
    triples: TripleSet,
    known: TripleSet,
    num_negatives: int = 49,
    seed: int = 0,
) -> LinkPredictionResult:
    """Rank each test triple's truth against sampled corruptions."""
    rng = seeded_rng(seed)
    known_set = set(known) | set(triples)
    ranks = []
    for triple in triples:
        candidates = ranking_candidates(
            triple,
            num_entities=model.num_entities,
            rng=rng,
            num_negatives=num_negatives,
            known=known_set,
            corrupt_head=bool(rng.integers(2)),
        )
        scores = model.score_array(candidates)
        ranks.append(rank_of_first(scores))
    return LinkPredictionResult(
        mrr=mrr(ranks), hits_at_10=hits_at(ranks, 10), hits_at_1=hits_at(ranks, 1)
    )
