"""Entity-view → relation-view graph transformation (paper §III-B, Fig. 3).

Every edge (triple occurrence) of the extracted subgraph becomes a *node* of
the relational graph; two nodes are connected iff their triples share an
entity.  Directed edges carry one of six connection-pattern types describing
*how* the triples share entities:

====  =========  =====================================================
code  name       condition for an edge  a -> b  (a=(h1,r1,t1), b=(h2,r2,t2))
====  =========  =====================================================
0     H-H        h1 == h2  (heads coincide)
1     H-T        h1 == t2  (a's head is b's tail)
2     T-H        t1 == h2  (a's tail is b's head)
3     T-T        t1 == t2  (tails coincide)
4     PARA       h1 == h2 and t1 == t2  (parallel edges)
5     LOOP       h1 == t2 and t1 == h2  (crossed heads/tails)
====  =========  =====================================================

PARA and LOOP subsume their component patterns (a parallel pair is typed
PARA, not H-H + T-T).  The *target triple itself* is always added as a node
(index :attr:`RelationalGraph.target_node`) so the message-passing network
has a root to aggregate into even for candidate triples that are not facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.triples import Triple
from repro.subgraph.extraction import ExtractedSubgraph

NUM_EDGE_TYPES = 6
EDGE_TYPE_NAMES = ("H-H", "H-T", "T-H", "T-T", "PARA", "LOOP")

H_H, H_T, T_H, T_T, PARA, LOOP = range(NUM_EDGE_TYPES)


def connection_types(a: Triple, b: Triple) -> List[int]:
    """All connection-pattern types for a directed edge ``a -> b``."""
    h1, _r1, t1 = a
    h2, _r2, t2 = b
    if h1 == h2 and t1 == t2:
        return [PARA]
    if h1 == t2 and t1 == h2:
        return [LOOP]
    types: List[int] = []
    if h1 == h2:
        types.append(H_H)
    if h1 == t2:
        types.append(H_T)
    if t1 == h2:
        types.append(T_H)
    if t1 == t2:
        types.append(T_T)
    return types


@dataclass(frozen=True)
class RelationalGraph:
    """The relation-view graph R(G) of an extracted subgraph.

    Attributes
    ----------
    node_triples:
        Original (h, r, t) per node; node ids are positions in this tuple.
    node_relations:
        int64 array of each node's relation id (feature lookup key).
    edges:
        ``(m, 3)`` int64 array of ``(src_node, edge_type, dst_node)`` rows,
        deduplicated and sorted.
    target_node:
        Index of the node standing for the target triple.
    """

    node_triples: Tuple[Triple, ...]
    node_relations: np.ndarray
    edges: np.ndarray
    target_node: int

    @property
    def num_nodes(self) -> int:
        return len(self.node_triples)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def incoming(self, node: int) -> np.ndarray:
        """Edge rows whose destination is ``node``."""
        if self.num_edges == 0:
            return np.empty((0, 3), dtype=np.int64)
        return self.edges[self.edges[:, 2] == node]


def build_relational_graph(subgraph: ExtractedSubgraph) -> RelationalGraph:
    """Transform an extracted (entity-view) subgraph into relation view."""
    target = subgraph.target()
    node_triples: List[Triple] = [target]
    for triple in subgraph.triples:
        node_triples.append(triple)

    incident: Dict[int, List[int]] = {}
    for node_id, (head, _rel, tail) in enumerate(node_triples):
        incident.setdefault(head, []).append(node_id)
        if tail != head:
            incident.setdefault(tail, []).append(node_id)

    edge_set: Set[Tuple[int, int, int]] = set()
    for nodes in incident.values():
        for a in nodes:
            for b in nodes:
                if a == b:
                    continue
                for edge_type in connection_types(node_triples[a], node_triples[b]):
                    edge_set.add((a, edge_type, b))

    if edge_set:
        edges = np.asarray(sorted(edge_set), dtype=np.int64)
    else:
        edges = np.empty((0, 3), dtype=np.int64)
    node_relations = np.asarray([t[1] for t in node_triples], dtype=np.int64)
    return RelationalGraph(
        node_triples=tuple(node_triples),
        node_relations=node_relations,
        edges=edges,
        target_node=0,
    )


def target_one_hop_relations(subgraph: ExtractedSubgraph) -> List[int]:
    """Relations of edges incident to the target head or tail.

    These are exactly the one-hop neighbors of the target node in the
    relation-view graph of ``subgraph`` — the neighborhood the disclosing
    (NE) module aggregates (paper eq. 13).  Computed directly without
    building the full (dense) relational graph of the disclosing subgraph.
    """
    u, v = subgraph.head, subgraph.tail
    relations: List[int] = []
    for head, rel, tail in subgraph.triples:
        if head == u or tail == u or head == v or tail == v:
            relations.append(rel)
    return relations
