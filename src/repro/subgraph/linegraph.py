"""Entity-view → relation-view graph transformation (paper §III-B, Fig. 3).

Every edge (triple occurrence) of the extracted subgraph becomes a *node* of
the relational graph; two nodes are connected iff their triples share an
entity.  Directed edges carry one of six connection-pattern types describing
*how* the triples share entities:

====  =========  =====================================================
code  name       condition for an edge  a -> b  (a=(h1,r1,t1), b=(h2,r2,t2))
====  =========  =====================================================
0     H-H        h1 == h2  (heads coincide)
1     H-T        h1 == t2  (a's head is b's tail)
2     T-H        t1 == h2  (a's tail is b's head)
3     T-T        t1 == t2  (tails coincide)
4     PARA       h1 == h2 and t1 == t2  (parallel edges)
5     LOOP       h1 == t2 and t1 == h2  (crossed heads/tails)
====  =========  =====================================================

PARA and LOOP subsume their component patterns (a parallel pair is typed
PARA, not H-H + T-T).  The *target triple itself* is always added as a node
(index :attr:`RelationalGraph.target_node`) so the message-passing network
has a root to aggregate into even for candidate triples that are not facts.

Two implementations coexist (mirroring ``repro.subgraph.extraction``):

* the **vectorized kernel** (:func:`build_relational_graphs_many`, also
  behind :func:`build_relational_graph`) enumerates co-incident triple
  pairs per entity with ``np.repeat``/``np.tile`` over degree groups,
  classifies all six connection-pattern types with boolean masks in one
  shot, and deduplicates with ``np.unique`` on packed pair keys.  A whole
  batch of subgraphs (e.g. the ~50 candidates of one ranking query) runs
  through shared numpy passes by offsetting node/entity ids per graph;
* the **legacy reference path** (:func:`legacy_build_relational_graph`) is
  the original pure-Python O(Σ deg²) nested loop over entity incidence
  lists, kept as an executable specification; the equivalence property
  suite asserts both paths produce identical :class:`RelationalGraph`
  values (same node ordering, same sorted edge rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.triples import Triple
from repro.obs import span
from repro.subgraph.extraction import ExtractedSubgraph

NUM_EDGE_TYPES = 6
EDGE_TYPE_NAMES = ("H-H", "H-T", "T-H", "T-T", "PARA", "LOOP")

H_H, H_T, T_H, T_T, PARA, LOOP = range(NUM_EDGE_TYPES)

def connection_types(a: Triple, b: Triple) -> List[int]:
    """All connection-pattern types for a directed edge ``a -> b``."""
    h1, _r1, t1 = a
    h2, _r2, t2 = b
    if h1 == h2 and t1 == t2:
        return [PARA]
    if h1 == t2 and t1 == h2:
        return [LOOP]
    types: List[int] = []
    if h1 == h2:
        types.append(H_H)
    if h1 == t2:
        types.append(H_T)
    if t1 == h2:
        types.append(T_H)
    if t1 == t2:
        types.append(T_T)
    return types


@dataclass(frozen=True)
class RelationalGraph:
    """The relation-view graph R(G) of an extracted subgraph.

    Attributes
    ----------
    node_heads / node_relations / node_tails:
        int64 arrays of each node's original (h, r, t); node ids are
        positions in these arrays (``node_relations`` doubles as the
        feature lookup key).
    edges:
        ``(m, 3)`` int64 array of ``(src_node, edge_type, dst_node)`` rows,
        deduplicated and sorted.
    target_node:
        Index of the node standing for the target triple.
    node_triples:
        The per-node ``(h, r, t)`` python tuples, materialised lazily on
        first access — the scoring hot paths only ever touch the arrays.
    """

    node_heads: np.ndarray
    node_relations: np.ndarray
    node_tails: np.ndarray
    edges: np.ndarray
    target_node: int
    # Lazily-built caches (filled on first access via object.__setattr__;
    # excluded from equality and repr).
    _node_triples: Optional[Tuple[Triple, ...]] = field(
        default=None, repr=False, compare=False
    )
    _incoming_indptr: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _incoming_order: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    @property
    def node_triples(self) -> Tuple[Triple, ...]:
        if self._node_triples is None:
            object.__setattr__(
                self,
                "_node_triples",
                tuple(
                    zip(
                        self.node_heads.tolist(),
                        self.node_relations.tolist(),
                        self.node_tails.tolist(),
                    )
                ),
            )
        return self._node_triples

    @property
    def num_nodes(self) -> int:
        return len(self.node_relations)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def incoming_index(self) -> Tuple[np.ndarray, np.ndarray]:
        """CSR index over incoming edges: ``(indptr, edge_order)``.

        ``edge_order[indptr[n]:indptr[n+1]]`` are the row indices into
        :attr:`edges` whose destination is ``n``, in original (sorted) row
        order.  Built lazily once; every subsequent :meth:`incoming` call
        and the pruning BFS are O(deg) slices instead of O(E) scans.
        """
        if self._incoming_indptr is None:
            if self.num_edges:
                order = np.argsort(self.edges[:, 2], kind="stable")
                counts = np.bincount(self.edges[:, 2], minlength=self.num_nodes)
            else:
                order = np.empty(0, dtype=np.int64)
                counts = np.zeros(self.num_nodes, dtype=np.int64)
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            object.__setattr__(self, "_incoming_indptr", indptr)
            object.__setattr__(self, "_incoming_order", order)
        return self._incoming_indptr, self._incoming_order

    def incoming(self, node: int) -> np.ndarray:
        """Edge rows whose destination is ``node``."""
        if self.num_edges == 0:
            return np.empty((0, 3), dtype=np.int64)
        indptr, order = self.incoming_index()
        return self.edges[order[indptr[node] : indptr[node + 1]]]


# ======================================================================
# Vectorized pairing kernel
# ======================================================================

def _coincident_pairs(
    entity_keys: np.ndarray, node_ids: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Deduplicated ordered pairs ``(a, b)``, ``a != b``, of nodes sharing
    an entity key.

    ``entity_keys[i]`` is the (batch-disambiguated) entity incident to node
    ``node_ids[i]``; each node appears at most once per distinct incident
    entity.  Pair enumeration is the O(Σ deg²) all-ordered-pairs expansion
    per degree group, fully vectorized.
    """
    if entity_keys.size < 2:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    order = np.argsort(entity_keys, kind="stable")
    keys = entity_keys[order]
    nodes = node_ids[order]
    boundary = np.empty(keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    group_starts = np.flatnonzero(boundary)
    group_sizes = np.diff(np.append(group_starts, keys.size))
    multi = group_sizes >= 2
    starts = group_starts[multi]
    sizes = group_sizes[multi]
    if starts.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    pair_counts = sizes * sizes
    total = int(pair_counts.sum())
    group_of_pair = np.repeat(np.arange(starts.size, dtype=np.int64), pair_counts)
    first_pair = np.repeat(np.cumsum(pair_counts) - pair_counts, pair_counts)
    rank = np.arange(total, dtype=np.int64) - first_pair
    size_of_pair = sizes[group_of_pair]
    base = starts[group_of_pair]
    a = nodes[base + rank // size_of_pair]
    b = nodes[base + rank % size_of_pair]
    off_diagonal = a != b
    a = a[off_diagonal]
    b = b[off_diagonal]
    # Nodes sharing two entities are enumerated in both groups; dedup on a
    # packed (a, b) key via sort + adjacent-duplicate mask (much cheaper
    # than np.unique's hash path on this workload).
    packed = a * np.int64(num_nodes) + b
    if packed.size == 0:
        return packed, packed
    packed.sort()
    distinct = np.empty(packed.size, dtype=bool)
    distinct[0] = True
    np.not_equal(packed[1:], packed[:-1], out=distinct[1:])
    packed = packed[distinct]
    return packed // num_nodes, packed % num_nodes


def _classified_edges(
    heads: np.ndarray, tails: np.ndarray, a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Classify all pairs with the six-pattern boolean masks in one shot.

    Returns ``(src, etype, dst)`` arrays, unsorted; rows are unique because
    pairs are unique and the per-pair types are distinct.
    """
    h1, t1 = heads[a], tails[a]
    h2, t2 = heads[b], tails[b]
    hh = h1 == h2
    ht = h1 == t2
    th = t1 == h2
    tt = t1 == t2
    para = hh & tt
    crossed = ht & th
    loop = crossed & ~para
    # PARA/LOOP subsume the component patterns (legacy precedence order).
    plain = ~para & ~crossed
    src_parts: List[np.ndarray] = []
    type_codes: List[int] = []
    dst_parts: List[np.ndarray] = []
    for mask, code in (
        (para, PARA),
        (loop, LOOP),
        (plain & hh, H_H),
        (plain & ht, H_T),
        (plain & th, T_H),
        (plain & tt, T_T),
    ):
        if mask.any():
            src_parts.append(a[mask])
            type_codes.append(code)
            dst_parts.append(b[mask])
    if not src_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    etype = np.concatenate(
        [
            np.full(len(part), code, dtype=np.int64)
            for part, code in zip(src_parts, type_codes)
        ]
    )
    return src, etype, dst


def build_relational_graphs_many(
    subgraphs: Sequence[ExtractedSubgraph],
) -> List[RelationalGraph]:
    """Transform a batch of extracted subgraphs to relation view at once.

    All subgraphs share the pairing/classification/sorting numpy passes:
    node ids are offset per graph and entity ids disambiguated with a
    per-graph key stride, so one sort/group-by enumerates every graph's
    co-incident triple pairs together.  Output graphs are identical to
    per-subgraph :func:`legacy_build_relational_graph` results.
    """
    subgraphs = list(subgraphs)
    if not subgraphs:
        return []
    with span("prepare.linegraph"):
        return _build_relational_graphs_many(subgraphs)


def _build_relational_graphs_many(
    subgraphs: Sequence[ExtractedSubgraph],
) -> List[RelationalGraph]:
    node_counts = np.empty(len(subgraphs), dtype=np.int64)
    head_parts: List[np.ndarray] = []
    rel_parts: List[np.ndarray] = []
    tail_parts: List[np.ndarray] = []
    for i, subgraph in enumerate(subgraphs):
        arr = subgraph.triples.array
        n = len(arr) + 1
        node_counts[i] = n
        heads = np.empty(n, dtype=np.int64)
        rels = np.empty(n, dtype=np.int64)
        tails = np.empty(n, dtype=np.int64)
        heads[0], rels[0], tails[0] = subgraph.head, subgraph.relation, subgraph.tail
        heads[1:] = arr[:, 0]
        rels[1:] = arr[:, 1]
        tails[1:] = arr[:, 2]
        head_parts.append(heads)
        rel_parts.append(rels)
        tail_parts.append(tails)

    offsets = np.zeros(len(subgraphs) + 1, dtype=np.int64)
    np.cumsum(node_counts, out=offsets[1:])
    total_nodes = int(offsets[-1])
    all_heads = np.concatenate(head_parts)
    all_tails = np.concatenate(tail_parts)
    node_graph = np.repeat(np.arange(len(subgraphs), dtype=np.int64), node_counts)

    # Entity incidence: every node under its head entity, plus its tail
    # entity when distinct (matching the legacy incidence lists).  Entity
    # keys carry the graph id so graphs never pair across the batch.
    stride = np.int64(max(int(all_heads.max()), int(all_tails.max())) + 1) if total_nodes else np.int64(1)
    node_index = np.arange(total_nodes, dtype=np.int64)
    loop_free = all_tails != all_heads
    entity_keys = np.concatenate(
        [
            node_graph * stride + all_heads,
            node_graph[loop_free] * stride + all_tails[loop_free],
        ]
    )
    incident_nodes = np.concatenate([node_index, node_index[loop_free]])

    a, b = _coincident_pairs(entity_keys, incident_nodes, total_nodes)
    src, etype, dst = _classified_edges(all_heads, all_tails, a, b)
    # Global lexicographic sort by (src, etype, dst); node offsets are
    # monotone per graph, so this is simultaneously the per-graph local
    # (src, etype, dst) order the legacy path produces.
    if src.size:
        order = np.lexsort((dst, etype, src))
        src, etype, dst = src[order], etype[order], dst[order]
        edge_bounds = np.searchsorted(src, offsets)
    else:
        edge_bounds = np.zeros(len(subgraphs) + 1, dtype=np.int64)

    graphs: List[RelationalGraph] = []
    for i in range(len(subgraphs)):
        lo, hi = int(edge_bounds[i]), int(edge_bounds[i + 1])
        if hi > lo:
            shift = offsets[i]
            edges = np.column_stack(
                [src[lo:hi] - shift, etype[lo:hi], dst[lo:hi] - shift]
            )
        else:
            edges = np.empty((0, 3), dtype=np.int64)
        graphs.append(
            RelationalGraph(
                node_heads=head_parts[i],
                node_relations=rel_parts[i],
                node_tails=tail_parts[i],
                edges=edges,
                target_node=0,
            )
        )
    return graphs


def build_relational_graph(subgraph: ExtractedSubgraph) -> RelationalGraph:
    """Transform an extracted (entity-view) subgraph into relation view.

    Thin wrapper over :func:`build_relational_graphs_many`; results are
    identical to :func:`legacy_build_relational_graph`.
    """
    return build_relational_graphs_many([subgraph])[0]


# ======================================================================
# Legacy pure-Python reference path
# ======================================================================

def legacy_build_relational_graph(subgraph: ExtractedSubgraph) -> RelationalGraph:
    """Reference pure-Python transform (nested loops over incidence lists)."""
    target = subgraph.target()
    node_triples: List[Triple] = [target]
    for triple in subgraph.triples:
        node_triples.append(triple)

    incident: Dict[int, List[int]] = {}
    for node_id, (head, _rel, tail) in enumerate(node_triples):
        incident.setdefault(head, []).append(node_id)
        if tail != head:
            incident.setdefault(tail, []).append(node_id)

    edge_set: Set[Tuple[int, int, int]] = set()
    for nodes in incident.values():
        for a in nodes:
            for b in nodes:
                if a == b:
                    continue
                for edge_type in connection_types(node_triples[a], node_triples[b]):
                    edge_set.add((a, edge_type, b))

    if edge_set:
        edges = np.asarray(sorted(edge_set), dtype=np.int64)
    else:
        edges = np.empty((0, 3), dtype=np.int64)
    return RelationalGraph(
        node_heads=np.asarray([t[0] for t in node_triples], dtype=np.int64),
        node_relations=np.asarray([t[1] for t in node_triples], dtype=np.int64),
        node_tails=np.asarray([t[2] for t in node_triples], dtype=np.int64),
        edges=edges,
        target_node=0,
        _node_triples=tuple(node_triples),
    )


def target_one_hop_relations(subgraph: ExtractedSubgraph) -> List[int]:
    """Relations of edges incident to the target head or tail.

    These are exactly the one-hop neighbors of the target node in the
    relation-view graph of ``subgraph`` — the neighborhood the disclosing
    (NE) module aggregates (paper eq. 13).  Computed directly (one boolean
    mask over the triple array) without building the full (dense)
    relational graph of the disclosing subgraph.
    """
    arr = subgraph.triples.array
    if len(arr) == 0:
        return []
    u, v = subgraph.head, subgraph.tail
    heads, tails = arr[:, 0], arr[:, 2]
    mask = (heads == u) | (tails == u) | (heads == v) | (tails == v)
    return arr[mask, 1].tolist()
