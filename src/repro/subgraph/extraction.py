"""K-hop enclosing and disclosing subgraph extraction (paper §III-B, §III-F).

Given a target triple ``(u, r_t, v)``:

* the **enclosing** subgraph is induced by ``N_K(u) ∩ N_K(v)`` — entities
  within K undirected hops of *both* target entities — followed by pruning
  of nodes that are isolated or farther than K from either target inside
  the induced graph;
* the **disclosing** subgraph is induced by ``N_K(u) ∪ N_K(v)`` and is used
  to rescue triples whose enclosing subgraph is empty (§III-F).  Entities
  left with no surviving edge are pruned (the targets always stay), so the
  entity set never contains isolated non-target nodes.

The target edge itself (every copy of ``(u, r, v)`` with the target
relation) is removed from the extracted edge set so the model cannot read
off the answer — the standard GraIL protocol.

Two implementations coexist:

* the **vectorized engine** (:func:`extract_subgraphs_many`) runs
  boolean-mask frontier BFS over the graph's CSR adjacency and induces
  edges with numpy masks.  It is the default behind
  :func:`extract_enclosing_subgraph` / :func:`extract_disclosing_subgraph`
  and is what the evaluation protocol's 50-candidates-per-query workload
  hits: all candidates of one ranking query share the uncorrupted head or
  tail, so their K-hop frontiers come from the graph's bounded LRU
  :class:`~repro.kg.graph.NeighborhoodCache` (knob:
  ``KnowledgeGraph(..., neighborhood_cache_size=...)``).
* the **legacy reference path** (:func:`legacy_extract_enclosing_subgraph`
  / :func:`legacy_extract_disclosing_subgraph`) is the original pure-Python
  dict/set BFS, kept as an executable specification; the equivalence
  property tests assert both paths produce identical
  :class:`ExtractedSubgraph` values.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple, TripleSet
from repro.obs import get_registry, span


@dataclass(frozen=True)
class ExtractedSubgraph:
    """A subgraph around a target triple, in entity view.

    ``triples`` never contains the target triple itself.  ``distances_u`` /
    ``distances_v`` are shortest-path distances *inside the extracted
    subgraph* (used for GraIL's double-radius labels); unreachable entities
    are absent from the dicts.
    """

    head: int
    relation: int
    tail: int
    entities: Tuple[int, ...]
    triples: TripleSet
    num_hops: int
    distances_u: Dict[int, int] = field(default_factory=dict)
    distances_v: Dict[int, int] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when no edge survives extraction (the §III-F failure case)."""
        return len(self.triples) == 0

    def target(self) -> Triple:
        return (self.head, self.relation, self.tail)


# ======================================================================
# Vectorized CSR engine
# ======================================================================

def _masked_bfs_distances(
    count: int,
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    source_index: int,
    max_hops: int,
) -> np.ndarray:
    """BFS distances inside an extracted edge set, in compact node indices.

    ``src_idx`` / ``dst_idx`` are the *undirected* (already mirrored) edge
    endpoints as positions into the subgraph's sorted node universe of size
    ``count``.  Returns distances aligned with that universe
    (-1 = unreachable).
    """
    dist = np.full(count, -1, dtype=np.int64)
    dist[source_index] = 0
    if len(src_idx) == 0:
        return dist
    frontier = np.zeros(count, dtype=bool)
    frontier[source_index] = True
    for depth in range(1, max_hops + 1):
        reached = dst_idx[frontier[src_idx]]
        reached = reached[dist[reached] < 0]
        if reached.size == 0:
            break
        dist[reached] = depth
        frontier = np.zeros(count, dtype=bool)
        frontier[reached] = True
    return dist


_EMPTY_EDGES = np.empty((0, 3), dtype=np.int64)
_EMPTY_EDGES.setflags(write=False)


def _insert_sorted(nodes: np.ndarray, entity: int) -> np.ndarray:
    """Insert ``entity`` into the sorted id array ``nodes`` if absent."""
    position = int(nodes.searchsorted(entity))
    if position < nodes.size and nodes[position] == entity:
        return nodes
    return np.concatenate(
        [nodes[:position], np.asarray([entity], dtype=np.int64), nodes[position:]]
    )


def _extract_one_vectorized(
    graph: KnowledgeGraph,
    head: int,
    relation: int,
    tail: int,
    num_hops: int,
    kind: str,
) -> ExtractedSubgraph:
    neighbors_u = graph.khop_nodes(head, num_hops)
    neighbors_v = graph.khop_nodes(tail, num_hops)
    if kind == "enclosing":
        nodes = np.intersect1d(neighbors_u, neighbors_v, assume_unique=True)
    else:
        nodes = np.union1d(neighbors_u, neighbors_v)
    # The targets always belong to the node universe, even when outside the
    # intersection (khop frontiers always contain their own source, so at
    # most the *other* target can be missing from each frontier).
    nodes = _insert_sorted(nodes, head)
    if tail != head:
        nodes = _insert_sorted(nodes, tail)

    edge_ids = graph.induced_edge_id_array(nodes)
    edges = graph.triples.array[edge_ids]
    if len(edges):
        not_target = ~(
            (edges[:, 0] == head) & (edges[:, 1] == relation) & (edges[:, 2] == tail)
        )
        edges = edges[not_target]
    head_pos = int(nodes.searchsorted(head))
    tail_pos = int(nodes.searchsorted(tail))

    if len(edges) == 0:
        # Nothing survives the target-edge removal: only the targets stay
        # (enclosing and the disclosing isolated-entity prune agree here).
        entities = (head,) if head == tail else (min(head, tail), max(head, tail))
        return ExtractedSubgraph(
            head=head,
            relation=relation,
            tail=tail,
            entities=entities,
            triples=TripleSet.from_trusted_array(_EMPTY_EDGES),
            num_hops=num_hops,
            distances_u={head: 0},
            distances_v={tail: 0},
        )

    # Compact endpoint indices into ``nodes``, mirrored for undirected BFS.
    count = nodes.size
    num_edges = len(edges)
    endpoint_idx = nodes.searchsorted(
        np.concatenate([edges[:, 0], edges[:, 2]])
    )
    head_idx = endpoint_idx[:num_edges]
    tail_idx = endpoint_idx[num_edges:]
    src_idx = endpoint_idx
    dst_idx = np.concatenate([tail_idx, head_idx])

    dist_u = _masked_bfs_distances(count, src_idx, dst_idx, head_pos, num_hops)
    dist_v = _masked_bfs_distances(count, src_idx, dst_idx, tail_pos, num_hops)

    if kind == "enclosing":
        kept_mask = (dist_u >= 0) & (dist_v >= 0)
    else:
        # Disclosing keeps union entities that still touch a surviving edge;
        # anything isolated by the target-edge removal is pruned.
        kept_mask = np.zeros(count, dtype=bool)
        kept_mask[endpoint_idx] = True
    # The targets always stay.
    kept_mask[head_pos] = True
    kept_mask[tail_pos] = True
    kept = nodes[kept_mask]

    if kind == "enclosing" and kept.size < count:
        edges = edges[kept_mask[head_idx] & kept_mask[tail_idx]]

    reachable = kept_mask & (dist_u >= 0)
    distances_u = dict(zip(nodes[reachable].tolist(), dist_u[reachable].tolist()))
    reachable = kept_mask & (dist_v >= 0)
    distances_v = dict(zip(nodes[reachable].tolist(), dist_v[reachable].tolist()))

    return ExtractedSubgraph(
        head=head,
        relation=relation,
        tail=tail,
        entities=tuple(kept.tolist()),
        triples=TripleSet.from_trusted_array(edges),
        num_hops=num_hops,
        distances_u=distances_u,
        distances_v=distances_v,
    )


def extract_subgraphs_many(
    graph: KnowledgeGraph,
    triples: Iterable[Triple],
    num_hops: int = 2,
    kind: str = "enclosing",
) -> List[ExtractedSubgraph]:
    """Batched subgraph extraction over the graph's CSR adjacency.

    Extracts one subgraph per target triple, sharing per-entity K-hop
    frontiers across the batch through the graph's
    :class:`~repro.kg.graph.NeighborhoodCache` — the evaluation protocol's
    candidate lists (truth + 49 corruptions, all sharing the uncorrupted
    head or tail) therefore run each distinct BFS once instead of ~50 times.

    Parameters
    ----------
    graph:
        The context graph (its ``neighborhood_cache_size`` constructor knob
        bounds the frontier LRU; 0 disables caching).
    triples:
        Target triples ``(u, r_t, v)``; they need not be facts of ``graph``.
    num_hops:
        K, the extraction radius.
    kind:
        ``"enclosing"`` (intersection semantics, §III-B) or
        ``"disclosing"`` (union semantics, §III-F).
    """
    if kind not in ("enclosing", "disclosing"):
        raise ValueError(f"unknown subgraph kind: {kind!r}")
    with span("prepare.extract"):
        subgraphs = [
            _extract_one_vectorized(
                graph, int(t[0]), int(t[1]), int(t[2]), num_hops, kind
            )
            for t in triples
        ]
    get_registry().counter("prepare.subgraphs").inc(len(subgraphs))
    return subgraphs


def extract_enclosing_subgraph(
    graph: KnowledgeGraph,
    target: Triple,
    num_hops: int = 2,
) -> ExtractedSubgraph:
    """Extract the K-hop enclosing subgraph of ``target`` from ``graph``.

    Thin wrapper over :func:`extract_subgraphs_many`; results are identical
    to :func:`legacy_extract_enclosing_subgraph`.
    """
    return extract_subgraphs_many(graph, [target], num_hops, kind="enclosing")[0]


def extract_disclosing_subgraph(
    graph: KnowledgeGraph,
    target: Triple,
    num_hops: int = 2,
) -> ExtractedSubgraph:
    """Extract the K-hop disclosing subgraph (union of neighbor sets).

    Thin wrapper over :func:`extract_subgraphs_many`; results are identical
    to :func:`legacy_extract_disclosing_subgraph`.
    """
    return extract_subgraphs_many(graph, [target], num_hops, kind="disclosing")[0]


# ======================================================================
# Legacy pure-Python reference path
# ======================================================================

def _legacy_khop_distances(
    graph: KnowledgeGraph, source: int, max_hops: int
) -> Dict[int, int]:
    """Pure-Python BFS over incident-edge lists (the original hot path)."""
    distances: Dict[int, int] = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if depth >= max_hops:
            continue
        for edge_index in graph.incident_edges(node):
            head, _rel, tail = graph.triples[edge_index]
            for neighbor in (head, tail):
                if neighbor not in distances:
                    distances[neighbor] = depth + 1
                    frontier.append(neighbor)
    return distances


def _legacy_induced_triples(graph: KnowledgeGraph, entities: Set[int]) -> TripleSet:
    picked: List[int] = []
    seen: Set[int] = set()
    for entity in entities:
        for edge_index in graph.incident_edges(entity):
            if edge_index in seen:
                continue
            head, _rel, tail = graph.triples[edge_index]
            if head in entities and tail in entities:
                seen.add(edge_index)
                picked.append(edge_index)
    picked.sort()
    return TripleSet(graph.triples[i] for i in picked)


def _internal_distances(
    triples: TripleSet, source: int, max_hops: int
) -> Dict[int, int]:
    """BFS distances over the (undirected) extracted edge set."""
    adjacency: Dict[int, Set[int]] = {}
    for head, _rel, tail in triples:
        adjacency.setdefault(head, set()).add(tail)
        adjacency.setdefault(tail, set()).add(head)
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if depth >= max_hops:
            continue
        for neighbor in adjacency.get(node, ()):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def _drop_target_edges(triples: TripleSet, target: Triple) -> TripleSet:
    head, relation, tail = target
    return triples.filter(lambda t: t != (head, relation, tail))


def legacy_extract_enclosing_subgraph(
    graph: KnowledgeGraph,
    target: Triple,
    num_hops: int = 2,
) -> ExtractedSubgraph:
    """Reference pure-Python enclosing extraction (dict/set BFS)."""
    head, relation, tail = (int(x) for x in target)
    neighbors_u = set(_legacy_khop_distances(graph, head, num_hops))
    neighbors_v = set(_legacy_khop_distances(graph, tail, num_hops))
    common = neighbors_u & neighbors_v
    common.add(head)
    common.add(tail)

    induced = _legacy_induced_triples(graph, common)
    induced = _drop_target_edges(induced, (head, relation, tail))

    # Prune: keep entities reachable within K hops of BOTH targets in the
    # induced (target-edge-free) subgraph; the targets themselves always stay.
    distances_u = _internal_distances(induced, head, num_hops)
    distances_v = _internal_distances(induced, tail, num_hops)
    kept = {
        entity
        for entity in common
        if entity in distances_u and entity in distances_v
    }
    kept.add(head)
    kept.add(tail)
    final_triples = induced.filter(lambda t: t[0] in kept and t[2] in kept)
    distances_u = {e: d for e, d in distances_u.items() if e in kept}
    distances_v = {e: d for e, d in distances_v.items() if e in kept}

    return ExtractedSubgraph(
        head=head,
        relation=relation,
        tail=tail,
        entities=tuple(sorted(kept)),
        triples=final_triples,
        num_hops=num_hops,
        distances_u=distances_u,
        distances_v=distances_v,
    )


def legacy_extract_disclosing_subgraph(
    graph: KnowledgeGraph,
    target: Triple,
    num_hops: int = 2,
) -> ExtractedSubgraph:
    """Reference pure-Python disclosing extraction (dict/set BFS)."""
    head, relation, tail = (int(x) for x in target)
    union = set(_legacy_khop_distances(graph, head, num_hops)) | set(
        _legacy_khop_distances(graph, tail, num_hops)
    )
    union.add(head)
    union.add(tail)
    induced = _legacy_induced_triples(graph, union)
    induced = _drop_target_edges(induced, (head, relation, tail))
    # Prune union entities isolated by the target-edge removal (no surviving
    # incident edge); the targets always stay.
    touched: Set[int] = set()
    for h, _r, t in induced:
        touched.add(h)
        touched.add(t)
    kept = (union & touched) | {head, tail}
    distances_u = _internal_distances(induced, head, num_hops)
    distances_v = _internal_distances(induced, tail, num_hops)
    distances_u = {e: d for e, d in distances_u.items() if e in kept}
    distances_v = {e: d for e, d in distances_v.items() if e in kept}
    return ExtractedSubgraph(
        head=head,
        relation=relation,
        tail=tail,
        entities=tuple(sorted(kept)),
        triples=induced,
        num_hops=num_hops,
        distances_u=distances_u,
        distances_v=distances_v,
    )
