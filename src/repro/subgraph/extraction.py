"""K-hop enclosing and disclosing subgraph extraction (paper §III-B, §III-F).

Given a target triple ``(u, r_t, v)``:

* the **enclosing** subgraph is induced by ``N_K(u) ∩ N_K(v)`` — entities
  within K undirected hops of *both* target entities — followed by pruning
  of nodes that are isolated or farther than K from either target inside
  the induced graph;
* the **disclosing** subgraph is induced by ``N_K(u) ∪ N_K(v)`` and is used
  to rescue triples whose enclosing subgraph is empty (§III-F).

The target edge itself (every copy of ``(u, r, v)`` with the target
relation) is removed from the extracted edge set so the model cannot read
off the answer — the standard GraIL protocol.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple, TripleSet


@dataclass(frozen=True)
class ExtractedSubgraph:
    """A subgraph around a target triple, in entity view.

    ``triples`` never contains the target triple itself.  ``distances_u`` /
    ``distances_v`` are shortest-path distances *inside the extracted
    subgraph* (used for GraIL's double-radius labels); unreachable entities
    are absent from the dicts.
    """

    head: int
    relation: int
    tail: int
    entities: Tuple[int, ...]
    triples: TripleSet
    num_hops: int
    distances_u: Dict[int, int] = field(default_factory=dict)
    distances_v: Dict[int, int] = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        """True when no edge survives extraction (the §III-F failure case)."""
        return len(self.triples) == 0

    def target(self) -> Triple:
        return (self.head, self.relation, self.tail)


def _internal_distances(
    triples: TripleSet, source: int, max_hops: int
) -> Dict[int, int]:
    """BFS distances over the (undirected) extracted edge set."""
    adjacency: Dict[int, Set[int]] = {}
    for head, _rel, tail in triples:
        adjacency.setdefault(head, set()).add(tail)
        adjacency.setdefault(tail, set()).add(head)
    distances = {source: 0}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        depth = distances[node]
        if depth >= max_hops:
            continue
        for neighbor in adjacency.get(node, ()):
            if neighbor not in distances:
                distances[neighbor] = depth + 1
                frontier.append(neighbor)
    return distances


def _drop_target_edges(triples: TripleSet, target: Triple) -> TripleSet:
    head, relation, tail = target
    return triples.filter(lambda t: t != (head, relation, tail))


def extract_enclosing_subgraph(
    graph: KnowledgeGraph,
    target: Triple,
    num_hops: int = 2,
) -> ExtractedSubgraph:
    """Extract the K-hop enclosing subgraph of ``target`` from ``graph``."""
    head, relation, tail = (int(x) for x in target)
    neighbors_u = graph.khop_neighbors(head, num_hops)
    neighbors_v = graph.khop_neighbors(tail, num_hops)
    common = neighbors_u & neighbors_v
    common.add(head)
    common.add(tail)

    induced = graph.induced_subgraph_triples(common)
    induced = _drop_target_edges(induced, (head, relation, tail))

    # Prune: keep entities reachable within K hops of BOTH targets in the
    # induced (target-edge-free) subgraph; the targets themselves always stay.
    distances_u = _internal_distances(induced, head, num_hops)
    distances_v = _internal_distances(induced, tail, num_hops)
    kept = {
        entity
        for entity in common
        if entity in distances_u and entity in distances_v
    }
    kept.add(head)
    kept.add(tail)
    final_triples = induced.filter(lambda t: t[0] in kept and t[2] in kept)
    distances_u = {e: d for e, d in distances_u.items() if e in kept}
    distances_v = {e: d for e, d in distances_v.items() if e in kept}

    return ExtractedSubgraph(
        head=head,
        relation=relation,
        tail=tail,
        entities=tuple(sorted(kept)),
        triples=final_triples,
        num_hops=num_hops,
        distances_u=distances_u,
        distances_v=distances_v,
    )


def extract_disclosing_subgraph(
    graph: KnowledgeGraph,
    target: Triple,
    num_hops: int = 2,
) -> ExtractedSubgraph:
    """Extract the K-hop disclosing subgraph (union of neighbor sets)."""
    head, relation, tail = (int(x) for x in target)
    union = graph.khop_neighbors(head, num_hops) | graph.khop_neighbors(tail, num_hops)
    union.add(head)
    union.add(tail)
    induced = graph.induced_subgraph_triples(union)
    induced = _drop_target_edges(induced, (head, relation, tail))
    distances_u = _internal_distances(induced, head, num_hops)
    distances_v = _internal_distances(induced, tail, num_hops)
    return ExtractedSubgraph(
        head=head,
        relation=relation,
        tail=tail,
        entities=tuple(sorted(union)),
        triples=induced,
        num_hops=num_hops,
        distances_u=distances_u,
        distances_v=distances_v,
    )
