"""Target-relation-guided graph pruning (paper Algorithm 1, §III-C).

The relation-view graph R(G) is denser than the entity view, so updating
every node at every layer is wasteful.  Algorithm 1 instead:

1. BFS-samples the target node's *incoming* neighborhood up to depth K,
   producing hop numbers ``hop[n] in {0..K}`` (hop 0 = the target itself);
   nodes farther than K hops are discarded entirely;
2. at GNN layer ``k`` (1-based), updates only nodes with ``hop <= K - k``,
   aggregating from their incoming neighbors (which live at hop <= K-k+1 and
   were updated at layer k-1) — a shrinking frontier that ends with just the
   target node at the last layer.

:func:`build_message_plan` precomputes, per layer, the destination node set
and the edge rows to aggregate, so the model's forward pass is a sequence of
vectorised gather/scatter operations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.subgraph.linegraph import RelationalGraph


@dataclass(frozen=True)
class LayerPlan:
    """Work for one message-passing layer.

    ``edges`` are ``(src, type, dst)`` rows (indices into the *pruned* node
    list); ``update_nodes`` are the pruned-node indices recomputed this
    layer.  Destination nodes with no incoming edges keep only their
    residual/self contribution.
    """

    edges: np.ndarray
    update_nodes: np.ndarray


@dataclass(frozen=True)
class MessagePlan:
    """The full K-layer pruned message-passing schedule.

    Attributes
    ----------
    node_ids:
        Original relational-graph node ids of the pruned nodes (position =
        pruned index).
    node_relations:
        Relation id per pruned node.
    hops:
        BFS hop number per pruned node (0 = target).
    target_index:
        Pruned index of the target node (always 0).
    layers:
        One :class:`LayerPlan` per GNN layer, k = 1..K.
    """

    node_ids: np.ndarray
    node_relations: np.ndarray
    hops: np.ndarray
    target_index: int
    layers: Tuple[LayerPlan, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def total_updates(self) -> int:
        """Number of node updates across all layers (the pruning-efficiency
        metric benchmarked against full-graph message passing)."""
        return int(sum(len(layer.update_nodes) for layer in self.layers))


def incoming_hops(graph: RelationalGraph, max_hops: int) -> Dict[int, int]:
    """BFS hop numbers from the target along *reversed* incoming edges.

    ``hop[n] = h`` means a directed path ``n -> ... -> target`` of length h
    exists, i.e. n's features can reach the target within h layers.
    """
    incoming_of: Dict[int, List[int]] = {}
    for src, _etype, dst in graph.edges:
        incoming_of.setdefault(int(dst), []).append(int(src))
    hops = {graph.target_node: 0}
    frontier = deque([graph.target_node])
    while frontier:
        node = frontier.popleft()
        depth = hops[node]
        if depth >= max_hops:
            continue
        for src in incoming_of.get(node, ()):
            if src not in hops:
                hops[src] = depth + 1
                frontier.append(src)
    return hops


def build_message_plan(graph: RelationalGraph, num_layers: int) -> MessagePlan:
    """Compile Algorithm 1 for ``graph`` with ``num_layers`` GNN layers."""
    hops = incoming_hops(graph, num_layers)
    kept = sorted(hops, key=lambda n: (hops[n], n))
    # Target first (hop 0 sorts first and the target is the unique hop-0 node).
    pruned_index = {node: i for i, node in enumerate(kept)}
    node_ids = np.asarray(kept, dtype=np.int64)
    node_relations = graph.node_relations[node_ids]
    hop_array = np.asarray([hops[n] for n in kept], dtype=np.int64)

    # Reindex edges into pruned space; drop edges touching discarded nodes.
    rows: List[Tuple[int, int, int]] = []
    for src, etype, dst in graph.edges:
        src_i = pruned_index.get(int(src))
        dst_i = pruned_index.get(int(dst))
        if src_i is None or dst_i is None:
            continue
        rows.append((src_i, int(etype), dst_i))
    all_edges = (
        np.asarray(sorted(rows), dtype=np.int64)
        if rows
        else np.empty((0, 3), dtype=np.int64)
    )

    layers: List[LayerPlan] = []
    for k in range(1, num_layers + 1):
        budget = num_layers - k
        update_mask = hop_array <= budget
        update_nodes = np.nonzero(update_mask)[0].astype(np.int64)
        if len(all_edges):
            edge_mask = update_mask[all_edges[:, 2]]
            layer_edges = all_edges[edge_mask]
        else:
            layer_edges = all_edges
        layers.append(LayerPlan(edges=layer_edges, update_nodes=update_nodes))

    return MessagePlan(
        node_ids=node_ids,
        node_relations=node_relations,
        hops=hop_array,
        target_index=0,
        layers=tuple(layers),
    )


def full_graph_plan(graph: RelationalGraph, num_layers: int) -> MessagePlan:
    """The unpruned alternative: every node updates at every layer.

    Used by the pruning-efficiency ablation benchmark to quantify the
    savings Algorithm 1 delivers.
    """
    num_nodes = graph.num_nodes
    node_ids = np.arange(num_nodes, dtype=np.int64)
    update_nodes = node_ids.copy()
    layer = LayerPlan(edges=graph.edges, update_nodes=update_nodes)
    hops = incoming_hops(graph, num_layers)
    hop_array = np.asarray(
        [hops.get(int(n), num_layers + 1) for n in node_ids], dtype=np.int64
    )
    return MessagePlan(
        node_ids=node_ids,
        node_relations=graph.node_relations.copy(),
        hops=hop_array,
        target_index=graph.target_node,
        layers=tuple(layer for _ in range(num_layers)),
    )
