"""Target-relation-guided graph pruning (paper Algorithm 1, §III-C).

The relation-view graph R(G) is denser than the entity view, so updating
every node at every layer is wasteful.  Algorithm 1 instead:

1. BFS-samples the target node's *incoming* neighborhood up to depth K,
   producing hop numbers ``hop[n] in {0..K}`` (hop 0 = the target itself);
   nodes farther than K hops are discarded entirely;
2. at GNN layer ``k`` (1-based), updates only nodes with ``hop <= K - k``,
   aggregating from their incoming neighbors (which live at hop <= K-k+1 and
   were updated at layer k-1) — a shrinking frontier that ends with just the
   target node at the last layer.

:func:`build_message_plan` precomputes, per layer, the destination node set
and the edge rows to aggregate, so the model's forward pass is a sequence of
vectorised gather/scatter operations.

Two implementations coexist (mirroring the extraction and line-graph
modules):

* the **vectorized compiler** (:func:`build_message_plans_many`, also
  behind :func:`build_message_plan`) runs boolean-mask BFS over the
  relational graph's CSR incoming-edge index and reindexes the pruned
  space with array inverse-permutation lookups; a batch of graphs is
  compiled in shared numpy passes over their disjoint union (one
  multi-source BFS covers every graph at once);
* the **legacy reference path** (:func:`legacy_build_message_plan` /
  :func:`legacy_incoming_hops`) is the original dict-based BFS plus
  per-edge Python reindexing loop, kept as an executable specification for
  the equivalence property suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.subgraph.linegraph import RelationalGraph


@dataclass(frozen=True)
class LayerPlan:
    """Work for one message-passing layer.

    ``edges`` are ``(src, type, dst)`` rows (indices into the *pruned* node
    list); ``update_nodes`` are the pruned-node indices recomputed this
    layer.  Destination nodes with no incoming edges keep only their
    residual/self contribution.
    """

    edges: np.ndarray
    update_nodes: np.ndarray


@dataclass(frozen=True)
class MessagePlan:
    """The full K-layer pruned message-passing schedule.

    Attributes
    ----------
    node_ids:
        Original relational-graph node ids of the pruned nodes (position =
        pruned index).
    node_relations:
        Relation id per pruned node.
    hops:
        BFS hop number per pruned node (0 = target).
    target_index:
        Pruned index of the target node (always 0).
    layers:
        One :class:`LayerPlan` per GNN layer, k = 1..K.
    """

    node_ids: np.ndarray
    node_relations: np.ndarray
    hops: np.ndarray
    target_index: int
    layers: Tuple[LayerPlan, ...]

    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    def total_updates(self) -> int:
        """Number of node updates across all layers (the pruning-efficiency
        metric benchmarked against full-graph message passing)."""
        return int(sum(len(layer.update_nodes) for layer in self.layers))


# ======================================================================
# Vectorized compiler
# ======================================================================

def _csr_gather(
    indptr: np.ndarray, values: np.ndarray, nodes: np.ndarray
) -> np.ndarray:
    """Concatenate ``values[indptr[n]:indptr[n+1]]`` over ``nodes``."""
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=values.dtype)
    ends = np.cumsum(counts)
    flat = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (ends - counts), counts
    )
    return values[flat]


def _incoming_bfs(
    num_nodes: int,
    indptr: np.ndarray,
    sources: np.ndarray,
    seeds: np.ndarray,
    max_hops: int,
) -> np.ndarray:
    """Boolean-mask BFS from ``seeds`` along reversed incoming edges.

    ``indptr``/``sources`` form a CSR keyed on edge destination whose
    values are the edge *source* nodes.  Returns per-node hop numbers
    (-1 = beyond ``max_hops``).  With several seeds (one per graph of a
    disjoint union) the BFS advances every component simultaneously.
    """
    dist = np.full(num_nodes, -1, dtype=np.int64)
    dist[seeds] = 0
    frontier = seeds
    for depth in range(1, max_hops + 1):
        if frontier.size == 0:
            break
        reached = _csr_gather(indptr, sources, frontier)
        reached = reached[dist[reached] < 0]
        if reached.size == 0:
            break
        reached = np.unique(reached)
        dist[reached] = depth
        frontier = reached
    return dist


def incoming_hops(graph: RelationalGraph, max_hops: int) -> Dict[int, int]:
    """BFS hop numbers from the target along *reversed* incoming edges.

    ``hop[n] = h`` means a directed path ``n -> ... -> target`` of length h
    exists, i.e. n's features can reach the target within h layers.  Runs
    the array BFS over the graph's lazily-built CSR incoming-edge index
    (see :meth:`RelationalGraph.incoming_index`); only reached nodes appear
    in the returned dict, matching :func:`legacy_incoming_hops`.
    """
    indptr, order = graph.incoming_index()
    sources = (
        graph.edges[order, 0] if graph.num_edges else np.empty(0, dtype=np.int64)
    )
    dist = _incoming_bfs(
        graph.num_nodes,
        indptr,
        sources,
        np.asarray([graph.target_node], dtype=np.int64),
        max_hops,
    )
    reached = np.flatnonzero(dist >= 0)
    return dict(zip(reached.tolist(), dist[reached].tolist()))


def _layer_plans(
    hop_array: np.ndarray, all_edges: np.ndarray, num_layers: int
) -> Tuple[LayerPlan, ...]:
    """The shrinking per-layer schedules for one pruned graph."""
    layers: List[LayerPlan] = []
    for k in range(1, num_layers + 1):
        budget = num_layers - k
        update_mask = hop_array <= budget
        update_nodes = np.flatnonzero(update_mask).astype(np.int64)
        if len(all_edges):
            layer_edges = all_edges[update_mask[all_edges[:, 2]]]
        else:
            layer_edges = all_edges
        layers.append(LayerPlan(edges=layer_edges, update_nodes=update_nodes))
    return tuple(layers)


def build_message_plans_many(
    graphs: Sequence[RelationalGraph], num_layers: int
) -> List[MessagePlan]:
    """Compile Algorithm 1 for a batch of relational graphs at once.

    The graphs are laid out as a disjoint union (node ids offset per
    graph); one multi-source boolean-mask BFS prunes every graph's
    neighborhood simultaneously, and the pruned-space reindexing is a
    single inverse-permutation gather over the union's edges.  Output
    plans are identical to per-graph :func:`legacy_build_message_plan`.
    """
    graphs = list(graphs)
    if not graphs:
        return []
    num_graphs = len(graphs)
    node_counts = np.asarray([g.num_nodes for g in graphs], dtype=np.int64)
    offsets = np.zeros(num_graphs + 1, dtype=np.int64)
    np.cumsum(node_counts, out=offsets[1:])
    total_nodes = int(offsets[-1])

    edge_counts = np.asarray([g.num_edges for g in graphs], dtype=np.int64)
    if int(edge_counts.sum()):
        stacked = np.concatenate([g.edges for g in graphs if g.num_edges])
        edge_shift = np.repeat(offsets[:-1], edge_counts)
        src = stacked[:, 0] + edge_shift
        etype = stacked[:, 1]
        dst = stacked[:, 2] + edge_shift
        edge_graph = np.repeat(np.arange(num_graphs, dtype=np.int64), edge_counts)
    else:
        src = etype = dst = np.empty(0, dtype=np.int64)
        edge_graph = np.empty(0, dtype=np.int64)

    # Union-wide CSR incoming index (keyed on destination, values = sources).
    in_order = np.argsort(dst, kind="stable")
    in_sources = src[in_order]
    indptr = np.zeros(total_nodes + 1, dtype=np.int64)
    if dst.size:
        np.cumsum(np.bincount(dst, minlength=total_nodes), out=indptr[1:])

    seeds = offsets[:-1] + np.asarray(
        [g.target_node for g in graphs], dtype=np.int64
    )
    dist = _incoming_bfs(total_nodes, indptr, in_sources, seeds, num_layers)

    # Pruned node order: per graph, by (hop, original node id).  Kept node
    # ids are ascending, so graph-major lexsort yields each graph's block in
    # exactly the legacy ``sorted(hops, key=(hop, node))`` order.
    kept = np.flatnonzero(dist >= 0)
    kept_hops = dist[kept]
    kept_graph = np.searchsorted(offsets, kept, side="right") - 1
    order = np.lexsort((kept, kept_hops, kept_graph))
    kept = kept[order]
    kept_hops = kept_hops[order]
    kept_graph = kept_graph[order]
    kept_counts = np.bincount(kept_graph, minlength=num_graphs)
    kept_offsets = np.zeros(num_graphs + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=kept_offsets[1:])
    pruned_local = np.arange(len(kept), dtype=np.int64) - kept_offsets[kept_graph]
    inverse = np.full(total_nodes, -1, dtype=np.int64)
    inverse[kept] = pruned_local

    # Reindex the union's edges into per-graph pruned space; drop edges
    # touching discarded nodes; sort per graph by (src, etype, dst).
    if src.size:
        src_p = inverse[src]
        dst_p = inverse[dst]
        survives = (src_p >= 0) & (dst_p >= 0)
        src_p = src_p[survives]
        etype_p = etype[survives]
        dst_p = dst_p[survives]
        graph_p = edge_graph[survives]
        edge_order = np.lexsort((dst_p, etype_p, src_p, graph_p))
        rows = np.column_stack(
            [src_p[edge_order], etype_p[edge_order], dst_p[edge_order]]
        )
        edge_bounds = np.searchsorted(graph_p[edge_order], np.arange(num_graphs + 1))
    else:
        rows = np.empty((0, 3), dtype=np.int64)
        edge_bounds = np.zeros(num_graphs + 1, dtype=np.int64)

    plans: List[MessagePlan] = []
    for i, graph in enumerate(graphs):
        lo, hi = int(kept_offsets[i]), int(kept_offsets[i + 1])
        node_ids = kept[lo:hi] - offsets[i]
        hop_array = kept_hops[lo:hi]
        all_edges = rows[int(edge_bounds[i]) : int(edge_bounds[i + 1])]
        plans.append(
            MessagePlan(
                node_ids=node_ids,
                node_relations=graph.node_relations[node_ids],
                hops=hop_array,
                target_index=0,
                layers=_layer_plans(hop_array, all_edges, num_layers),
            )
        )
    return plans


def build_message_plan(graph: RelationalGraph, num_layers: int) -> MessagePlan:
    """Compile Algorithm 1 for ``graph`` with ``num_layers`` GNN layers.

    Thin wrapper over :func:`build_message_plans_many`; results are
    identical to :func:`legacy_build_message_plan`.
    """
    return build_message_plans_many([graph], num_layers)[0]


# ======================================================================
# Legacy pure-Python reference path
# ======================================================================

def legacy_incoming_hops(graph: RelationalGraph, max_hops: int) -> Dict[int, int]:
    """Reference dict-based BFS over per-edge incoming lists."""
    incoming_of: Dict[int, List[int]] = {}
    for src, _etype, dst in graph.edges:
        incoming_of.setdefault(int(dst), []).append(int(src))
    hops = {graph.target_node: 0}
    frontier = deque([graph.target_node])
    while frontier:
        node = frontier.popleft()
        depth = hops[node]
        if depth >= max_hops:
            continue
        for src in incoming_of.get(node, ()):
            if src not in hops:
                hops[src] = depth + 1
                frontier.append(src)
    return hops


def legacy_build_message_plan(
    graph: RelationalGraph, num_layers: int
) -> MessagePlan:
    """Reference pure-Python plan compiler (dict BFS + per-edge reindex)."""
    hops = legacy_incoming_hops(graph, num_layers)
    kept = sorted(hops, key=lambda n: (hops[n], n))
    # Target first (hop 0 sorts first and the target is the unique hop-0 node).
    pruned_index = {node: i for i, node in enumerate(kept)}
    node_ids = np.asarray(kept, dtype=np.int64)
    node_relations = graph.node_relations[node_ids]
    hop_array = np.asarray([hops[n] for n in kept], dtype=np.int64)

    # Reindex edges into pruned space; drop edges touching discarded nodes.
    rows: List[Tuple[int, int, int]] = []
    for src, etype, dst in graph.edges:
        src_i = pruned_index.get(int(src))
        dst_i = pruned_index.get(int(dst))
        if src_i is None or dst_i is None:
            continue
        rows.append((src_i, int(etype), dst_i))
    all_edges = (
        np.asarray(sorted(rows), dtype=np.int64)
        if rows
        else np.empty((0, 3), dtype=np.int64)
    )

    layers: List[LayerPlan] = []
    for k in range(1, num_layers + 1):
        budget = num_layers - k
        update_mask = hop_array <= budget
        update_nodes = np.nonzero(update_mask)[0].astype(np.int64)
        if len(all_edges):
            edge_mask = update_mask[all_edges[:, 2]]
            layer_edges = all_edges[edge_mask]
        else:
            layer_edges = all_edges
        layers.append(LayerPlan(edges=layer_edges, update_nodes=update_nodes))

    return MessagePlan(
        node_ids=node_ids,
        node_relations=node_relations,
        hops=hop_array,
        target_index=0,
        layers=tuple(layers),
    )


def full_graph_plan(graph: RelationalGraph, num_layers: int) -> MessagePlan:
    """The unpruned alternative: every node updates at every layer.

    Used by the pruning-efficiency ablation benchmark to quantify the
    savings Algorithm 1 delivers.
    """
    num_nodes = graph.num_nodes
    node_ids = np.arange(num_nodes, dtype=np.int64)
    update_nodes = node_ids.copy()
    layer = LayerPlan(edges=graph.edges, update_nodes=update_nodes)
    hops = incoming_hops(graph, num_layers)
    hop_array = np.asarray(
        [hops.get(int(n), num_layers + 1) for n in node_ids], dtype=np.int64
    )
    return MessagePlan(
        node_ids=node_ids,
        node_relations=graph.node_relations.copy(),
        hops=hop_array,
        target_index=graph.target_node,
        layers=tuple(layer for _ in range(num_layers)),
    )
