"""`repro.subgraph` — subgraph extraction and relation-view transformation.

The substrate shared by RMPI and all subgraph-reasoning baselines:
K-hop enclosing/disclosing extraction, GraIL's double-radius labeling,
the line-graph (relation-view) transformation with six connection-pattern
edge types, and Algorithm 1's target-relation-guided pruning.
"""

from repro.subgraph.extraction import (
    ExtractedSubgraph,
    extract_disclosing_subgraph,
    extract_enclosing_subgraph,
    extract_subgraphs_many,
    legacy_extract_disclosing_subgraph,
    legacy_extract_enclosing_subgraph,
)
from repro.subgraph.labeling import encode_labels, label_feature_dim, node_labels
from repro.subgraph.linegraph import (
    EDGE_TYPE_NAMES,
    NUM_EDGE_TYPES,
    RelationalGraph,
    build_relational_graph,
    build_relational_graphs_many,
    connection_types,
    legacy_build_relational_graph,
    target_one_hop_relations,
)
from repro.subgraph.pruning import (
    LayerPlan,
    MessagePlan,
    build_message_plan,
    build_message_plans_many,
    full_graph_plan,
    incoming_hops,
    legacy_build_message_plan,
    legacy_incoming_hops,
)

__all__ = [
    "ExtractedSubgraph",
    "extract_enclosing_subgraph",
    "extract_disclosing_subgraph",
    "extract_subgraphs_many",
    "legacy_extract_enclosing_subgraph",
    "legacy_extract_disclosing_subgraph",
    "node_labels",
    "encode_labels",
    "label_feature_dim",
    "RelationalGraph",
    "build_relational_graph",
    "build_relational_graphs_many",
    "legacy_build_relational_graph",
    "connection_types",
    "target_one_hop_relations",
    "NUM_EDGE_TYPES",
    "EDGE_TYPE_NAMES",
    "LayerPlan",
    "MessagePlan",
    "build_message_plan",
    "build_message_plans_many",
    "legacy_build_message_plan",
    "full_graph_plan",
    "incoming_hops",
    "legacy_incoming_hops",
]
