"""Double-radius entity labeling (GraIL's structural node features, §II-B).

Each entity ``i`` of an extracted subgraph is labeled ``(d(i, u), d(i, v))``
— its shortest distances to the target head/tail inside the subgraph — and
encoded as the concatenation of two one-hot vectors of size ``K + 1``.
Following the GraIL reference implementation, the targets themselves get the
conventional labels ``u -> (0, 1)`` and ``v -> (1, 0)``.

These labels are what make GraIL-style models entity-independent: two
isomorphic subgraphs over different entities get identical features.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.autograd.engine import get_default_dtype
from repro.subgraph.extraction import ExtractedSubgraph


def node_labels(subgraph: ExtractedSubgraph) -> Dict[int, Tuple[int, int]]:
    """Map each subgraph entity to its (d_u, d_v) label, clipped to K."""
    max_hops = subgraph.num_hops
    labels: Dict[int, Tuple[int, int]] = {}
    for entity in subgraph.entities:
        if entity == subgraph.head:
            labels[entity] = (0, 1)
            continue
        if entity == subgraph.tail:
            labels[entity] = (1, 0)
            continue
        d_u = subgraph.distances_u.get(entity, max_hops)
        d_v = subgraph.distances_v.get(entity, max_hops)
        labels[entity] = (min(d_u, max_hops), min(d_v, max_hops))
    return labels


def label_feature_dim(num_hops: int) -> int:
    """Feature size of the one-hot encoded double-radius label."""
    return 2 * (num_hops + 1)


def compressed_edge_arrays(
    subgraph: ExtractedSubgraph,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index-compress the subgraph's edges, appending the target edge last.

    Entities are sorted, so ``searchsorted`` maps endpoints to node indices
    in one shot.  Returns ``(edge_heads, edge_relations, edge_tails,
    head_index, tail_index)`` where the final row is the target edge (the
    GraIL-family models add it back so the two targets stay connected; its
    row index is ``len(subgraph.triples)``).
    """
    entities = np.asarray(subgraph.entities, dtype=np.int64)
    arr = subgraph.triples.array
    head_index = int(entities.searchsorted(subgraph.head))
    tail_index = int(entities.searchsorted(subgraph.tail))
    num_edges = len(arr)
    edge_heads = np.empty(num_edges + 1, dtype=np.int64)
    edge_relations = np.empty(num_edges + 1, dtype=np.int64)
    edge_tails = np.empty(num_edges + 1, dtype=np.int64)
    edge_heads[:num_edges] = entities.searchsorted(arr[:, 0])
    edge_relations[:num_edges] = arr[:, 1]
    edge_tails[:num_edges] = entities.searchsorted(arr[:, 2])
    edge_heads[num_edges] = head_index
    edge_relations[num_edges] = subgraph.relation
    edge_tails[num_edges] = tail_index
    return edge_heads, edge_relations, edge_tails, head_index, tail_index


def encode_labels(subgraph: ExtractedSubgraph) -> Tuple[np.ndarray, Dict[int, int]]:
    """One-hot encode labels for all subgraph entities.

    Returns ``(features, index)`` where ``features[index[entity]]`` is the
    ``2*(K+1)``-dim feature row of ``entity``.
    """
    labels = node_labels(subgraph)
    max_hops = subgraph.num_hops
    dim = label_feature_dim(max_hops)
    index = {entity: i for i, entity in enumerate(subgraph.entities)}
    # Engine dtype, not float64: these rows become Tensor inputs in the
    # GraIL/CoMPILE baselines and would silently promote every downstream
    # matmul (the PR 4 bug class RL001 encodes).
    features = np.zeros((len(subgraph.entities), dim), dtype=get_default_dtype())
    for entity, (d_u, d_v) in labels.items():
        row = index[entity]
        features[row, d_u] = 1.0
        features[row, (max_hops + 1) + d_v] = 1.0
    return features, index
