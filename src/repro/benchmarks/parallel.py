"""Workload ``parallel``: sharded prepare + parameter-broadcast A/B.

Two sections share one record:

* **prepare** — :class:`repro.parallel.prepare.ShardedPreparer` against
  the serial ``prepare_many`` path on the same candidate workload.  On
  boxes without enough usable CPUs the speedup is informational
  (fork+IPC overhead can exceed the win), so only the absolute times
  carry regression thresholds.
* **train backend A/B** — one data-parallel training run per parameter
  transport (``pickle`` vs ``shm``), same seed, same worker count.  The
  record archives both wall-clocks and the per-batch broadcast payload
  sizes; two invariants are asserted outright rather than thresholded:
  the two backends' checkpoints (and loss curves) must be **bitwise
  identical**, and the zero-copy stamp must shrink the per-batch
  broadcast by at least 100x.

``workers`` is an environment fact (``direction="fact"``): running on a
different worker count is a different experiment, never a regression.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Tuple

import numpy as np

from repro.benchmarks.records import MetricSpec
from repro.benchmarks.timing import best_of, timed
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import build_partial_benchmark, ranking_candidates
from repro.parallel.pool import fork_available, usable_cpus
from repro.parallel.prepare import ShardedPreparer
from repro.parallel.trainer import DataParallelTrainer
from repro.train.trainer import ParallelConfig, TrainingConfig
from repro.utils.seeding import seeded_rng

#: Floor asserted on the pickle→shm per-batch broadcast size reduction.
BROADCAST_REDUCTION_FLOOR = 100.0

SPECS: Dict[str, MetricSpec] = {
    "serial_s": MetricSpec("lower"),
    "parallel_s": MetricSpec("lower"),
    "speedup": MetricSpec("higher", threshold_pct=None),
    "workers": MetricSpec("fact", threshold_pct=None),
    "train_pickle_s": MetricSpec("lower", threshold_pct=None),
    "train_shm_s": MetricSpec("lower", threshold_pct=None),
    "train_speedup_shm": MetricSpec("higher", threshold_pct=None),
    "broadcast_pickle_bytes": MetricSpec("lower", threshold_pct=None),
    "broadcast_shm_bytes": MetricSpec("lower", threshold_pct=None),
    "broadcast_reduction": MetricSpec("higher", threshold_pct=None),
}


def _train_backend_ab(
    bench: Any, workers: int, smoke: bool
) -> Dict[str, float]:
    """One training run per transport backend; asserts bitwise parity and
    the zero-copy broadcast floor, returns the A/B metrics."""
    epochs = 1 if smoke else 2
    max_triples = 16 if smoke else 64

    def run_backend(backend: str) -> Tuple[float, Dict[str, np.ndarray], list]:
        model = RMPI(
            bench.num_relations,
            seeded_rng(7),
            RMPIConfig(embed_dim=16, dropout=0.0),
        )
        config = TrainingConfig(
            epochs=epochs,
            batch_size=8,
            seed=3,
            max_triples_per_epoch=max_triples,
            parallel=ParallelConfig(workers=workers, backend=backend),
        )
        trainer = DataParallelTrainer(
            model, bench.train_graph, bench.train_triples, config=config
        )
        elapsed, history = timed(trainer.fit, name="bench.parallel.train")
        return elapsed, model.state_dict(), list(history.losses)

    pickle_s, pickle_state, pickle_losses = run_backend("pickle")
    shm_s, shm_state, shm_losses = run_backend("shm")

    # Bitwise parity is a hard gate, not a thresholded metric: the two
    # backends run the same values through the same ops.
    if pickle_losses != shm_losses:
        raise RuntimeError(
            f"backend loss curves diverged: pickle={pickle_losses} "
            f"shm={shm_losses}"
        )
    for name, array in pickle_state.items():
        if not np.array_equal(array, shm_state[name]):
            raise RuntimeError(
                f"checkpoint parameter {name!r} differs between pickle and "
                "shm backends (expected bitwise identity)"
            )

    # Per-batch broadcast payloads, measured on the real dispatch shapes.
    proto = pickle.HIGHEST_PROTOCOL
    pickle_bytes = len(
        pickle.dumps({"backend": "pickle", "params": pickle_state}, protocol=proto)
    )
    shm_bytes = len(
        pickle.dumps({"backend": "shm", "param_version": 1}, protocol=proto)
    )
    reduction = pickle_bytes / shm_bytes
    if reduction < BROADCAST_REDUCTION_FLOOR:
        raise RuntimeError(
            f"zero-copy broadcast reduction {reduction:.1f}x is below the "
            f"{BROADCAST_REDUCTION_FLOOR:.0f}x floor "
            f"({pickle_bytes} -> {shm_bytes} bytes)"
        )
    return {
        "train_pickle_s": pickle_s,
        "train_shm_s": shm_s,
        "train_speedup_shm": pickle_s / shm_s if shm_s else 0.0,
        "broadcast_pickle_bytes": float(pickle_bytes),
        "broadcast_shm_bytes": float(shm_bytes),
        "broadcast_reduction": reduction,
    }


def run(smoke: bool) -> Tuple[Dict[str, float], Dict[str, Any]]:
    settings = bench_settings()
    num_queries, num_negatives, repeats = (2, 19, 1) if smoke else (8, 49, 3)
    workers = 2 if smoke else min(4, max(2, usable_cpus()))
    bench = build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool_entities = sorted(graph.triples.entities())
    queries = (
        list(bench.test_triples)[:num_queries]
        or list(bench.train_triples)[:num_queries]
    )
    workload = []
    for i, query in enumerate(queries):
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng,
                num_negatives=num_negatives,
                candidate_entities=pool_entities,
                corrupt_head=bool(i % 2),
            )
        )
    model = RMPI(
        bench.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16, dropout=0.0)
    )

    def serial() -> None:
        model.clear_cache()
        model.prepared_many(graph, workload)

    serial()  # warm frontier caches
    serial_s = best_of(repeats, serial)

    if fork_available():
        with ShardedPreparer(model, graph, workers=workers, seed=0) as preparer:

            def parallel() -> None:
                model.clear_cache()
                preparer.prepare_many(graph, workload)

            parallel()
            parallel_s = best_of(repeats, parallel)
    else:  # pragma: no cover - fork exists on every CI platform
        parallel_s = serial_s
        workers = 1

    metrics = {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "workers": float(workers),
    }
    metrics.update(_train_backend_ab(bench, workers, smoke))
    info = {
        "family": "FB15k-237",
        "scale": settings.scale,
        "samples": len(workload),
        "usable_cpus": usable_cpus(),
        "fork_available": fork_available(),
        "repeats": repeats,
        "broadcast_reduction_floor": BROADCAST_REDUCTION_FLOOR,
    }
    return metrics, info
