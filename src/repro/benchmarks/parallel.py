"""Workload ``parallel``: sharded subgraph preparation across workers.

Times :class:`repro.parallel.prepare.ShardedPreparer` against the serial
``prepare_many`` path on the same candidate workload.  On boxes without
enough usable CPUs the speedup is informational (fork+IPC overhead can
exceed the win), so only the absolute times carry regression thresholds;
metric parity between the two paths is asserted outright.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.benchmarks.records import MetricSpec
from repro.benchmarks.timing import best_of
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import build_partial_benchmark, ranking_candidates
from repro.parallel.pool import fork_available, usable_cpus
from repro.parallel.prepare import ShardedPreparer
from repro.utils.seeding import seeded_rng

SPECS: Dict[str, MetricSpec] = {
    "serial_s": MetricSpec("lower"),
    "parallel_s": MetricSpec("lower"),
    "speedup": MetricSpec("higher", threshold_pct=None),
    "workers": MetricSpec("higher", threshold_pct=None),
}


def run(smoke: bool) -> Tuple[Dict[str, float], Dict[str, Any]]:
    settings = bench_settings()
    num_queries, num_negatives, repeats = (2, 19, 1) if smoke else (8, 49, 3)
    workers = 2 if smoke else min(4, max(2, usable_cpus()))
    bench = build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool_entities = sorted(graph.triples.entities())
    queries = (
        list(bench.test_triples)[:num_queries]
        or list(bench.train_triples)[:num_queries]
    )
    workload = []
    for i, query in enumerate(queries):
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng,
                num_negatives=num_negatives,
                candidate_entities=pool_entities,
                corrupt_head=bool(i % 2),
            )
        )
    model = RMPI(
        bench.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16, dropout=0.0)
    )

    def serial() -> None:
        model.clear_cache()
        model.prepared_many(graph, workload)

    serial()  # warm frontier caches
    serial_s = best_of(repeats, serial)

    if fork_available():
        with ShardedPreparer(model, graph, workers=workers, seed=0) as preparer:

            def parallel() -> None:
                model.clear_cache()
                preparer.prepare_many(graph, workload)

            parallel()
            parallel_s = best_of(repeats, parallel)
    else:  # pragma: no cover - fork exists on every CI platform
        parallel_s = serial_s
        workers = 1

    metrics = {
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else 0.0,
        "workers": float(workers),
    }
    info = {
        "family": "FB15k-237",
        "scale": settings.scale,
        "samples": len(workload),
        "usable_cpus": usable_cpus(),
        "fork_available": fork_available(),
        "repeats": repeats,
    }
    return metrics, info
