"""Workload ``serving``: end-to-end HTTP serving under concurrent load.

Boots a real :class:`ServingServer` (threaded HTTP frontend, micro-batch
scheduler, score cache) on a generated benchmark's test graph, then runs
the :mod:`repro.benchmarks.loadgen` concurrency sweep against it.  The
headline metrics are the saturation throughput and the p50/p99 request
latency at the saturation level; the full sweep is archived alongside as
``BENCH_serving_load.json``.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.benchmarks.loadgen import run_load_sweep
from repro.benchmarks.records import MetricSpec
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import build_partial_benchmark
from repro.serve import ModelRegistry, ServingApp, ServingConfig, ServingServer
from repro.utils.seeding import seeded_rng

SPECS: Dict[str, MetricSpec] = {
    "saturation_qps": MetricSpec("higher"),
    "p50_ms": MetricSpec("lower"),
    "p99_ms": MetricSpec("lower", threshold_pct=50.0),
    "requests": MetricSpec("higher", threshold_pct=None),
}


def run(smoke: bool) -> Tuple[Dict[str, float], Dict[str, Any], Dict[str, Any]]:
    settings = bench_settings()
    if smoke:
        client_levels, requests_per_client = (1, 2), 8
    else:
        client_levels, requests_per_client = (1, 2, 4, 8), 25
    bench = build_partial_benchmark(
        "NELL-995", 1, scale=settings.scale, seed=settings.seed
    )
    model = RMPI(
        bench.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16, dropout=0.0)
    )
    registry = ModelRegistry()
    registry.register("rmpi", model, meta={"benchmark": bench.name})
    app = ServingApp(
        registry,
        bench.test_graph,
        ServingConfig(default_model="rmpi", max_wait_ms=1.0),
    )
    triples = list(bench.test_triples)[:32] or list(bench.train_triples)[:32]
    with ServingServer(app) as server:
        # Warm the sample caches so the sweep measures steady-state
        # serving, not first-touch subgraph extraction.
        warm = run_load_sweep(
            server.url, triples[:4], client_levels=(1,), requests_per_client=4
        )
        sweep = run_load_sweep(
            server.url,
            triples,
            client_levels=client_levels,
            requests_per_client=requests_per_client,
        )
    saturated = next(
        level for level in sweep.levels if level.clients == sweep.saturation_clients
    )
    errors = sum(level.errors for level in sweep.levels)
    if errors:
        raise RuntimeError(f"load sweep saw {errors} failed requests")
    metrics = {
        "saturation_qps": sweep.saturation_qps,
        "p50_ms": saturated.p50_ms,
        "p99_ms": saturated.p99_ms,
        "requests": float(sum(level.requests for level in sweep.levels)),
    }
    info = {
        "family": "NELL-995",
        "scale": settings.scale,
        "client_levels": list(client_levels),
        "requests_per_client": requests_per_client,
        "saturation_clients": sweep.saturation_clients,
        "warmup_requests": sum(level.requests for level in warm.levels),
    }
    extras = {"BENCH_serving_load.json": {"workload_info": info, **sweep.as_dict()}}
    return metrics, info, extras
