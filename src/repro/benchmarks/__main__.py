"""CLI: ``python -m repro.benchmarks <command>``.

Commands
--------
``run``     — run workload(s), write versioned BENCH records with deltas.
``list``    — list workloads and their committed baseline versions.
``compare`` — re-render the delta report of a committed record.

Examples::

    python -m repro.benchmarks run --workload serving --smoke
    python -m repro.benchmarks run --workload all --check
    python -m repro.benchmarks compare --workload train_step
"""

from __future__ import annotations

import argparse
import sys
from datetime import datetime, timezone
from typing import List, Optional

from repro.benchmarks import records
from repro.benchmarks.runner import WORKLOADS, record_path, run_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.benchmarks", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run workloads and write BENCH records")
    run.add_argument(
        "--workload",
        default="all",
        choices=sorted(WORKLOADS) + ["all"],
    )
    run.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds, not minutes)"
    )
    run.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero if any gated metric regressed beyond its threshold",
    )
    run.add_argument(
        "--results-dir", default=None, help="override benchmarks/results/"
    )
    run.add_argument(
        "--no-write", action="store_true", help="report deltas without archiving"
    )

    lst = sub.add_parser("list", help="list workloads and baseline versions")
    lst.add_argument("--results-dir", default=None)

    compare = sub.add_parser("compare", help="re-render a committed record's deltas")
    compare.add_argument("--workload", required=True, choices=sorted(WORKLOADS))
    compare.add_argument("--results-dir", default=None)
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    names = sorted(WORKLOADS) if args.workload == "all" else [args.workload]
    timestamp = datetime.now(timezone.utc).isoformat(timespec="seconds")
    failed: List[str] = []
    for name in names:
        record, regressions = run_workload(
            name,
            timestamp=timestamp,
            smoke=args.smoke,
            results_dir=args.results_dir,
            write=not args.no_write,
            log=print,
        )
        print(records.render_report(record))
        print()
        if regressions:
            failed.append(name)
    if args.check and failed:
        print(f"FAIL: regressions in workload(s): {', '.join(failed)}")
        return 1
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    for name in sorted(WORKLOADS):
        baseline = records.load_baseline(record_path(name, args.results_dir))
        if baseline is None:
            status = "no baseline"
        elif baseline.get("schema"):
            status = (
                f"v{baseline.get('version')} @ {baseline.get('git_rev')} "
                f"({baseline.get('timestamp')})"
            )
        else:
            status = "legacy-format baseline"
        print(f"{name:<14} {status}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    record = records.load_baseline(record_path(args.workload, args.results_dir))
    if record is None:
        print(f"no committed record for workload {args.workload}")
        return 1
    if not record.get("schema"):
        print(f"committed {args.workload} record predates the runner (no deltas)")
        return 1
    print(records.render_report(record))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return {"run": cmd_run, "list": cmd_list, "compare": cmd_compare}[
        args.command
    ](args)


if __name__ == "__main__":
    sys.exit(main())
