"""Workload ``train_step``: the fused one-pass optimizer step.

Times one steady-state margin-ranking step (merged positives+negatives
forward, backward, clip + Adam) of an RMPI model with warmed sample
caches — the inner loop every training epoch multiplies.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.autograd import Adam, clip_grad_norm
from repro.autograd.losses import margin_ranking_loss
from repro.benchmarks.records import MetricSpec
from repro.benchmarks.timing import best_of
from repro.core import RMPI, RMPIConfig
from repro.experiments import bench_settings
from repro.kg import TripleSet, build_partial_benchmark
from repro.kg.sampling import negative_triples
from repro.utils.seeding import seeded_rng

MARGIN = 10.0
CLIP_NORM = 5.0

SPECS: Dict[str, MetricSpec] = {
    "step_s": MetricSpec("lower"),
    "steps_per_s": MetricSpec("higher"),
    "batch_triples": MetricSpec("higher", threshold_pct=None),
}


def run(smoke: bool) -> Tuple[Dict[str, float], Dict[str, Any]]:
    settings = bench_settings()
    batch_size, repeats = (8, 3) if smoke else (16, 7)
    bench = build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )
    graph = bench.train_graph
    positives = list(bench.train_triples)[:batch_size]
    negatives = negative_triples(
        TripleSet(positives),
        num_entities=graph.num_entities,
        rng=seeded_rng(0),
        known=set(graph.triples) | set(bench.train_triples),
        candidate_entities=sorted(graph.triples.entities()),
    )
    model = RMPI(
        bench.num_relations,
        seeded_rng(0),
        RMPIConfig(dropout=0.0, use_target_attention=True),
    )
    optimizer = Adam(model.parameters(), lr=1e-3)

    def step() -> None:
        model.train()
        scores = model.score_batch_fused(graph, positives + negatives)
        loss = margin_ranking_loss(
            scores[: len(positives)], scores[len(positives) :], margin=MARGIN
        )
        optimizer.zero_grad()
        loss.backward()
        clip_grad_norm(model.parameters(), CLIP_NORM)
        optimizer.step()

    step()  # warm the memoised prepare caches
    step_s = best_of(repeats, step)
    metrics = {
        "step_s": step_s,
        "steps_per_s": 1.0 / step_s,
        "batch_triples": float(len(positives) + len(negatives)),
    }
    info = {
        "family": "FB15k-237",
        "scale": settings.scale,
        "batch_positives": len(positives),
        "batch_negatives": len(negatives),
        "repeats": repeats,
    }
    return metrics, info
