"""Concurrent load generator for a live :class:`ServingServer`.

Drives ``POST /score`` with ``clients`` closed-loop threads (each sends
its next request as soon as the previous one returns), sweeping the
client count upward to find where throughput saturates.  Per-request
latencies are clocked through span timing into a *private* registry —
the driver must not pollute the server process's own metrics when both
run in one process, as they do in tests and smoke mode.

Output feeds ``BENCH_serving_load.json``: per-level p50/p99 latency and
queries/sec, plus the saturation summary (the best observed throughput
and the level that reached it).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.benchmarks.timing import timed
from repro.kg.triples import Triple
from repro.obs import MetricsRegistry
from repro.serve.client import ServingClient, ServingUnavailable

__all__ = ["LoadLevelResult", "LoadSweepResult", "run_load_sweep"]


@dataclass(frozen=True)
class LoadLevelResult:
    """One concurrency level of the sweep."""

    clients: int
    requests: int
    errors: int
    elapsed_s: float
    qps: float
    p50_ms: float
    p99_ms: float

    def as_dict(self) -> Dict[str, Any]:
        return dict(vars(self))


@dataclass(frozen=True)
class LoadSweepResult:
    """The full sweep plus its saturation point."""

    levels: List[LoadLevelResult]
    saturation_qps: float
    saturation_clients: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "levels": [level.as_dict() for level in self.levels],
            "saturation_qps": self.saturation_qps,
            "saturation_clients": self.saturation_clients,
        }


def _drive_level(
    url: str,
    triples: Sequence[Triple],
    clients: int,
    requests_per_client: int,
    timeout: float,
) -> LoadLevelResult:
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def worker(idx: int) -> None:
        client = ServingClient(url, timeout=timeout)
        # Private registry: driver-side clocks stay out of server metrics.
        local = MetricsRegistry()
        barrier.wait()
        def one_request(triple: Triple):
            # A connection-level failure (server mid-restart, socket
            # refused under overload) counts as an error observation,
            # not a crashed worker thread.
            try:
                return client.request(
                    "POST", "/score", {"triples": [list(triple)]}
                )
            except ServingUnavailable as error:
                return 503, error.body

        for i in range(requests_per_client):
            triple = triples[(idx * requests_per_client + i) % len(triples)]
            elapsed, (status, _body) = timed(
                lambda: one_request(triple),
                name="loadgen.request",
                registry=local,
            )
            if status == 200:
                latencies[idx].append(elapsed)
            else:
                errors[idx] += 1

    threads = [
        threading.Thread(target=worker, args=(idx,), daemon=True)
        for idx in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall = MetricsRegistry()
    elapsed_s, _ = timed(
        lambda: [thread.join() for thread in threads],
        name="loadgen.level",
        registry=wall,
    )
    flat = np.asarray([s for per in latencies for s in per])
    ok = int(flat.size)
    return LoadLevelResult(
        clients=clients,
        requests=ok,
        errors=sum(errors),
        elapsed_s=elapsed_s,
        qps=ok / elapsed_s if elapsed_s > 0 else 0.0,
        p50_ms=float(np.percentile(flat, 50) * 1e3) if ok else float("nan"),
        p99_ms=float(np.percentile(flat, 99) * 1e3) if ok else float("nan"),
    )


def run_load_sweep(
    url: str,
    triples: Sequence[Triple],
    client_levels: Sequence[int] = (1, 2, 4, 8),
    requests_per_client: int = 25,
    timeout: float = 30.0,
) -> LoadSweepResult:
    """Sweep ``client_levels`` against a live server at ``url``.

    Saturation throughput is the best queries/sec any level reached —
    with closed-loop clients, throughput rises with concurrency until the
    scheduler/model pipeline is full, then flattens; the plateau is the
    capacity number the README's "heavy traffic" claims have to cite.
    """
    if not triples:
        raise ValueError("load generation needs at least one triple")
    levels = [
        _drive_level(url, triples, clients, requests_per_client, timeout)
        for clients in client_levels
    ]
    best = max(levels, key=lambda level: level.qps)
    return LoadSweepResult(
        levels=levels,
        saturation_qps=best.qps,
        saturation_clients=best.clients,
    )
