"""Workload ``prepare``: the batched subgraph-preparation pipeline.

Times the two numpy stages a ranking query's candidate list runs through
before any scoring — batched K-hop extraction and the batched
relation-view transform — on a generated FB15k-237 slice.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.benchmarks.records import MetricSpec
from repro.benchmarks.timing import best_of
from repro.experiments import bench_settings
from repro.kg import build_partial_benchmark, ranking_candidates
from repro.subgraph.extraction import extract_subgraphs_many
from repro.subgraph.linegraph import build_relational_graphs_many
from repro.utils.seeding import seeded_rng

SPECS: Dict[str, MetricSpec] = {
    "extract_s": MetricSpec("lower"),
    "linegraph_s": MetricSpec("lower"),
    "total_s": MetricSpec("lower"),
    "candidates_per_s": MetricSpec("higher"),
    "candidates": MetricSpec("higher", threshold_pct=None),
}


def _candidate_workload(bench, num_queries: int, num_negatives: int):
    graph = bench.train_graph
    rng = seeded_rng(0)
    pool = sorted(graph.triples.entities())
    queries = (
        list(bench.test_triples)[:num_queries]
        or list(bench.train_triples)[:num_queries]
    )
    workload = []
    for i, query in enumerate(queries):
        workload.extend(
            ranking_candidates(
                query,
                graph.num_entities,
                rng,
                num_negatives=num_negatives,
                candidate_entities=pool,
                corrupt_head=bool(i % 2),
            )
        )
    return graph, workload


def run(smoke: bool) -> Tuple[Dict[str, float], Dict[str, Any]]:
    settings = bench_settings()
    num_queries, num_negatives, repeats = (2, 19, 2) if smoke else (8, 49, 5)
    bench = build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )
    graph, workload = _candidate_workload(bench, num_queries, num_negatives)

    subgraphs = extract_subgraphs_many(graph, workload, num_hops=2)  # warm BFS cache
    extract_s = best_of(
        repeats, lambda: extract_subgraphs_many(graph, workload, num_hops=2)
    )
    linegraph_s = best_of(
        repeats, lambda: build_relational_graphs_many(subgraphs)
    )
    total_s = extract_s + linegraph_s
    metrics = {
        "extract_s": extract_s,
        "linegraph_s": linegraph_s,
        "total_s": total_s,
        "candidates_per_s": len(workload) / total_s,
        "candidates": float(len(workload)),
    }
    info = {
        "family": "FB15k-237",
        "scale": settings.scale,
        "num_queries": num_queries,
        "num_negatives": num_negatives,
        "num_hops": 2,
        "repeats": repeats,
    }
    return metrics, info
