"""Span-backed timing helpers for benchmark code.

Benchmark workloads and the ``benchmarks/bench_*.py`` scripts time
through :func:`repro.obs.span` instead of raw ``time.perf_counter``
pairs (lint rule RL008); these helpers wrap the two recurring shapes —
"time this callable" and "best wall time over N repeats".
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from repro.obs import MetricsRegistry, span

__all__ = ["timed", "best_of", "best_of_interleaved"]


def timed(
    fn: Callable[[], Any],
    name: str = "bench.timed",
    registry: Optional[MetricsRegistry] = None,
) -> Tuple[float, Any]:
    """Run ``fn`` once under a span; returns ``(elapsed_seconds, result)``.

    Pass a private ``registry`` to keep driver-side timing (e.g. the load
    generator's per-request clocks) out of the process-wide metrics.
    """
    timer = span(name, registry)
    with timer:
        result = fn()
    return timer.elapsed_s, result


def best_of(
    repeats: int,
    fn: Callable[[], Any],
    name: str = "bench.timed",
    registry: Optional[MetricsRegistry] = None,
) -> float:
    """Minimum wall time of ``fn`` over ``repeats`` runs — the standard
    microbenchmark estimator (least-interference sample)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    for _ in range(repeats):
        elapsed, _ = timed(fn, name, registry)
        best = min(best, elapsed)
    return best


def best_of_interleaved(
    repeats: int,
    *fns: Callable[[], Any],
    name: str = "bench.timed",
    registry: Optional[MetricsRegistry] = None,
) -> Sequence[float]:
    """Best wall-clock per fn, interleaving runs so CPU-state drift
    (frequency scaling, cache pressure from earlier tests) hits all
    contenders equally — the contender-comparison estimator."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = [float("inf")] * len(fns)
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            elapsed, _ = timed(fn, name, registry)
            best[i] = min(best[i], elapsed)
    return best
