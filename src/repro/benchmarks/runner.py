"""Shared benchmark runner: resolve a workload, run it, version the record.

One module per workload (the :mod:`indra.benchmarks` package shape); the
runner is the only code that touches ``benchmarks/results/``.  For each
run it

1. loads the committed ``BENCH_<workload>.json`` baseline (old or new
   format),
2. runs the workload (``--smoke`` shrinks it to CI size),
3. writes a versioned record with per-metric regression deltas,
4. returns nonzero when ``check`` is set and a gated metric regressed
   beyond its threshold.

Workload modules export ``run(smoke) -> (metrics, info[, extras])`` and a
``SPECS`` dict of :class:`~repro.benchmarks.records.MetricSpec`; extras
are side artifacts archived verbatim (e.g. the serving workload's load
sweep → ``BENCH_serving_load.json``).
"""

from __future__ import annotations

import importlib
import os
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.benchmarks import records

#: Workload name -> module path.  Importing lazily keeps ``python -m
#: repro.benchmarks list`` instant (the serving workload pulls in the
#: whole serving stack).
WORKLOADS: Dict[str, str] = {
    "prepare": "repro.benchmarks.prepare",
    "train_step": "repro.benchmarks.train_step",
    "eval_ranking": "repro.benchmarks.eval_ranking",
    "serving": "repro.benchmarks.serving",
    "parallel": "repro.benchmarks.parallel",
}


def default_results_dir() -> str:
    """``benchmarks/results/`` at the repository root (next to ``src/``)."""
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "benchmarks", "results")


def record_path(workload: str, results_dir: Optional[str] = None) -> str:
    return os.path.join(
        results_dir or default_results_dir(), f"BENCH_{workload}.json"
    )


def run_workload(
    workload: str,
    timestamp: str,
    smoke: bool = False,
    results_dir: Optional[str] = None,
    write: bool = True,
    log: Callable[[str], None] = lambda line: None,
) -> Tuple[Dict[str, Any], List[str]]:
    """Run one workload; returns ``(record, regressions)``.

    ``timestamp`` is caller-supplied (ISO-8601); the runner itself never
    reads a clock.  With ``write`` the record (and any extras) land in
    ``results_dir`` — the previous record is the baseline it was judged
    against, so committing the new file advances the trajectory.
    """
    if workload not in WORKLOADS:
        known = ", ".join(sorted(WORKLOADS))
        raise KeyError(f"unknown workload {workload!r} (known: {known})")
    module = importlib.import_module(WORKLOADS[workload])
    results_dir = results_dir or default_results_dir()
    path = record_path(workload, results_dir)
    baseline = records.load_baseline(path)
    log(f"running workload {workload} (smoke={smoke}) ...")

    result = module.run(smoke)
    metrics, info = result[0], result[1]
    extras: Mapping[str, Any] = result[2] if len(result) > 2 else {}

    record = records.build_record(
        workload,
        metrics,
        module.SPECS,
        timestamp=timestamp,
        smoke=smoke,
        workload_info=info,
        baseline=baseline,
    )
    if write:
        records.write_record(record, path)
        log(f"wrote {path}")
        for filename, payload in extras.items():
            extra = dict(payload)
            extra.setdefault("timestamp", timestamp)
            extra.setdefault("git_rev", record["git_rev"])
            extra_path = os.path.join(results_dir, filename)
            records.write_record(extra, extra_path)
            log(f"wrote {extra_path}")
    regressions = list(record.get("baseline", {}).get("regressions", []))
    return record, regressions
