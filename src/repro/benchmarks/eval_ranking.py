"""Workload ``eval_ranking``: the entity-prediction ranking protocol.

Times :func:`repro.eval.protocol.evaluate_entity_prediction` — per query,
the truth plus sampled corruptions scored through the fused no-grad
forward — and reports query throughput alongside the MRR it produced (a
silent accuracy collapse should be as loud as a slowdown).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.benchmarks.records import MetricSpec
from repro.benchmarks.timing import timed
from repro.core import RMPI, RMPIConfig
from repro.eval.protocol import evaluate_entity_prediction
from repro.experiments import bench_settings
from repro.kg import TripleSet, build_partial_benchmark
from repro.utils.seeding import seeded_rng

SPECS: Dict[str, MetricSpec] = {
    "rank_s": MetricSpec("lower"),
    "queries_per_s": MetricSpec("higher"),
    "mrr": MetricSpec("higher", threshold_pct=None),
    "queries": MetricSpec("higher", threshold_pct=None),
}


def run(smoke: bool) -> Tuple[Dict[str, float], Dict[str, Any]]:
    settings = bench_settings()
    num_queries, num_negatives = (4, 9) if smoke else (16, 49)
    bench = build_partial_benchmark(
        "FB15k-237", 2, scale=settings.scale, seed=settings.seed
    )
    graph = bench.train_graph
    targets = TripleSet(
        (list(bench.test_triples) or list(bench.train_triples))[:num_queries]
    )
    model = RMPI(
        bench.num_relations, seeded_rng(0), RMPIConfig(embed_dim=16, dropout=0.0)
    )
    model.eval()

    def rank():
        return evaluate_entity_prediction(
            model, graph, targets, seeded_rng(1), num_negatives=num_negatives
        )

    rank()  # warm the memoised prepare caches
    rank_s, result = timed(rank)
    metrics = {
        "rank_s": rank_s,
        "queries_per_s": result.num_queries / rank_s,
        "mrr": result.mrr,
        "queries": float(result.num_queries),
    }
    info = {
        "family": "FB15k-237",
        "scale": settings.scale,
        "num_negatives": num_negatives,
    }
    return metrics, info
