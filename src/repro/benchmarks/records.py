"""Versioned benchmark records and regression-delta math.

Every runner invocation emits one ``BENCH_<workload>.json`` record:

.. code-block:: json

    {
      "schema": 1,
      "workload": "train_step",
      "version": 3,
      "timestamp": "2026-08-07T12:00:00+00:00",
      "git_rev": "abc1234",
      "smoke": true,
      "env": {"python": "...", "numpy": "...", "platform": "...", "cpus": 8},
      "workload_info": {"batch_positives": 16, "...": "..."},
      "metrics": {"step_s": 0.016, "steps_per_s": 61.2},
      "baseline": {
        "version": 2,
        "git_rev": "def5678",
        "deltas": {
          "step_s": {"baseline": 0.015, "current": 0.016,
                      "delta_pct": 6.7, "direction": "lower",
                      "regression": false}
        },
        "regressions": []
      }
    }

``version`` is the committed baseline's version + 1, so the archived
records in ``benchmarks/results/`` form a trajectory rather than a pile of
overwrites.  The caller supplies ``timestamp`` (the runner never reads a
clock itself — wall-clock identity stays out of the measurement layer).

Pre-runner ``BENCH_*.json`` files (nested stage dicts, no schema field)
are still accepted as baselines: their numeric leaves are flattened to
dotted metric names, so a first new-format run reports deltas against the
old record instead of silently starting over.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

SCHEMA_VERSION = 1

#: Default tolerance before a worse metric counts as a regression.  Pure
#: numpy timings on shared machines are noisy; workloads override
#: per-metric where tighter floors are defensible.
DEFAULT_THRESHOLD_PCT = 25.0


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is judged against a baseline.

    direction:
        ``"lower"`` (latencies), ``"higher"`` (throughputs, accuracy), or
        ``"fact"`` for environment facts (worker counts, batch sizes):
        facts are reported with their delta but are *never* a regression —
        a run on half the workers is a different experiment, not a slower
        one.
    threshold_pct:
        How many percent *worse* than baseline the metric may drift before
        it is flagged as a regression.  ``None`` disables the gate for
        purely informational metrics; ignored for ``"fact"``.
    """

    direction: str = "lower"
    threshold_pct: Optional[float] = DEFAULT_THRESHOLD_PCT

    def __post_init__(self) -> None:
        if self.direction not in ("lower", "higher", "fact"):
            raise ValueError(
                f"direction must be lower|higher|fact, got {self.direction!r}"
            )


def env_fingerprint() -> Dict[str, Any]:
    """Where the numbers came from — enough to spot apples-vs-oranges."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def git_rev(root: Optional[str] = None) -> str:
    """Short commit hash of the working tree (``"unknown"`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def flatten_metrics(obj: Any, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict as dotted flat names (legacy
    baseline adapter; booleans and strings are dropped)."""
    flat: Dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key, value in obj.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, name))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        flat[prefix] = float(obj)
    return flat


def baseline_metrics(record: Mapping[str, Any]) -> Dict[str, float]:
    """Comparable metrics of a baseline record, old format or new."""
    if record.get("schema"):
        return flatten_metrics(record.get("metrics", {}))
    return flatten_metrics(record)


def baseline_identity(record: Mapping[str, Any]) -> Dict[str, Any]:
    """Identity fields of a baseline record, old format or new.

    Legacy (pre-schema) records carry no identity fields at all; report
    them as version 0 at rev ``"pre-runner"`` instead of leaking nulls
    into the new record's ``baseline`` block.
    """
    if record.get("schema"):
        return {
            "version": int(record.get("version") or 0),
            "git_rev": record.get("git_rev") or "unknown",
            "smoke": record.get("smoke"),
        }
    return {"version": 0, "git_rev": "pre-runner", "smoke": None}


def compute_deltas(
    current: Mapping[str, float],
    baseline: Mapping[str, float],
    specs: Mapping[str, MetricSpec],
) -> Dict[str, Dict[str, Any]]:
    """Per-metric deltas for every metric present on both sides.

    ``delta_pct`` is signed change relative to baseline; ``regression`` is
    True when the metric moved in its *bad* direction by more than the
    spec's threshold.
    """
    deltas: Dict[str, Dict[str, Any]] = {}
    for name in sorted(current):
        if name not in baseline:
            continue
        spec = specs.get(name, MetricSpec())
        base = float(baseline[name])
        cur = float(current[name])
        delta_pct = ((cur - base) / abs(base) * 100.0) if base else 0.0
        if spec.direction == "fact":
            # Environment facts (worker counts, batch sizes) have no good
            # direction: a change means a different experiment, never a
            # regression.
            regression = False
        else:
            worse_pct = delta_pct if spec.direction == "lower" else -delta_pct
            regression = (
                spec.threshold_pct is not None and worse_pct > spec.threshold_pct
            )
        deltas[name] = {
            "baseline": base,
            "current": cur,
            "delta_pct": delta_pct,
            "direction": spec.direction,
            "regression": regression,
        }
    return deltas


def load_baseline(path: str) -> Optional[Dict[str, Any]]:
    """The committed record at ``path`` (None if absent or unreadable)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def build_record(
    workload: str,
    metrics: Mapping[str, float],
    specs: Mapping[str, MetricSpec],
    timestamp: str,
    smoke: bool,
    workload_info: Optional[Mapping[str, Any]] = None,
    baseline: Optional[Mapping[str, Any]] = None,
    rev: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble one versioned record, with deltas when a baseline exists."""
    identity = baseline_identity(baseline) if baseline else None
    record: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "workload": workload,
        "version": identity["version"] + 1 if identity else 1,
        "timestamp": timestamp,
        "git_rev": rev if rev is not None else git_rev(),
        "smoke": bool(smoke),
        "env": env_fingerprint(),
        "workload_info": dict(workload_info or {}),
        "metrics": {name: float(value) for name, value in sorted(metrics.items())},
    }
    if baseline and identity:
        deltas = compute_deltas(record["metrics"], baseline_metrics(baseline), specs)
        record["baseline"] = {
            "version": identity["version"],
            "git_rev": identity["git_rev"],
            "smoke": identity["smoke"],
            "deltas": deltas,
            "regressions": sorted(
                name for name, delta in deltas.items() if delta["regression"]
            ),
        }
    return record


def write_record(record: Mapping[str, Any], path: str) -> str:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def render_report(record: Mapping[str, Any]) -> str:
    """Human-readable delta report for one record."""
    lines = [
        f"workload {record['workload']} v{record['version']} "
        f"(rev {record['git_rev']}, smoke={record['smoke']})"
    ]
    baseline = record.get("baseline")
    if not baseline:
        lines.append("  no committed baseline — record establishes v1")
        for name, value in record["metrics"].items():
            lines.append(f"  {name:<32} {value:>12.6g}")
        return "\n".join(lines)
    lines.append(
        f"  vs baseline v{baseline['version']} (rev {baseline['git_rev']})"
    )
    deltas: Dict[str, Dict[str, Any]] = baseline["deltas"]
    for name, value in record["metrics"].items():
        delta = deltas.get(name)
        if delta is None:
            lines.append(f"  {name:<32} {value:>12.6g}  (new metric)")
            continue
        marker = "  REGRESSION" if delta["regression"] else ""
        tag = (
            "environment fact"
            if delta["direction"] == "fact"
            else f"{delta['direction']} is better"
        )
        lines.append(
            f"  {name:<32} {value:>12.6g}  "
            f"{delta['delta_pct']:+7.1f}% vs {delta['baseline']:.6g}"
            f" [{tag}]{marker}"
        )
    if baseline["regressions"]:
        lines.append(f"  regressions: {', '.join(baseline['regressions'])}")
    else:
        lines.append("  no regressions beyond thresholds")
    return "\n".join(lines)
