"""Benchmark workloads as an importable package with a shared runner.

One module per workload (``prepare``, ``train_step``, ``eval_ranking``,
``serving``, ``parallel``), a runner that versions every result into
``benchmarks/results/BENCH_<workload>.json`` with regression deltas
against the committed baseline, and a concurrent load generator for the
serving stack.  ``python -m repro.benchmarks run --workload all --smoke``
is the CI entry; the same command without ``--smoke`` produces the
defensible local numbers.

The pytest scripts under ``benchmarks/`` remain the speedup *gates*
(fused vs legacy floors); this package owns the *trajectory* — absolute
numbers a future PR must not regress.
"""

from repro.benchmarks.loadgen import LoadLevelResult, LoadSweepResult, run_load_sweep
from repro.benchmarks.records import MetricSpec, build_record, compute_deltas
from repro.benchmarks.runner import WORKLOADS, run_workload
from repro.benchmarks.timing import best_of, best_of_interleaved, timed

__all__ = [
    "LoadLevelResult",
    "LoadSweepResult",
    "run_load_sweep",
    "MetricSpec",
    "build_record",
    "compute_deltas",
    "WORKLOADS",
    "run_workload",
    "best_of",
    "best_of_interleaved",
    "timed",
]
