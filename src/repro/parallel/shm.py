"""Zero-copy transport for the parallel layer: shared-memory segments.

The pickle backend ships the full parameter set inside every worker
payload on every batch — ``BENCH_parallel.json`` recorded that broadcast
overhead erasing the fork win on small workloads.  This module moves the
bulk arrays out of the payloads entirely:

* **parameters** live in one shared segment (:class:`SharedParamStore`);
  the parent publishes the current weights in place (one memcpy, no
  pickling) and stamps each dispatch with a small **param version** —
  workers bind their model's ``param.data`` to read-only views of the
  segment once, check the stamp at dispatch, and then read the current
  weights zero-copy forever after;
* **gradients** fan back through preallocated per-rank shared buffers:
  a worker copies its shard's gradients into its own rank's buffer and
  returns only ``(loss, pair count, present-gradient names)``; the
  parent runs the pair-count-weighted reduction directly over views;
* **graph CSR adjacency** can be re-homed into a segment
  (:class:`SharedGraphCSR`) so the index pages are genuinely shared
  rather than fork-inherited copy-on-write pages that a stray write
  could silently duplicate.

Two segment flavours hide behind one interface:
``multiprocessing.shared_memory`` where available, and an mmap-backed
temporary file everywhere else (``mmap.mmap`` on a real file defaults to
``MAP_SHARED``, so forked children see parent writes either way).

Backend selection for the trainer is a three-valued switch:
``ParallelConfig.backend`` is ``"auto" | "pickle" | "shm"``, where
``"auto"`` (the default) consults the ``REPRO_PARALLEL_BACKEND``
environment variable and falls back to ``"pickle"`` — the bit-for-bit
compatibility path.  The parity suite proves the two backends produce
bitwise-identical checkpoints, so flipping the env flag is safe anywhere.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BACKEND_ENV_VAR",
    "SharedArrayBlock",
    "SharedGraphCSR",
    "SharedParamStore",
    "StaleParamsError",
    "resolve_backend",
    "segment_backend",
    "shm_available",
]

#: Environment switch consulted by ``resolve_backend("auto")``.
BACKEND_ENV_VAR = "REPRO_PARALLEL_BACKEND"

#: Slot alignment inside a segment (cache-line sized).
_ALIGN = 64

#: Header: 8 int64 slots at the start of a block; slot 0 is the version.
_HEADER_BYTES = 64


class StaleParamsError(RuntimeError):
    """A worker's shared parameter segment does not hold the version the
    dispatch was stamped with — the zero-copy invariant is broken."""


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` is importable here."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - stdlib module on 3.8+
        return False
    return True


def segment_backend() -> str:
    """The segment flavour allocations will use: ``"shm"`` or ``"memmap"``."""
    return "shm" if shm_available() else "memmap"


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a trainer backend setting to ``"pickle"`` or ``"shm"``.

    ``"auto"`` (and ``None``) read :data:`BACKEND_ENV_VAR`, defaulting to
    ``"pickle"`` — the compatibility path stays the default until a
    deployment opts in, and one env flag flips a whole test run.
    """
    value = (backend or "auto").strip().lower()
    if value == "auto":
        value = os.environ.get(BACKEND_ENV_VAR, "").strip().lower() or "pickle"
    if value not in ("pickle", "shm"):
        raise ValueError(
            f"parallel backend must be auto|pickle|shm, got {backend!r}"
            + (f" (via ${BACKEND_ENV_VAR})" if backend in (None, "auto") else "")
        )
    return value


# ----------------------------------------------------------------------
# Segments
# ----------------------------------------------------------------------
#: Segments whose unmap failed because live numpy views still pin the
#: buffer.  Parking them here keeps ``SharedMemory.__del__`` from retrying
#: the close at GC time (which would print "Exception ignored" noise); the
#: segment is already unlinked, so the kernel frees it at process exit.
_PINNED_SEGMENTS: List[Any] = []


class _ShmSegment:
    """A ``multiprocessing.shared_memory`` block."""

    kind = "shm"

    def __init__(self, nbytes: int) -> None:
        from multiprocessing import shared_memory

        self._shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        self.buf = self._shm.buf

    def close(self) -> None:
        try:
            self._shm.close()
        except BufferError:  # repro-lint: disable=RL009 numpy views handed out earlier may still pin the exported buffer; park the mapping for process lifetime, the unlink still frees the segment name
            _PINNED_SEGMENTS.append(self._shm)

    def unlink(self) -> None:
        try:
            self._shm.unlink()
        except FileNotFoundError:  # repro-lint: disable=RL009 already unlinked (e.g. both the pool and the owning trainer released the store); nothing left to free
            pass


class _MemmapSegment:
    """A shared anonymous-file mmap (fallback where shm is unavailable)."""

    kind = "memmap"

    def __init__(self, nbytes: int) -> None:
        fd, self._path = tempfile.mkstemp(prefix="repro-parallel-")
        try:
            os.ftruncate(fd, max(nbytes, 1))
            self._mmap = mmap.mmap(fd, max(nbytes, 1))  # MAP_SHARED default
        finally:
            os.close(fd)
        self.buf = memoryview(self._mmap)

    def close(self) -> None:
        try:
            self.buf.release()
            self._mmap.close()
        except BufferError:  # repro-lint: disable=RL009 numpy views handed out earlier may still pin the mapping; park it for process lifetime, the unlink still frees the backing file
            _PINNED_SEGMENTS.append(self._mmap)

    def unlink(self) -> None:
        try:
            os.unlink(self._path)
        except FileNotFoundError:  # repro-lint: disable=RL009 already unlinked by another releaser; nothing left to free
            pass


def _allocate_segment(nbytes: int, backend: Optional[str] = None):
    kind = backend or segment_backend()
    if kind == "shm":
        return _ShmSegment(nbytes)
    if kind == "memmap":
        return _MemmapSegment(nbytes)
    raise ValueError(f"segment backend must be shm|memmap, got {kind!r}")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


# ----------------------------------------------------------------------
# Array blocks
# ----------------------------------------------------------------------
class SharedArrayBlock:
    """Named numpy arrays packed into one shared segment.

    The layout (name → offset/shape/dtype) is computed from template
    arrays at construction and never changes; the first 64 bytes are an
    int64 header whose slot 0 is a monotonically increasing **version**
    bumped by :meth:`write_all`.  Forked children inherit the segment
    mapping, so parent writes are immediately visible through any view.
    """

    def __init__(
        self,
        templates: Mapping[str, np.ndarray],
        backend: Optional[str] = None,
        copy_initial: bool = True,
    ) -> None:
        self._layout: Dict[str, Tuple[int, Tuple[int, ...], np.dtype]] = {}
        offset = _HEADER_BYTES
        for name, template in templates.items():
            array = np.asarray(template)
            self._layout[name] = (offset, array.shape, array.dtype)
            offset = _aligned(offset + array.nbytes)
        self.nbytes = offset
        self._segment = _allocate_segment(offset, backend)
        self._header: Optional[np.ndarray] = np.frombuffer(
            self._segment.buf, dtype=np.int64, count=8
        )
        self._header[:] = 0
        if copy_initial:
            for name, template in templates.items():
                np.copyto(self.view(name, writable=True), np.asarray(template))

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self._segment.kind

    def names(self) -> List[str]:
        return list(self._layout)

    def view(self, name: str, writable: bool = False) -> np.ndarray:
        """A numpy view of ``name``'s slot (read-only unless asked)."""
        offset, shape, dtype = self._layout[name]
        count = int(np.prod(shape, dtype=np.int64)) if shape else 1
        array = np.frombuffer(
            self._segment.buf, dtype=dtype, count=count, offset=offset
        ).reshape(shape)
        if not writable:
            array.setflags(write=False)
        return array

    def views(self, writable: bool = False) -> Dict[str, np.ndarray]:
        return {name: self.view(name, writable) for name in self._layout}

    # ------------------------------------------------------------------
    def write(self, name: str, array: np.ndarray) -> None:
        """Copy ``array`` into ``name``'s slot (shape/dtype must match)."""
        target = self.view(name, writable=True)
        source = np.asarray(array)
        if source.shape != target.shape or source.dtype != target.dtype:
            raise ValueError(
                f"slot {name!r} holds {target.shape}/{target.dtype}, "
                f"got {source.shape}/{source.dtype}"
            )
        np.copyto(target, source)

    def write_all(self, arrays: Mapping[str, np.ndarray]) -> int:
        """Copy every array in, then bump and return the version stamp."""
        missing = set(self._layout) - set(arrays)
        if missing:
            raise KeyError(f"missing arrays for slots {sorted(missing)}")
        assert self._header is not None, "block is closed"
        for name in self._layout:
            self.write(name, arrays[name])
        self._header[0] += 1
        return int(self._header[0])

    @property
    def version(self) -> int:
        assert self._header is not None, "block is closed"
        return int(self._header[0])

    # ------------------------------------------------------------------
    def close(self, unlink: bool = True) -> None:
        """Release this process's mapping (and free the segment)."""
        self._header = None  # drop our own pin so the unmap can succeed
        if unlink:
            self._segment.unlink()
        self._segment.close()


# ----------------------------------------------------------------------
# Parameter store
# ----------------------------------------------------------------------
class SharedParamStore:
    """Model parameters + per-rank gradient buffers over shared segments.

    Parent side: :meth:`publish_model` copies the authoritative weights
    into the shared block and returns the new version stamp carried by
    the dispatch payloads.  Worker side: :meth:`bind_model` repoints each
    ``param.data`` at a **read-only** view of the segment — done once per
    (re)spawned worker; every later publish is visible through the same
    views with no further work.  The read-only flag doubles as an
    aliasing guard: any op that tried to mutate a parameter in place
    would raise instead of corrupting the shared weights.

    Gradients use one preallocated buffer per rank with the same layout,
    so the result payload shrinks to ``(loss, pairs, present names)`` and
    the parent-side reduction runs over views without copying.
    """

    def __init__(
        self,
        state: Mapping[str, np.ndarray],
        workers: int,
        backend: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.params = SharedArrayBlock(state, backend, copy_initial=False)
        self.params.write_all(state)  # establish version 1
        self._grads = [
            SharedArrayBlock(state, backend, copy_initial=False)
            for _ in range(workers)
        ]
        self.workers = int(workers)

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.params.kind

    @property
    def version(self) -> int:
        return self.params.version

    def nbytes(self) -> int:
        return self.params.nbytes + sum(block.nbytes for block in self._grads)

    # ------------------------------------------------------------------
    def publish(self, state: Mapping[str, np.ndarray]) -> int:
        """Copy ``state`` into the shared block; returns the new version."""
        return self.params.write_all(state)

    def publish_model(self, model: Any) -> int:
        """Publish straight from ``model``'s parameters (no state-dict
        copy — one memcpy per parameter into the segment)."""
        return self.params.write_all(
            {name: param.data for name, param in model.named_parameters()}
        )

    def check_version(self, expected: int) -> None:
        if self.params.version != int(expected):
            raise StaleParamsError(
                f"shared parameter segment holds version {self.params.version}, "
                f"dispatch expected {expected}"
            )

    def bind_model(self, model: Any) -> None:
        """Repoint every parameter of ``model`` at its read-only shared
        view.  Call once per worker (re)spawn; afterwards the views track
        all future publishes automatically."""
        views = self.params.views(writable=False)
        for name, param in model.named_parameters():
            view = views.get(name)
            if view is None:
                raise KeyError(f"model parameter {name!r} has no shared slot")
            if view.shape != param.data.shape or view.dtype != param.data.dtype:
                raise ValueError(
                    f"shared slot {name!r} holds {view.shape}/{view.dtype}, "
                    f"model expects {param.data.shape}/{param.data.dtype}"
                )
            param.data = view

    # ------------------------------------------------------------------
    def write_grads(
        self, rank: int, grads: Mapping[str, Optional[np.ndarray]]
    ) -> List[str]:
        """Copy this rank's gradients into its shared buffer; returns the
        names that were present (``None`` gradients are skipped)."""
        block = self._grads[rank]
        present: List[str] = []
        for name, grad in grads.items():
            if grad is None:
                continue
            block.write(name, grad)
            present.append(name)
        return present

    def grad_views(
        self, rank: int, present: Sequence[str]
    ) -> Dict[str, Optional[np.ndarray]]:
        """Read-only views of rank ``rank``'s gradient buffer, ``None`` for
        parameters the shard never touched — the exact shape
        :func:`repro.parallel.trainer.reduce_gradients` consumes."""
        block = self._grads[rank]
        present_set = set(present)
        return {
            name: (block.view(name) if name in present_set else None)
            for name in block.names()
        }

    # ------------------------------------------------------------------
    def close(self, unlink: bool = True) -> None:
        self.params.close(unlink=unlink)
        for block in self._grads:
            block.close(unlink=unlink)


# ----------------------------------------------------------------------
# Graph CSR sharing
# ----------------------------------------------------------------------
class SharedGraphCSR:
    """Re-home a graph's CSR adjacency into one shared segment.

    The graph's ``(indptr, indices, edge_ids)`` arrays are copied into a
    segment and adopted back as read-only views
    (:meth:`repro.kg.graph.KnowledgeGraph.adopt_csr`), so the parent and
    every forked worker address the **same physical pages** — no
    copy-on-write duplication, and respawned workers remap for free by
    inheriting the parent's (still shared) mapping.
    """

    def __init__(self, graph: Any, backend: Optional[str] = None) -> None:
        indptr, indices, edge_ids = graph.csr_arrays()
        self.block = SharedArrayBlock(
            {"indptr": indptr, "indices": indices, "edge_ids": edge_ids},
            backend,
            copy_initial=True,
        )
        views = self.block.views(writable=False)
        graph.adopt_csr(views["indptr"], views["indices"], views["edge_ids"])
        self.graph: Optional[Any] = graph

    @property
    def kind(self) -> str:
        return self.block.kind

    def nbytes(self) -> int:
        return self.block.nbytes

    def close(self, unlink: bool = True) -> None:
        if self.graph is not None:
            # The graph outlives the pool (the parent keeps evaluating on
            # it), so hand it back private copies before unmapping — views
            # into a closed segment would pin the mapping forever.
            views = self.block.views(writable=False)
            self.graph.adopt_csr(
                views["indptr"].copy(),
                views["indices"].copy(),
                views["edge_ids"].copy(),
            )
            self.graph = None
        self.block.close(unlink=unlink)
