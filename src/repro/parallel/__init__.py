"""`repro.parallel` — multi-process execution layer.

Four entry points over one fork-based, rank-addressed
:class:`~repro.parallel.pool.WorkerPool` (heavy read-only state — graph,
model, registry — is inherited copy-on-write; only payloads and results
are pickled):

* :class:`~repro.parallel.prepare.ShardedPreparer` — batched sample
  preparation sharded across workers, merged in input order;
* :class:`~repro.parallel.trainer.DataParallelTrainer` — per-batch
  gradient sharding with a parameter-server average before the Adam step;
* :class:`~repro.parallel.evaluation.ParallelEvaluator` — ranking/
  classification protocols with per-query scoring fanned across workers
  (bitwise-identical metrics);
* :func:`~repro.parallel.serving.scoring_pool` — the serving session's
  worker-pool scoring backend behind the micro-batching scheduler.

``workers=1`` everywhere means *no* processes and the untouched serial
code path.  Determinism: per-rank RNG streams are pinned from
``(seed, rank)`` via :mod:`repro.utils.seeding`; shard placement is
deterministic (shard k → rank k), so identical runs produce identical
results.

Parameter transport for training is a two-backend switch (see
:mod:`repro.parallel.shm`): the default ``"pickle"`` backend broadcasts
the state dict inside every payload, while ``"shm"`` publishes weights to
a shared-memory segment and stamps payloads with a tiny param version —
zero-copy broadcast with bitwise-identical checkpoints.
"""

from repro.parallel.evaluation import (
    ParallelEvaluator,
    score_query_lists,
    score_triples_sharded,
)
from repro.parallel.pool import (
    WorkerError,
    WorkerPool,
    fork_available,
    register_op,
    usable_cpus,
)
from repro.parallel.prepare import ShardedPreparer
from repro.parallel.serving import known_keys, score_batch_sharded, scoring_pool
from repro.parallel.sharding import (
    merge_shards,
    pack_triples,
    shard_list,
    shard_sizes,
    unpack_triples,
)
from repro.parallel.shm import (
    BACKEND_ENV_VAR,
    SharedArrayBlock,
    SharedGraphCSR,
    SharedParamStore,
    StaleParamsError,
    resolve_backend,
    segment_backend,
    shm_available,
)
from repro.parallel.trainer import DataParallelTrainer, reduce_gradients
from repro.train.trainer import ParallelConfig

__all__ = [
    "BACKEND_ENV_VAR",
    "DataParallelTrainer",
    "ParallelConfig",
    "ParallelEvaluator",
    "SharedArrayBlock",
    "SharedGraphCSR",
    "SharedParamStore",
    "ShardedPreparer",
    "StaleParamsError",
    "WorkerError",
    "WorkerPool",
    "fork_available",
    "known_keys",
    "merge_shards",
    "pack_triples",
    "reduce_gradients",
    "register_op",
    "resolve_backend",
    "score_batch_sharded",
    "score_query_lists",
    "score_triples_sharded",
    "scoring_pool",
    "segment_backend",
    "shard_list",
    "shard_sizes",
    "shm_available",
    "unpack_triples",
    "usable_cpus",
]
