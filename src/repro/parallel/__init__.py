"""`repro.parallel` — multi-process execution layer.

Four entry points over one fork-based, rank-addressed
:class:`~repro.parallel.pool.WorkerPool` (heavy read-only state — graph,
model, registry — is inherited copy-on-write; only payloads and results
are pickled):

* :class:`~repro.parallel.prepare.ShardedPreparer` — batched sample
  preparation sharded across workers, merged in input order;
* :class:`~repro.parallel.trainer.DataParallelTrainer` — per-batch
  gradient sharding with a parameter-server average before the Adam step;
* :class:`~repro.parallel.evaluation.ParallelEvaluator` — ranking/
  classification protocols with per-query scoring fanned across workers
  (bitwise-identical metrics);
* :func:`~repro.parallel.serving.scoring_pool` — the serving session's
  worker-pool scoring backend behind the micro-batching scheduler.

``workers=1`` everywhere means *no* processes and the untouched serial
code path.  Determinism: per-rank RNG streams are pinned from
``(seed, rank)`` via :mod:`repro.utils.seeding`; shard placement is
deterministic (shard k → rank k), so identical runs produce identical
results.
"""

from repro.parallel.evaluation import (
    ParallelEvaluator,
    score_query_lists,
    score_triples_sharded,
)
from repro.parallel.pool import (
    WorkerError,
    WorkerPool,
    fork_available,
    register_op,
    usable_cpus,
)
from repro.parallel.prepare import ShardedPreparer
from repro.parallel.serving import known_keys, score_batch_sharded, scoring_pool
from repro.parallel.sharding import merge_shards, shard_list, shard_sizes
from repro.parallel.trainer import DataParallelTrainer, reduce_gradients
from repro.train.trainer import ParallelConfig

__all__ = [
    "DataParallelTrainer",
    "ParallelConfig",
    "ParallelEvaluator",
    "ShardedPreparer",
    "WorkerError",
    "WorkerPool",
    "fork_available",
    "known_keys",
    "merge_shards",
    "reduce_gradients",
    "register_op",
    "score_batch_sharded",
    "score_query_lists",
    "score_triples_sharded",
    "scoring_pool",
    "shard_list",
    "shard_sizes",
    "usable_cpus",
]
