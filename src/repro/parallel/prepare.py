"""Sharded sample preparation (the extraction → line-graph → plan pipeline).

``prepare_many`` is embarrassingly parallel across target triples: each
sample depends only on its own K-hop neighborhood of the (read-only)
training graph.  :class:`ShardedPreparer` splits a batch into contiguous
shards, runs the model's own ``prepare_many`` per shard in the worker
pool, and concatenates the results back in input order — exactly the
samples the serial call would have produced (pinned by
``tests/test_parallel_equivalence.py``).

The prepared samples are optionally installed into the parent model's
memoised sample cache, so a parallel prepare pass warms the serial scoring
path (training epochs, eval ranking) for free.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.base import SubgraphScoringModel
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.parallel.pool import WorkerPool, register_op
from repro.parallel.sharding import (
    merge_shards,
    pack_triples,
    shard_list,
    unpack_triples,
)


@register_op("prepare")
def _prepare_op(state: Dict[str, Any], payload: Any) -> List[Any]:
    """Worker side: the model's own batched prepare on this rank's shard.

    The shard arrives as a packed ``(n, 3)`` int64 array (slim transport);
    legacy list-of-tuples payloads are still accepted."""
    triples: List[Triple] = unpack_triples(payload)
    if not triples:
        return []
    model: SubgraphScoringModel = state["context"]["model"]
    graph: KnowledgeGraph = state["context"]["graph"]
    return model.prepare_many(graph, triples)


class ShardedPreparer:
    """Partition ``prepare_many`` batches across a worker pool.

    Parameters
    ----------
    model / graph:
        The scoring model and the read-only graph the pool was (or will
        be) forked around.
    workers:
        Pool size when the preparer owns its pool (ignored if ``pool`` is
        given).  ``1`` prepares inline through the identical code path.
    pool:
        An existing :class:`WorkerPool` whose context holds this model and
        graph — lets trainers/evaluators share one set of processes.
    task_deadline_s / max_task_retries:
        Fault-tolerance knobs forwarded to the owned pool (ignored when
        ``pool`` is given): per-shard deadline before the worker is deemed
        wedged, and how many times a shard lost to a crash is requeued.
    """

    def __init__(
        self,
        model: SubgraphScoringModel,
        graph: KnowledgeGraph,
        workers: int = 1,
        pool: Optional[WorkerPool] = None,
        seed: int = 0,
        task_deadline_s: Optional[float] = None,
        max_task_retries: int = 2,
    ) -> None:
        self.model = model
        self.graph = graph
        if pool is None:
            # Warm the CSR adjacency BEFORE forking so every worker shares
            # the parent's index pages copy-on-write instead of each
            # rebuilding it.
            graph.warm()
            pool = WorkerPool(
                workers,
                context={"model": model, "graph": graph},
                seed=seed,
                task_deadline_s=task_deadline_s,
                max_task_retries=max_task_retries,
            )
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool

    # ------------------------------------------------------------------
    def prepare_many(
        self,
        graph: KnowledgeGraph,
        triples: Sequence[Triple],
        populate_cache: bool = True,
    ) -> List[Any]:
        """Order-aligned samples for ``triples`` — the parallel counterpart
        of ``model.prepare_many``.

        ``graph`` must be the pool's pinned graph (workers inherited it at
        fork time; scoring a different graph there would silently answer
        from the wrong adjacency).  With ``populate_cache`` the merged
        samples are installed into the parent model's memoised cache.
        """
        if graph is not self.graph:
            raise ValueError(
                "ShardedPreparer is pinned to the graph its workers were "
                "forked around; rebuild the preparer to switch graphs"
            )
        triples = [tuple(int(x) for x in triple) for triple in triples]
        if not triples:
            return []
        shards = shard_list(triples, self.pool.workers)
        samples = merge_shards(
            self.pool.run("prepare", [pack_triples(shard) for shard in shards])
        )
        if populate_cache:
            self.model.install_samples(graph, triples, samples)
        return samples

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ShardedPreparer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
