"""Parallel evaluation: fan ranking-candidate scoring across workers.

The entity-prediction protocol is two phases with very different needs:

* **candidate drawing** consumes the evaluation RNG stream and must happen
  in protocol order — it stays in the parent
  (:func:`repro.eval.protocol.build_ranking_queries`, shared verbatim with
  the serial path, so the candidate lists are identical by construction);
* **scoring** is pure per-query work — each query's candidate list goes
  through ``model.score_triples`` exactly as the serial loop would, just
  on another rank.

Because every per-query score array is produced by the same code on the
same inputs, the merged ranks — and therefore MRR / Hits@k — are
**bitwise identical** to the serial protocol, not merely close.  The same
argument covers triple classification (per-sample scoring is independent
of batch composition on the non-fused path).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.autograd.engine import SCORE_DTYPE
from repro.core.base import SubgraphScoringModel
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.parallel.pool import WorkerPool, register_op
from repro.parallel.sharding import (
    merge_shards,
    pack_query_lists,
    shard_list,
    unpack_query_lists,
)


@register_op("score_queries")
def _score_queries_op(state: Dict[str, Any], payload: Any) -> List[np.ndarray]:
    """Worker side: score each candidate list with the serial protocol's
    own entry point (``score_triples``) under the same uniform ``no_grad``
    guard — covers generic rule/embedding scorers that do not self-guard
    the way :class:`SubgraphScoringModel` does.

    The shard arrives packed as ``{"triples": (n, 3) array, "lengths":
    per-query lengths}`` (slim transport); a legacy list-of-lists payload
    is still accepted."""
    if isinstance(payload, dict):
        query_lists = unpack_query_lists(payload["triples"], payload["lengths"])
    else:
        query_lists = [
            [tuple(int(x) for x in triple) for triple in queries]
            for queries in payload
        ]
    model: SubgraphScoringModel = state["context"]["model"]
    graph: KnowledgeGraph = state["context"]["graph"]
    with no_grad():
        return [
            model.score_triples(graph, candidates) for candidates in query_lists
        ]


def score_query_lists(
    pool: WorkerPool, query_lists: Sequence[List[Triple]]
) -> List[np.ndarray]:
    """Per-query score arrays, order-aligned with ``query_lists``, computed
    across the pool's ranks (contiguous query shards)."""
    query_lists = list(query_lists)
    if not query_lists:
        return []
    payloads = []
    for shard in shard_list(query_lists, pool.workers):
        flat, lengths = pack_query_lists(shard)
        payloads.append({"triples": flat, "lengths": lengths})
    return merge_shards(pool.run("score_queries", payloads))


def score_triples_sharded(
    pool: WorkerPool, triples: Sequence[Triple]
) -> np.ndarray:
    """One flat score array for ``triples``, sharded across ranks.

    Per-sample scoring is independent of batch composition, so this is
    bitwise identical to one serial ``model.score_triples`` call.
    """
    triples = list(triples)
    if not triples:
        return np.empty(0, dtype=SCORE_DTYPE)
    payloads = []
    for shard in shard_list(triples, pool.workers):
        flat, lengths = pack_query_lists([shard])
        payloads.append({"triples": flat, "lengths": lengths})
    per_shard = merge_shards(pool.run("score_queries", payloads))
    return np.concatenate(
        [np.asarray(scores, dtype=SCORE_DTYPE).reshape(-1) for scores in per_shard]
    )


class ParallelEvaluator:
    """Both evaluation protocols over a pinned ``(model, graph)`` pool.

    A thin lifetime wrapper: fork once, run any number of evaluations
    against the same test graph, close.  Results are bitwise identical to
    :func:`repro.eval.protocol.evaluate_entity_prediction` /
    ``evaluate_triple_classification`` with the same RNG.
    """

    def __init__(
        self,
        model: SubgraphScoringModel,
        graph: KnowledgeGraph,
        workers: int = 1,
        pool: Optional[WorkerPool] = None,
        seed: int = 0,
        task_deadline_s: Optional[float] = None,
        max_task_retries: int = 2,
    ) -> None:
        self.model = model
        self.graph = graph
        if pool is None:
            graph.warm()  # share the CSR with the children copy-on-write
            pool = WorkerPool(
                workers,
                context={"model": model, "graph": graph},
                seed=seed,
                task_deadline_s=task_deadline_s,
                max_task_retries=max_task_retries,
            )
            self._owns_pool = True
        else:
            self._owns_pool = False
        self.pool = pool

    # ------------------------------------------------------------------
    def entity_prediction(
        self,
        targets,
        rng: np.random.Generator,
        num_negatives: int = 49,
    ):
        from repro.eval.protocol import evaluate_entity_prediction

        return evaluate_entity_prediction(
            self.model,
            self.graph,
            targets,
            rng,
            num_negatives=num_negatives,
            pool=self.pool,
        )

    def triple_classification(self, targets, rng: np.random.Generator):
        from repro.eval.protocol import evaluate_triple_classification

        return evaluate_triple_classification(
            self.model, self.graph, targets, rng, pool=self.pool
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
