"""Data-parallel training: shard the batch, average the gradients.

The classic parameter-server layout, specialised to this repo's numpy
engine:

1. the parent samples the batch and its negatives (the *same* RNG stream
   as the serial :class:`~repro.train.trainer.Trainer`, so the data order
   is identical for a given seed);
2. the positive/negative pairs are split into contiguous shards, one per
   rank; each worker loads the broadcast parameters, runs the fused
   one-pass forward/backward on its shard, and ships back
   ``(loss, num_pairs, gradients)``;
3. the parent reduces the shard gradients with a pair-count-weighted
   average, which reconstructs the full-batch gradient of the mean-reduced
   margin loss exactly (up to float summation order):
   ``∇L = Σ_k (n_k / N) ∇L_k``;
4. gradient clipping and the Adam step run once, in the parent, on the
   authoritative parameters — workers never hold optimizer state.

Parameter transport is a two-backend switch
(``ParallelConfig.backend``, env ``REPRO_PARALLEL_BACKEND``):

* ``"pickle"`` — the compatibility path: the full state dict rides inside
  every shard payload;
* ``"shm"`` — zero-copy: the parent publishes the weights into a
  :class:`~repro.parallel.shm.SharedParamStore` segment once per step and
  payloads carry only a small **param-version stamp**; workers bind their
  parameters to read-only views of the segment at first dispatch (and
  again after a respawn) and read the current weights without any
  serialisation.  Gradients return through preallocated per-rank shared
  buffers, so result payloads shrink to ``(loss, pairs, present names)``
  and the weighted reduction runs over views.

Both backends are bitwise-identical: the worker computes on the same
parameter values either way, and the reduction consumes the same gradient
bits (pinned by ``tests/test_parallel_equivalence.py``).

For full-batch gradients this is exact-equivalent to the serial one-pass
step (pinned, with dropout off, by ``tests/test_parallel_equivalence.py``);
with dropout on, per-rank RNG streams pinned from ``(seed, rank)`` make two
identical parallel runs produce bitwise-identical checkpoints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import clip_grad_norm, margin_ranking_loss
from repro.parallel.pool import WorkerPool, register_op
from repro.parallel.sharding import pack_triples, shard_list, unpack_triples
from repro.parallel.shm import SharedGraphCSR, SharedParamStore
from repro.train.trainer import Trainer, TrainingHistory


@register_op("train_step")
def _train_step_op(state: Dict[str, Any], payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker side of one data-parallel step: forward/backward on a shard.

    Resolves the parameters by backend — ``pickle`` loads the broadcast
    state dict, ``shm`` checks the payload's param-version stamp against
    the shared segment and (once per spawned worker) binds the model's
    parameters to read-only segment views — then scores the shard's
    positives and negatives (one merged pass when ``one_pass`` — the same
    layout as the serial step) and backpropagates the shard's
    mean-reduced margin loss.  Gradients return inline (pickle) or
    through the rank's preallocated shared buffer (shm).
    """
    positives = unpack_triples(payload["positives"])
    negatives = unpack_triples(payload["negatives"])
    shm = payload.get("backend") == "shm"
    if not positives:
        empty: Dict[str, Any] = {"loss": 0.0, "pairs": 0}
        if shm:
            empty["grad_names"] = []
        else:
            empty["grads"] = {}
        return empty
    model = state["context"]["model"]
    graph = state["context"]["graph"]
    if shm:
        store: SharedParamStore = state["context"]["param_store"]
        store.check_version(payload["param_version"])
        if not state.get("inline") and not state.get("shm_bound"):
            # Once per (re)spawned worker: afterwards the read-only views
            # track every publish with no further work.  Inline pools run
            # on the parent's authoritative parameters and must not be
            # rebound to read-only views.
            store.bind_model(model)
            state["shm_bound"] = True
    else:
        model.load_state_dict(payload["params"])
    model.train()
    model.zero_grad()
    score_fn = model.score_batch_fused if payload["use_fused"] else model.score_batch
    if payload["one_pass"]:
        scores = score_fn(graph, list(positives) + list(negatives))
        pos_scores = scores[: len(positives)]
        neg_scores = scores[len(positives) :]
    else:
        pos_scores = score_fn(graph, positives)
        neg_scores = score_fn(graph, negatives)
    loss = margin_ranking_loss(pos_scores, neg_scores, margin=payload["margin"])
    loss.backward()
    grads = {
        name: param.grad for name, param in model.named_parameters()
    }
    if shm:
        present = store.write_grads(state["rank"], grads)
        return {"loss": float(loss.data), "pairs": len(positives), "grad_names": present}
    return {
        "loss": float(loss.data),
        "pairs": len(positives),
        "grads": {
            name: (grad.copy() if grad is not None else None)
            for name, grad in grads.items()
        },
    }


def reduce_gradients(
    shard_results: List[Dict[str, Any]]
) -> Tuple[Dict[str, Optional[np.ndarray]], float, int]:
    """Pair-count-weighted average of shard gradients (and losses).

    A parameter untouched by every shard stays ``None`` (the optimizer
    skips it, matching the serial backward); a shard that never saw the
    parameter contributes an implicit zero, exactly as its pairs contribute
    zero gradient inside a serial full-batch backward.

    The accumulation never mutates a shard's gradient array: the first
    contribution allocates a fresh ``weight * grad`` product, and only
    that parent-owned accumulator is updated in place afterwards.  That
    aliasing guarantee is load-bearing for the shm backend, whose shard
    gradients are read-only views of the per-rank shared buffers.
    """
    total_pairs = sum(result["pairs"] for result in shard_results)
    if total_pairs == 0:
        return {}, 0.0, 0
    reduced: Dict[str, Optional[np.ndarray]] = {}
    loss = 0.0
    for result in shard_results:
        if result["pairs"] == 0:
            continue
        weight = result["pairs"] / total_pairs
        loss += weight * result["loss"]
        for name, grad in result["grads"].items():
            if grad is None:
                reduced.setdefault(name, None)
                continue
            current = reduced.get(name)
            if current is None:
                reduced[name] = weight * grad
            else:
                current += weight * grad
    return reduced, loss, total_pairs


class DataParallelTrainer(Trainer):
    """Margin-ranking trainer whose batch step fans out over a worker pool.

    Drop-in for :class:`~repro.train.trainer.Trainer` — same constructor,
    same :meth:`fit` contract — reading the worker count (and the
    parameter-transport backend) from ``config.parallel``.  Batch
    composition, negative sampling, gradient clipping, the Adam
    trajectory, validation, and early stopping all run in the parent
    exactly as in the serial trainer; only the forward/backward of each
    batch is sharded.
    """

    def __init__(self, *args, pool: Optional[WorkerPool] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pool = pool
        self._owns_pool = pool is None
        self._store: Optional[SharedParamStore] = None
        self._backend: Optional[str] = None

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        parallel = self.config.parallel
        backend = parallel.resolved_backend()
        if self._pool is None:
            # Warm the adjacency BEFORE forking so the workers share the
            # parent's CSR pages copy-on-write.
            self.graph.warm()
            context: Dict[str, Any] = {"model": self.model, "graph": self.graph}
            resources: List[Any] = []
            if backend == "shm":
                # Segments must exist before the fork: workers inherit
                # the mapping, and respawned ranks remap the same
                # segments the same way (bitwise-faithful re-runs).
                self._store = SharedParamStore(
                    self.model.state_dict(), parallel.workers
                )
                context["param_store"] = self._store
                resources = [self._store, SharedGraphCSR(self.graph)]
            self._pool = WorkerPool(
                parallel.workers,
                context=context,
                seed=self.config.seed,
                task_deadline_s=parallel.task_deadline_s,
                max_task_retries=parallel.max_task_retries,
                resources=resources,
            )
        elif backend == "shm":
            # An externally-owned pool can only go zero-copy if it was
            # forked around a parameter store; otherwise fall back to the
            # payload broadcast rather than dispatching unresolvable
            # version stamps.
            self._store = self._pool.context.get("param_store")
            if self._store is None:
                backend = "pickle"
        self._backend = backend
        try:
            return super().fit()
        finally:
            if self._owns_pool and self._pool is not None:
                self._pool.close()  # closes the shared segments too
                self._pool = None
                self._store = None

    # ------------------------------------------------------------------
    def _batch_step(self, batch, negatives) -> Optional[float]:
        """One data-parallel step: broadcast → shard forward/backward →
        weighted gradient average → parent-side clip + Adam.

        Overrides only the step-execution hook; the epoch's RNG stream
        (subsampling, permutation, negatives) stays owned by the base
        :meth:`Trainer._run_epoch`, so the data order matches the serial
        trainer batch for batch.
        """
        config = self.config
        pool = self._pool
        assert pool is not None, "DataParallelTrainer.fit() owns the pool"
        backend = self._backend or "pickle"
        if backend == "shm":
            assert self._store is not None, "shm backend requires a param store"
            broadcast: Dict[str, Any] = {
                "backend": "shm",
                "param_version": self._store.publish_model(self.model),
            }
        else:
            broadcast = {"backend": "pickle", "params": self.model.state_dict()}
        pos_shards = shard_list(list(batch), pool.workers)
        neg_shards = shard_list(list(negatives), pool.workers)
        payloads = [
            dict(
                broadcast,
                positives=pack_triples(pos_shard),
                negatives=pack_triples(neg_shard),
                margin=config.margin,
                use_fused=config.use_fused_scoring,
                one_pass=config.one_pass_step,
            )
            for pos_shard, neg_shard in zip(pos_shards, neg_shards)
        ]
        results = pool.run("train_step", payloads)
        if backend == "shm":
            results = [
                {
                    "loss": result["loss"],
                    "pairs": result["pairs"],
                    "grads": self._store.grad_views(rank, result["grad_names"]),
                }
                for rank, result in enumerate(results)
            ]
        grads, loss, total_pairs = reduce_gradients(results)
        if total_pairs == 0:
            return None
        self.optimizer.zero_grad()
        for name, param in self.model.named_parameters():
            param.grad = grads.get(name)
        clip_grad_norm(self.model.parameters(), config.clip_norm)
        self.optimizer.step()
        return loss
