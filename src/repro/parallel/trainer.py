"""Data-parallel training: shard the batch, average the gradients.

The classic parameter-server layout, specialised to this repo's numpy
engine:

1. the parent samples the batch and its negatives (the *same* RNG stream
   as the serial :class:`~repro.train.trainer.Trainer`, so the data order
   is identical for a given seed);
2. the positive/negative pairs are split into contiguous shards, one per
   rank; each worker loads the broadcast parameters, runs the fused
   one-pass forward/backward on its shard, and ships back
   ``(loss, num_pairs, gradients)``;
3. the parent reduces the shard gradients with a pair-count-weighted
   average, which reconstructs the full-batch gradient of the mean-reduced
   margin loss exactly (up to float summation order):
   ``∇L = Σ_k (n_k / N) ∇L_k``;
4. gradient clipping and the Adam step run once, in the parent, on the
   authoritative parameters — workers never hold optimizer state.

For full-batch gradients this is exact-equivalent to the serial one-pass
step (pinned, with dropout off, by ``tests/test_parallel_equivalence.py``);
with dropout on, per-rank RNG streams pinned from ``(seed, rank)`` make two
identical parallel runs produce bitwise-identical checkpoints.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd import clip_grad_norm, margin_ranking_loss
from repro.parallel.pool import WorkerPool, register_op
from repro.parallel.sharding import shard_list
from repro.train.trainer import Trainer, TrainingHistory


@register_op("train_step")
def _train_step_op(state: Dict[str, Any], payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker side of one data-parallel step: forward/backward on a shard.

    Loads the broadcast parameters, scores the shard's positives and
    negatives (one merged pass when ``one_pass`` — the same layout as the
    serial step), backpropagates the shard's mean-reduced margin loss, and
    returns the loss, the pair count, and every parameter gradient.
    """
    positives = payload["positives"]
    negatives = payload["negatives"]
    if not positives:
        return {"loss": 0.0, "pairs": 0, "grads": {}}
    model = state["context"]["model"]
    graph = state["context"]["graph"]
    model.load_state_dict(payload["params"])
    model.train()
    model.zero_grad()
    score_fn = model.score_batch_fused if payload["use_fused"] else model.score_batch
    if payload["one_pass"]:
        scores = score_fn(graph, list(positives) + list(negatives))
        pos_scores = scores[: len(positives)]
        neg_scores = scores[len(positives) :]
    else:
        pos_scores = score_fn(graph, positives)
        neg_scores = score_fn(graph, negatives)
    loss = margin_ranking_loss(pos_scores, neg_scores, margin=payload["margin"])
    loss.backward()
    grads = {
        name: (param.grad.copy() if param.grad is not None else None)
        for name, param in model.named_parameters()
    }
    return {"loss": float(loss.data), "pairs": len(positives), "grads": grads}


def reduce_gradients(
    shard_results: List[Dict[str, Any]]
) -> Tuple[Dict[str, Optional[np.ndarray]], float, int]:
    """Pair-count-weighted average of shard gradients (and losses).

    A parameter untouched by every shard stays ``None`` (the optimizer
    skips it, matching the serial backward); a shard that never saw the
    parameter contributes an implicit zero, exactly as its pairs contribute
    zero gradient inside a serial full-batch backward.
    """
    total_pairs = sum(result["pairs"] for result in shard_results)
    if total_pairs == 0:
        return {}, 0.0, 0
    reduced: Dict[str, Optional[np.ndarray]] = {}
    loss = 0.0
    for result in shard_results:
        if result["pairs"] == 0:
            continue
        weight = result["pairs"] / total_pairs
        loss += weight * result["loss"]
        for name, grad in result["grads"].items():
            if grad is None:
                reduced.setdefault(name, None)
                continue
            current = reduced.get(name)
            if current is None:
                reduced[name] = weight * grad
            else:
                current += weight * grad
    return reduced, loss, total_pairs


class DataParallelTrainer(Trainer):
    """Margin-ranking trainer whose batch step fans out over a worker pool.

    Drop-in for :class:`~repro.train.trainer.Trainer` — same constructor,
    same :meth:`fit` contract — reading the worker count from
    ``config.parallel.workers``.  Batch composition, negative sampling,
    gradient clipping, the Adam trajectory, validation, and early stopping
    all run in the parent exactly as in the serial trainer; only the
    forward/backward of each batch is sharded.
    """

    def __init__(self, *args, pool: Optional[WorkerPool] = None, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pool = pool
        self._owns_pool = pool is None

    # ------------------------------------------------------------------
    def fit(self) -> TrainingHistory:
        if self._pool is None:
            # Warm the adjacency BEFORE forking so the workers share the
            # parent's CSR pages copy-on-write.
            self.graph.warm()
            self._pool = WorkerPool(
                self.config.parallel.workers,
                context={"model": self.model, "graph": self.graph},
                seed=self.config.seed,
                task_deadline_s=self.config.parallel.task_deadline_s,
                max_task_retries=self.config.parallel.max_task_retries,
            )
        try:
            return super().fit()
        finally:
            if self._owns_pool and self._pool is not None:
                self._pool.close()
                self._pool = None

    # ------------------------------------------------------------------
    def _batch_step(self, batch, negatives) -> Optional[float]:
        """One data-parallel step: broadcast → shard forward/backward →
        weighted gradient average → parent-side clip + Adam.

        Overrides only the step-execution hook; the epoch's RNG stream
        (subsampling, permutation, negatives) stays owned by the base
        :meth:`Trainer._run_epoch`, so the data order matches the serial
        trainer batch for batch.
        """
        config = self.config
        pool = self._pool
        assert pool is not None, "DataParallelTrainer.fit() owns the pool"
        params = self.model.state_dict()
        pos_shards = shard_list(batch, pool.workers)
        neg_shards = shard_list(list(negatives), pool.workers)
        payloads = [
            {
                "params": params,
                "positives": pos_shard,
                "negatives": neg_shard,
                "margin": config.margin,
                "use_fused": config.use_fused_scoring,
                "one_pass": config.one_pass_step,
            }
            for pos_shard, neg_shard in zip(pos_shards, neg_shards)
        ]
        results = pool.run("train_step", payloads)
        grads, loss, total_pairs = reduce_gradients(results)
        if total_pairs == 0:
            return None
        self.optimizer.zero_grad()
        for name, param in self.model.named_parameters():
            param.grad = grads.get(name)
        clip_grad_norm(self.model.parameters(), config.clip_norm)
        self.optimizer.step()
        return loss
