"""Rank-addressed multiprocessing worker pool (the parallel substrate).

Design
------
``WorkerPool`` starts ``workers`` persistent processes with the ``fork``
start method.  Heavy read-only state (the :class:`KnowledgeGraph`, the
model, the serving registry) is handed to the children *by inheritance*: it
is stashed in a module global immediately before forking, so children see
it copy-on-write without ever pickling a graph or a model.  Only task
payloads (triples, parameter arrays) and results (samples, scores,
gradients) cross the process boundary.

Unlike ``multiprocessing.Pool``, tasks are addressed **by rank**: shard
``k`` always runs on worker ``k``.  That buys three properties the parity
and determinism suites rely on:

* deterministic shard → process placement (no scheduler races);
* per-rank RNG streams pinned at startup from ``(seed, rank)`` via
  :mod:`repro.utils.seeding`, so dropout draws are reproducible run to run;
* per-rank sample caches stay coherent: the same rank re-prepares the same
  shard across epochs.

Operations are plain functions registered with :func:`register_op`; they
receive a per-worker ``state`` dict (``context`` + ``rank`` + ``rng``) and
the payload.  Consumer modules (:mod:`repro.parallel.prepare`,
:mod:`repro.parallel.trainer`, :mod:`repro.parallel.evaluation`,
:mod:`repro.parallel.serving`) register theirs at import time, which the
forked children inherit.

``workers=1`` (the default everywhere) never forks: ops run inline in the
parent through the very same dispatch path, so the serial configuration is
untouched by this subsystem while still exercising one code path in tests.
On platforms without ``fork`` the pool degrades to inline execution
rather than failing (gated, not assumed — see :func:`fork_available`).

Fault tolerance
---------------
The pool is a **supervisor**, not just a dispatcher.  Dispatch stamps every
task with a pool-global sequence number and an optional absolute deadline;
collection is event-driven (``multiprocessing.connection.wait`` over the
result pipe and every worker's liveness sentinel), so a crashed worker
wakes the supervisor immediately instead of after a poll interval.  On a
worker death the supervisor **respawns the rank with the same (seed, rank)
RNG derivation** — so a re-run of a lost task produces bitwise-identical
results for RNG-free and freshly-re-seeded ops — and requeues that rank's
in-flight task, up to ``max_task_retries`` times, after which it raises
:class:`WorkerError` carrying the task's full attempt provenance.  A task
that exceeds its deadline gets its (presumed wedged) worker escalated
terminate → kill, a respawn, and a requeue through the same path.  The
pool stays usable after a :class:`WorkerError`: stale results from
superseded dispatches are recognised by sequence number and discarded
(their metric deltas are still merged — observability never loses work
that happened).

Operation errors are **not** retried: an op raising is deterministic
application behaviour, and retrying it would just fail again (and would
mask real bugs).  Only infrastructure failures — dead workers, expired
deadlines — trigger the respawn/requeue path.

Chaos runs inject failures through :mod:`repro.faults`: the supervisor
consults the active :class:`~repro.faults.FaultPlan` at dispatch time,
keyed by ``(op, rank, per-rank dispatch index)``, and ships the matched
directive with the task so the worker kills itself / raises / sleeps /
drops its result at a deterministic, replayable point.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
from multiprocessing import connection
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import FaultInjected, FaultPlan, active_plan
from repro.obs import get_registry
from repro.utils.seeding import worker_rng

#: Handed to forked children by COW inheritance; set only inside
#: :meth:`WorkerPool._spawn` for the duration of the fork.
_FORK_CONTEXT: Optional[Dict[str, Any]] = None

#: Serialises every write/fork cycle on :data:`_FORK_CONTEXT`.  Two pools
#: in one process — a serving scoring pool plus a ParallelEvaluator, or a
#: supervisor respawn racing another pool's start — would otherwise race
#: on the module global and could fork a child with the *wrong* context.
_FORK_LOCK = threading.Lock()

#: Registered operations: name -> fn(state, payload).
_OPS: Dict[str, Callable[[Dict[str, Any], Any], Any]] = {}

_STOP = None  # queue sentinel

#: Fault kinds an inline (single-process) pool can execute: it cannot
#: crash the parent or lose a message that never crosses a process.
_INLINE_KINDS = ("error", "latency")


class WorkerError(RuntimeError):
    """An operation raised (or a worker died past its retry budget) inside
    the pool; carries the rank, the remote traceback or failure reason, and
    the task's full attempt provenance."""


def register_op(name: str) -> Callable:
    """Decorator registering a worker operation under ``name``."""

    def decorate(fn: Callable[[Dict[str, Any], Any], Any]) -> Callable:
        if name in _OPS and _OPS[name] is not fn:  # pragma: no cover - guard
            raise ValueError(f"operation {name!r} already registered")
        _OPS[name] = fn
        return fn

    return decorate


def fork_available() -> bool:
    """Whether real process parallelism is available on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pin_rngs(value: Any, seed: int, rank: int, counter: List[int]) -> None:
    """Recursively repoint every ``_rng`` attribute under ``value`` to a
    fresh per-rank stream.

    Models may hold RNGs at any depth (e.g. a dropout submodule with its
    own generator), and a fork-inherited generator would advance in
    lockstep across all ranks — correlated draws.  Each pinned object gets
    a distinct stream derived from ``(seed, rank, discovery index)``;
    discovery order is the module tree's attribute insertion order, which
    is construction-deterministic, so runs remain reproducible.  A
    respawned rank repeats the identical derivation, which is what makes
    post-crash re-runs bitwise-reproducible.
    """
    if hasattr(value, "_rng"):
        value._rng = worker_rng(seed, rank, counter[0])
        counter[0] += 1
    # Walk Module trees (duck-typed on named_parameters to avoid importing
    # the autograd package here) through their instance attributes.
    if hasattr(value, "named_parameters"):
        for child in vars(value).values():
            if hasattr(child, "named_parameters") or hasattr(child, "_rng"):
                _pin_rngs(child, seed, rank, counter)
            elif isinstance(child, (list, tuple)):
                for item in child:
                    if hasattr(item, "named_parameters") or hasattr(item, "_rng"):
                        _pin_rngs(item, seed, rank, counter)


def _apply_directive(directive: Dict[str, Any]) -> None:
    """Execute a fault directive's pre-op effect inside the worker."""
    kind = directive.get("kind")
    if kind == "kill":
        # The honest crash: no atexit, no queue flush, no goodbye.
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "latency":
        time.sleep(float(directive.get("latency_s", 0.0)))
    elif kind == "error":
        raise FaultInjected(str(directive.get("message", "injected fault")))


def _worker_main(rank: int, seed: int, tasks, results) -> None:
    """Child process loop: seeded at startup, then task → dispatch → result."""
    context = _FORK_CONTEXT or {}
    state = {"context": context, "rank": rank, "rng": worker_rng(seed, rank)}
    # Pin every RNG reachable from the context to this rank's streams;
    # without this all forked children would continue the parent's stream
    # in lockstep.
    counter = [0]
    for value in context.values():
        _pin_rngs(value, seed, rank, counter)
    # The fork inherited a COW copy of the parent's metrics registry; zero
    # it so the per-task deltas shipped below don't double-count whatever
    # the parent had accumulated before the pool started.
    registry = get_registry()
    registry.reset()
    while True:
        task = tasks.get()
        if task is _STOP:
            return
        task_id, seq, op, payload, directive = task
        try:
            if directive is not None:
                _apply_directive(directive)
            value = _OPS[op](state, payload)
            delta = registry.collect(reset=True)
            if directive is not None and directive.get("kind") == "drop":
                # Simulate a lost message: the work happened, the result
                # (and its metrics delta) never reaches the parent.  Only
                # a task deadline can rescue the caller.
                continue
            results.put((task_id, seq, rank, "ok", value, delta))
        except BaseException as error:  # noqa: BLE001 — shipped to parent
            # Reset anyway: a later successful task must not resurrect the
            # failed task's partial counts in its delta.
            registry.reset()
            results.put(
                (
                    task_id,
                    seq,
                    rank,
                    "error",
                    f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
                    None,
                )
            )


class WorkerPool:
    """``workers`` rank-addressed processes over a shared read-only context.

    Parameters
    ----------
    workers:
        Number of ranks.  ``1`` runs every op inline (no processes).
    context:
        Read-only objects the ops need (graph, model, registry ...).
        Inherited by fork — mutations after construction are NOT visible
        to the workers; ship mutable state (e.g. parameters) in payloads.
    seed:
        Base seed for the per-rank RNG streams.
    task_deadline_s:
        Default per-task deadline.  A task that has not produced a result
        within this budget has its worker killed, respawned, and the task
        requeued (counted against the retry budget).  ``None`` (default)
        disables deadlines; ``run()`` can override per call.
    max_task_retries:
        How many times a task lost to a dead worker or an expired deadline
        is re-dispatched before the pool gives up with :class:`WorkerError`.
    close_timeout_s:
        Grace period :meth:`close` gives each worker to exit on its own
        before escalating terminate → kill.
    resources:
        Objects with a ``close()`` the pool owns — shared-memory segments
        (:class:`repro.parallel.shm.SharedParamStore` /
        :class:`~repro.parallel.shm.SharedGraphCSR`) whose lifetime must
        cover every (re)spawned worker.  Closed after the workers during
        :meth:`close`, never before: a respawned rank remaps the same
        segments by fork inheritance, which is what keeps post-crash
        re-runs bitwise identical.
    """

    def __init__(
        self,
        workers: int,
        context: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        task_deadline_s: Optional[float] = None,
        max_task_retries: int = 2,
        close_timeout_s: float = 5.0,
        resources: Sequence[Any] = (),
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_task_retries < 0:
            raise ValueError(f"max_task_retries must be >= 0, got {max_task_retries}")
        self.workers = int(workers)
        self.seed = int(seed)
        self.context: Dict[str, Any] = dict(context or {})
        self.task_deadline_s = task_deadline_s
        self.max_task_retries = int(max_task_retries)
        self.close_timeout_s = float(close_timeout_s)
        self._resources = list(resources)
        self._inline = self.workers == 1 or not fork_available()
        self._processes: List[multiprocessing.Process] = []
        self._task_queues: List[Any] = []
        self._results: Optional[Any] = None
        self._closed = False
        # Pool-global dispatch sequence: every (re-)dispatch gets a fresh
        # number, and only the result matching the *current* dispatch of a
        # task is accepted.  This is what keeps the pool usable after a
        # WorkerError — stragglers from superseded dispatches or aborted
        # runs are recognised and discarded.
        self._seq = 0
        # Per-(op, rank) dispatch counters: the task_index axis of the
        # fault-plan key, so chaos specs address "the Nth prepare dispatched
        # to rank 2" deterministically.
        self._dispatch_counts: Dict[Tuple[str, int], int] = {}
        # One dispatch at a time: task ids are per-call and the results
        # queue is shared, so overlapping run() calls (e.g. the scheduler
        # thread and a direct session.score) must serialise here.
        self._run_lock = threading.Lock()
        if not self._inline:
            self._start_processes()

    # ------------------------------------------------------------------
    def _start_processes(self) -> None:
        ctx = multiprocessing.get_context("fork")
        self._results = ctx.Queue()
        self._task_queues = [None] * self.workers
        self._processes = [None] * self.workers
        for rank in range(self.workers):
            self._spawn(rank)

    def _spawn(self, rank: int) -> None:
        """(Re)start the worker for ``rank`` with the same (seed, rank) RNG
        derivation a fresh pool would use — respawns are bitwise-faithful.

        A respawn gets a fresh task queue: the old one may still hold a
        task dispatched before the death was noticed, and re-delivering it
        would double-execute (the supervisor requeues lost tasks itself).
        """
        global _FORK_CONTEXT
        ctx = multiprocessing.get_context("fork")
        old = self._processes[rank]
        if old is not None:
            old.join(timeout=0.2)  # reap the zombie; it is already dead
        tasks = ctx.SimpleQueue()
        # The whole write → fork → clear cycle holds the module lock: a
        # concurrent _spawn from another pool (or a supervisor respawn)
        # must not overwrite the context between our write and our fork.
        with _FORK_LOCK:
            _FORK_CONTEXT = self.context
            try:
                process = ctx.Process(
                    target=_worker_main,
                    args=(rank, self.seed, tasks, self._results),
                    name=f"repro-parallel-{rank}",
                    daemon=True,
                )
                process.start()
            finally:
                _FORK_CONTEXT = None
        self._task_queues[rank] = tasks
        self._processes[rank] = process

    # ------------------------------------------------------------------
    @property
    def is_inline(self) -> bool:
        """True when ops run in the parent process (workers=1 or no fork)."""
        return self._inline

    def run(
        self,
        op: str,
        payloads: Sequence[Any],
        deadline_s: Optional[float] = None,
    ) -> List[Any]:
        """Run ``op`` with ``payloads[k]`` on rank ``k``; results aligned
        with ``payloads``.  At most ``workers`` payloads per call.

        ``deadline_s`` overrides the pool's default per-task deadline for
        this call only.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        payloads = list(payloads)
        if len(payloads) > self.workers:
            raise ValueError(
                f"{len(payloads)} payloads for {self.workers} workers; "
                "shard the work first (repro.parallel.sharding)"
            )
        if op not in _OPS:
            raise KeyError(f"unknown operation {op!r}")
        if self._inline:
            return self._run_inline(op, payloads)
        with self._run_lock:
            return self._run_supervised(op, payloads, deadline_s)

    def _run_inline(self, op: str, payloads: List[Any]) -> List[Any]:
        plan = active_plan()
        # ``inline`` tells ops they run in the parent on the authoritative
        # objects — e.g. the shm train step must not rebind the parent
        # model's parameters to read-only shared views.
        state = {"context": self.context, "rank": 0, "rng": None, "inline": True}
        results: List[Any] = []
        for payload in payloads:
            spec = plan.take(op, 0, self._next_index(op, 0), kinds=_INLINE_KINDS)
            if spec is not None:
                if spec.kind == "latency":
                    time.sleep(spec.latency_s)
                else:
                    raise FaultInjected(spec.message)
            results.append(_OPS[op](state, payload))
        return results

    # ------------------------------------------------------------------
    def _next_index(self, op: str, rank: int) -> int:
        key = (op, rank)
        index = self._dispatch_counts.get(key, 0)
        self._dispatch_counts[key] = index + 1
        return index

    def _dispatch(
        self,
        op: str,
        task_id: int,
        record: Dict[str, Any],
        plan: FaultPlan,
        deadline_budget: Optional[float],
    ) -> None:
        rank = record["rank"]
        spec = plan.take(op, rank, self._next_index(op, rank))
        directive = spec.directive() if spec is not None else None
        self._seq += 1
        record["seq"] = self._seq
        record["attempts"] += 1
        record["deadline"] = (
            time.monotonic() + deadline_budget if deadline_budget else None
        )
        self._task_queues[rank].put(
            (task_id, record["seq"], op, record["payload"], directive)
        )

    def _run_supervised(
        self, op: str, payloads: List[Any], deadline_s: Optional[float]
    ) -> List[Any]:
        registry = get_registry()
        plan = active_plan()
        budget = deadline_s if deadline_s is not None else self.task_deadline_s
        results: List[Any] = [None] * len(payloads)
        pending: Dict[int, Dict[str, Any]] = {
            task_id: {
                "payload": payload,
                "rank": task_id,  # rank-addressed: shard k on worker k
                "seq": None,
                "attempts": 0,
                "deadline": None,
                "history": [],
            }
            for task_id, payload in enumerate(payloads)
        }
        for task_id in range(len(payloads)):
            self._dispatch(op, task_id, pending[task_id], plan, budget)
        while pending:
            event, data = self._next_event(self._poll_timeout(pending))
            if event == "result":
                task_id, seq, rank, status, value, delta = data
                # Merge the rank's metrics delta before anything else:
                # observability must not lose the work that *did* happen,
                # even for stale or failed dispatches.
                if delta:
                    registry.merge(delta)
                record = pending.get(task_id)
                if record is None or record["seq"] != seq:
                    continue  # straggler from a superseded dispatch
                if status != "ok":
                    record["history"].append(f"rank {rank}: operation raised")
                    raise WorkerError(
                        self._provenance(
                            op,
                            task_id,
                            record,
                            f"operation raised on rank {rank}:\n{value}",
                        )
                    )
                results[task_id] = value
                del pending[task_id]
            elif event == "dead":
                rank = data
                lost = [t for t, r in pending.items() if r["rank"] == rank]
                self._spawn(rank)
                registry.counter("parallel.pool.restarts").inc()
                for task_id in lost:
                    record = pending[task_id]
                    record["history"].append(
                        f"rank {rank} died (attempt {record['attempts']})"
                    )
                    self._retry_or_fail(op, task_id, record, plan, budget)
            else:  # timeout — sweep for expired task deadlines
                now = time.monotonic()
                expired = [
                    t
                    for t, r in pending.items()
                    if r["deadline"] is not None and now >= r["deadline"]
                ]
                for task_id in expired:
                    record = pending[task_id]
                    rank = record["rank"]
                    registry.counter("parallel.pool.deadline_expired").inc()
                    record["history"].append(
                        f"rank {rank} exceeded the {budget:.3f}s deadline "
                        f"(attempt {record['attempts']})"
                    )
                    self._kill_rank(rank)
                    self._spawn(rank)
                    registry.counter("parallel.pool.restarts").inc()
                    self._retry_or_fail(op, task_id, record, plan, budget)
        return results

    def _retry_or_fail(
        self,
        op: str,
        task_id: int,
        record: Dict[str, Any],
        plan: FaultPlan,
        budget: Optional[float],
    ) -> None:
        if record["attempts"] > self.max_task_retries:
            raise WorkerError(
                self._provenance(
                    op,
                    task_id,
                    record,
                    f"retry budget exhausted ({self.max_task_retries} retries)",
                )
            )
        get_registry().counter("parallel.pool.retries").inc()
        self._dispatch(op, task_id, record, plan, budget)

    def _provenance(
        self, op: str, task_id: int, record: Dict[str, Any], reason: str
    ) -> str:
        history = "; ".join(record["history"]) or "first attempt"
        return (
            f"worker {record['rank']} failed running {op!r} "
            f"(task {task_id}, {record['attempts']} attempt(s)): {reason}\n"
            f"attempt history: {history}"
        )

    @staticmethod
    def _poll_timeout(pending: Dict[int, Dict[str, Any]]) -> Optional[float]:
        deadlines = [
            record["deadline"]
            for record in pending.values()
            if record["deadline"] is not None
        ]
        if not deadlines:
            return None  # results and deaths both wake the event wait
        return max(0.0, min(deadlines) - time.monotonic()) + 0.005

    def _next_event(self, timeout: Optional[float]):
        """Block until a result arrives, a worker dies, or the deadline
        horizon passes.  Event-driven: a SIGKILLed worker closes its
        liveness sentinel and wakes this immediately — no busy-poll."""
        reader = getattr(self._results, "_reader", None)
        if reader is not None:
            # Queued results first: a worker that answered and *then* died
            # must deliver its answer before its death is handled, or the
            # supervisor would requeue work that already completed.
            if reader.poll(0):
                try:
                    return ("result", self._results.get(timeout=0.25))
                except Empty:  # repro-lint: disable=RL009 not a swallow: a feeder thread signalled the pipe before its message completed; fall through to the death sweep and event wait below
                    pass
            # Then anyone already dead — a worker that died before this
            # call has no future sentinel event to wake the wait below.
            for rank, process in enumerate(self._processes):
                if process is not None and not process.is_alive():
                    return ("dead", rank)
            live = [
                (process.sentinel, rank)
                for rank, process in enumerate(self._processes)
                if process is not None
            ]
            ready = connection.wait(
                [reader] + [sentinel for sentinel, _ in live], timeout=timeout
            )
            if reader in ready:
                try:
                    # The feeder thread of a killed worker can signal the
                    # pipe without a complete message; bounded get() falls
                    # through to the liveness sweep instead of hanging.
                    return ("result", self._results.get(timeout=0.25))
                except Empty:
                    ready = [entry for entry in ready if entry is not reader]
            for sentinel, rank in live:
                if sentinel in ready and not self._processes[rank].is_alive():
                    return ("dead", rank)
            return ("timeout", None)
        # Platforms whose Queue hides the reader connection: degrade to a
        # short-timeout poll so death detection still happens sub-second.
        try:
            bounded = 0.1 if timeout is None else min(timeout, 0.1)
            return ("result", self._results.get(timeout=bounded))
        except Empty:
            for rank, process in enumerate(self._processes):
                if process is not None and not process.is_alive():
                    return ("dead", rank)
            return ("timeout", None)

    def _kill_rank(self, rank: int) -> None:
        """Escalating stop for a wedged worker: terminate, then SIGKILL."""
        process = self._processes[rank]
        if process is None or not process.is_alive():
            return
        process.terminate()
        process.join(timeout=0.5)
        if process.is_alive():  # pragma: no cover - SIGTERM ignored
            process.kill()
            process.join(timeout=0.5)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers (idempotent).  Escalates join → terminate →
        kill so a wedged or fault-injected worker cannot hang teardown."""
        if self._closed:
            return
        self._closed = True
        for tasks in self._task_queues:
            if tasks is None:
                continue
            try:
                tasks.put(_STOP)
            except (OSError, ValueError):  # repro-lint: disable=RL009 teardown race: the queue pipe may already be torn down by a dead worker or interpreter shutdown, and there is nobody left to notify
                pass
        for process in self._processes:
            if process is None:
                continue
            process.join(timeout=self.close_timeout_s)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - SIGTERM ignored
                process.kill()
                process.join(timeout=1.0)
        if self._results is not None:
            self._results.close()
        self._processes = []
        self._task_queues = []
        # Shared-memory segments go last: every worker that could have
        # mapped them is down, so unlinking cannot strand a respawn.
        for resource in self._resources:
            resource.close()
        self._resources = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:  # repro-lint: disable=RL009 __del__ runs during interpreter teardown where queue/process state is arbitrary; raising here would mask the original error
            pass
