"""Rank-addressed multiprocessing worker pool (the parallel substrate).

Design
------
``WorkerPool`` starts ``workers`` persistent processes with the ``fork``
start method.  Heavy read-only state (the :class:`KnowledgeGraph`, the
model, the serving registry) is handed to the children *by inheritance*: it
is stashed in a module global immediately before forking, so children see
it copy-on-write without ever pickling a graph or a model.  Only task
payloads (triples, parameter arrays) and results (samples, scores,
gradients) cross the process boundary.

Unlike ``multiprocessing.Pool``, tasks are addressed **by rank**: shard
``k`` always runs on worker ``k``.  That buys three properties the parity
and determinism suites rely on:

* deterministic shard → process placement (no scheduler races);
* per-rank RNG streams pinned at startup from ``(seed, rank)`` via
  :mod:`repro.utils.seeding`, so dropout draws are reproducible run to run;
* per-rank sample caches stay coherent: the same rank re-prepares the same
  shard across epochs.

Operations are plain functions registered with :func:`register_op`; they
receive a per-worker ``state`` dict (``context`` + ``rank`` + ``rng``) and
the payload.  Consumer modules (:mod:`repro.parallel.prepare`,
:mod:`repro.parallel.trainer`, :mod:`repro.parallel.evaluation`,
:mod:`repro.parallel.serving`) register theirs at import time, which the
forked children inherit.

``workers=1`` (the default everywhere) never forks: ops run inline in the
parent through the very same dispatch path, so the serial configuration is
untouched by this subsystem while still exercising one code path in tests.
On platforms without ``fork`` the pool degrades to inline execution
rather than failing (gated, not assumed — see :func:`fork_available`).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import traceback
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import get_registry
from repro.utils.seeding import worker_rng

#: Handed to forked children by COW inheritance; set only inside
#: :meth:`WorkerPool._start_processes` for the duration of the forks.
_FORK_CONTEXT: Optional[Dict[str, Any]] = None

#: Registered operations: name -> fn(state, payload).
_OPS: Dict[str, Callable[[Dict[str, Any], Any], Any]] = {}

_STOP = None  # queue sentinel


class WorkerError(RuntimeError):
    """An operation raised (or a worker died) inside the pool; carries the
    rank and the remote traceback."""


def register_op(name: str) -> Callable:
    """Decorator registering a worker operation under ``name``."""

    def decorate(fn: Callable[[Dict[str, Any], Any], Any]) -> Callable:
        if name in _OPS and _OPS[name] is not fn:  # pragma: no cover - guard
            raise ValueError(f"operation {name!r} already registered")
        _OPS[name] = fn
        return fn

    return decorate


def fork_available() -> bool:
    """Whether real process parallelism is available on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpus() -> int:
    """CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pin_rngs(value: Any, seed: int, rank: int, counter: List[int]) -> None:
    """Recursively repoint every ``_rng`` attribute under ``value`` to a
    fresh per-rank stream.

    Models may hold RNGs at any depth (e.g. a dropout submodule with its
    own generator), and a fork-inherited generator would advance in
    lockstep across all ranks — correlated draws.  Each pinned object gets
    a distinct stream derived from ``(seed, rank, discovery index)``;
    discovery order is the module tree's attribute insertion order, which
    is construction-deterministic, so runs remain reproducible.
    """
    if hasattr(value, "_rng"):
        value._rng = worker_rng(seed, rank, counter[0])
        counter[0] += 1
    # Walk Module trees (duck-typed on named_parameters to avoid importing
    # the autograd package here) through their instance attributes.
    if hasattr(value, "named_parameters"):
        for child in vars(value).values():
            if hasattr(child, "named_parameters") or hasattr(child, "_rng"):
                _pin_rngs(child, seed, rank, counter)
            elif isinstance(child, (list, tuple)):
                for item in child:
                    if hasattr(item, "named_parameters") or hasattr(item, "_rng"):
                        _pin_rngs(item, seed, rank, counter)


def _worker_main(rank: int, seed: int, tasks, results) -> None:
    """Child process loop: seeded at startup, then task → dispatch → result."""
    context = _FORK_CONTEXT or {}
    state = {"context": context, "rank": rank, "rng": worker_rng(seed, rank)}
    # Pin every RNG reachable from the context to this rank's streams;
    # without this all forked children would continue the parent's stream
    # in lockstep.
    counter = [0]
    for value in context.values():
        _pin_rngs(value, seed, rank, counter)
    # The fork inherited a COW copy of the parent's metrics registry; zero
    # it so the per-task deltas shipped below don't double-count whatever
    # the parent had accumulated before the pool started.
    registry = get_registry()
    registry.reset()
    while True:
        task = tasks.get()
        if task is _STOP:
            return
        task_id, op, payload = task
        try:
            value = _OPS[op](state, payload)
            delta = registry.collect(reset=True)
            results.put((task_id, rank, "ok", value, delta))
        except BaseException as error:  # noqa: BLE001 — shipped to parent
            # Reset anyway: a later successful task must not resurrect the
            # failed task's partial counts in its delta.
            registry.reset()
            results.put(
                (
                    task_id,
                    rank,
                    "error",
                    f"{type(error).__name__}: {error}\n{traceback.format_exc()}",
                    None,
                )
            )


class WorkerPool:
    """``workers`` rank-addressed processes over a shared read-only context.

    Parameters
    ----------
    workers:
        Number of ranks.  ``1`` runs every op inline (no processes).
    context:
        Read-only objects the ops need (graph, model, registry ...).
        Inherited by fork — mutations after construction are NOT visible
        to the workers; ship mutable state (e.g. parameters) in payloads.
    seed:
        Base seed for the per-rank RNG streams.
    """

    def __init__(
        self,
        workers: int,
        context: Optional[Dict[str, Any]] = None,
        seed: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.seed = int(seed)
        self.context: Dict[str, Any] = dict(context or {})
        self._inline = self.workers == 1 or not fork_available()
        self._processes: List[multiprocessing.Process] = []
        self._task_queues: List[Any] = []
        self._results: Optional[Any] = None
        self._closed = False
        # One dispatch at a time: task ids are per-call and the results
        # queue is shared, so overlapping run() calls (e.g. the scheduler
        # thread and a direct session.score) must serialise here.
        self._run_lock = threading.Lock()
        if not self._inline:
            self._start_processes()

    # ------------------------------------------------------------------
    def _start_processes(self) -> None:
        global _FORK_CONTEXT
        ctx = multiprocessing.get_context("fork")
        self._results = ctx.Queue()
        _FORK_CONTEXT = self.context
        try:
            for rank in range(self.workers):
                tasks = ctx.SimpleQueue()
                process = ctx.Process(
                    target=_worker_main,
                    args=(rank, self.seed, tasks, self._results),
                    name=f"repro-parallel-{rank}",
                    daemon=True,
                )
                process.start()
                self._task_queues.append(tasks)
                self._processes.append(process)
        finally:
            _FORK_CONTEXT = None

    # ------------------------------------------------------------------
    @property
    def is_inline(self) -> bool:
        """True when ops run in the parent process (workers=1 or no fork)."""
        return self._inline

    def run(self, op: str, payloads: Sequence[Any]) -> List[Any]:
        """Run ``op`` with ``payloads[k]`` on rank ``k``; results aligned
        with ``payloads``.  At most ``workers`` payloads per call."""
        if self._closed:
            raise RuntimeError("pool is closed")
        payloads = list(payloads)
        if len(payloads) > self.workers:
            raise ValueError(
                f"{len(payloads)} payloads for {self.workers} workers; "
                "shard the work first (repro.parallel.sharding)"
            )
        if op not in _OPS:
            raise KeyError(f"unknown operation {op!r}")
        if self._inline:
            state = {"context": self.context, "rank": 0, "rng": None}
            return [_OPS[op](state, payload) for payload in payloads]
        with self._run_lock:
            for task_id, payload in enumerate(payloads):
                self._task_queues[task_id].put((task_id, op, payload))
            results: List[Any] = [None] * len(payloads)
            registry = get_registry()
            for _ in range(len(payloads)):
                task_id, rank, status, value, delta = self._collect_one()
                # Merge the rank's metrics delta before raising on errors:
                # observability must not lose the work that *did* happen.
                if delta:
                    registry.merge(delta)
                if status != "ok":
                    raise WorkerError(
                        f"worker {rank} failed running {op!r}:\n{value}"
                    )
                results[task_id] = value
        return results

    def _collect_one(self):
        """One result, with liveness checks so a dead worker surfaces as an
        error instead of a hang."""
        while True:
            try:
                return self._results.get(timeout=1.0)
            except Empty:
                dead = [
                    process.name
                    for process in self._processes
                    if not process.is_alive()
                ]
                if dead:
                    raise WorkerError(f"worker process(es) died: {dead}")

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for tasks in self._task_queues:
            try:
                tasks.put(_STOP)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        if self._results is not None:
            self._results.close()
        self._processes = []
        self._task_queues = []

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
