"""Worker-pool scoring backend for the serving layer.

The micro-batching scheduler coalesces concurrent requests into one
batched session ``score`` call; with a scoring pool attached, the session
shards that batch's cache misses across worker processes, each scoring its
shard through the same (fused, no-grad) path the serial session uses.

Workers inherit the model registry and the pinned (warmed) graph at fork
time.  Models registered *after* the pool was created only exist in the
parent; :meth:`~repro.serve.session.InferenceSession.score` guards for
this by falling back to serial scoring for model keys the pool has never
seen (see ``known_keys``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.autograd import no_grad
from repro.autograd.engine import SCORE_DTYPE
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.parallel.pool import WorkerPool, register_op
from repro.parallel.sharding import pack_triples, shard_list, unpack_triples


@register_op("serve_score")
def _serve_score_op(state: Dict[str, Any], payload: Dict[str, Any]) -> np.ndarray:
    """Worker side: resolve the model from the inherited registry and score
    this rank's shard through the session's scoring semantics.

    Shard triples arrive packed as a ``(n, 3)`` int64 array (slim
    transport); legacy list payloads are still accepted."""
    triples: List[Triple] = unpack_triples(payload["triples"])
    if not triples:
        return np.empty(0, dtype=SCORE_DTYPE)
    context = state["context"]
    registry = context["registry"]
    graph: KnowledgeGraph = context["graph"]
    entry = registry.resolve(payload["model"])
    scorer = (
        entry.model.score_triples_fused
        if context.get("use_fused", True)
        and hasattr(entry.model, "score_triples_fused")
        else entry.model.score_triples
    )
    with no_grad():
        return np.asarray(scorer(graph, triples), dtype=SCORE_DTYPE).reshape(-1)


def scoring_pool(
    registry,
    graph: KnowledgeGraph,
    workers: int,
    use_fused: bool = True,
    seed: int = 0,
    task_deadline_s: Optional[float] = None,
    max_task_retries: int = 2,
) -> WorkerPool:
    """Fork a pool around the registry + served graph for session scoring.

    Call only after every served model is registered — later registrations
    are invisible to the forked children (the session falls back to serial
    scoring for those).  ``task_deadline_s``/``max_task_retries`` bound how
    long one wedged scoring shard can stall a serving batch and how often a
    crashed rank's shard is requeued before the request fails.
    """
    graph.warm()  # children share the CSR/fingerprint pages copy-on-write
    return WorkerPool(
        workers,
        context={"registry": registry, "graph": graph, "use_fused": use_fused},
        seed=seed,
        task_deadline_s=task_deadline_s,
        max_task_retries=max_task_retries,
    )


def known_keys(registry) -> frozenset:
    """The registry keys a pool forked *now* would know (snapshot)."""
    return frozenset(entry.key for entry in registry.entries())


def score_batch_sharded(
    pool: WorkerPool, model_key: str, triples: Sequence[Triple]
) -> np.ndarray:
    """Scores for ``triples`` (order-aligned), sharded across the pool."""
    triples = list(triples)
    if not triples:
        return np.empty(0, dtype=SCORE_DTYPE)
    payloads = [
        {"model": model_key, "triples": pack_triples(shard)}
        for shard in shard_list(triples, pool.workers)
    ]
    parts = pool.run("serve_score", payloads)
    return np.concatenate(
        [np.asarray(part, dtype=SCORE_DTYPE).reshape(-1) for part in parts]
    )
