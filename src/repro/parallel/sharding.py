"""Deterministic contiguous sharding used by every parallel entry point.

A batch of ``n`` items split across ``k`` ranks yields ``k`` contiguous
shards whose sizes differ by at most one (the first ``n % k`` ranks get the
extra item).  Contiguity matters twice: merged results are a plain
concatenation (input order preserved with no index bookkeeping), and the
serial reference path processes items in exactly this order, which is what
makes shard-by-shard outputs directly comparable in the parity suite.

The module also owns the slim triple transport used by every op payload:
triples cross the queue as one ``(n, 3)`` int64 array (and query lists as
one flat array plus a length vector) instead of pickled tuple lists —
pickling a contiguous array is one buffer copy, not ``n`` tuple records.
Unpacking tolerates the legacy list form so hand-built payloads keep
working.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")

IntTriple = Tuple[int, int, int]


def pack_triples(triples: Sequence[IntTriple]) -> np.ndarray:
    """Payload-slimmed triple transport: one ``(n, 3)`` int64 array
    instead of a pickled list of tuples."""
    if not len(triples):
        return np.empty((0, 3), dtype=np.int64)
    return np.asarray(list(triples), dtype=np.int64).reshape(-1, 3)


def unpack_triples(rows: Any) -> List[IntTriple]:
    """Inverse of :func:`pack_triples`; also accepts an already-unpacked
    triple sequence so hand-built (legacy) payloads keep working."""
    if isinstance(rows, np.ndarray):
        return [(int(h), int(r), int(t)) for h, r, t in rows.tolist()]
    return [(int(h), int(r), int(t)) for h, r, t in rows]


def pack_query_lists(
    query_lists: Sequence[Sequence[IntTriple]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Flatten candidate lists into ``(flat_triples, lengths)`` arrays."""
    lengths = np.asarray([len(queries) for queries in query_lists], dtype=np.int64)
    flat: List[IntTriple] = []
    for queries in query_lists:
        flat.extend(queries)
    return pack_triples(flat), lengths


def unpack_query_lists(
    flat: Any, lengths: Any
) -> List[List[IntTriple]]:
    """Inverse of :func:`pack_query_lists` (order and grouping preserved)."""
    triples = unpack_triples(flat)
    query_lists: List[List[IntTriple]] = []
    start = 0
    for length in np.asarray(lengths, dtype=np.int64).tolist():
        query_lists.append(triples[start : start + length])
        start += length
    return query_lists


def shard_sizes(num_items: int, num_shards: int) -> List[int]:
    """Balanced contiguous shard sizes (may include zeros when
    ``num_items < num_shards``)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    base, extra = divmod(num_items, num_shards)
    return [base + (1 if rank < extra else 0) for rank in range(num_shards)]


def shard_list(items: Sequence[T], num_shards: int) -> List[List[T]]:
    """Split ``items`` into ``num_shards`` contiguous balanced shards."""
    items = list(items)
    shards: List[List[T]] = []
    start = 0
    for size in shard_sizes(len(items), num_shards):
        shards.append(items[start : start + size])
        start += size
    return shards


def merge_shards(shards: Sequence[Sequence[T]]) -> List[T]:
    """Concatenate shard outputs back into input order (inverse of
    :func:`shard_list` for order-preserving per-shard maps)."""
    merged: List[T] = []
    for shard in shards:
        merged.extend(shard)
    return merged
