"""Deterministic contiguous sharding used by every parallel entry point.

A batch of ``n`` items split across ``k`` ranks yields ``k`` contiguous
shards whose sizes differ by at most one (the first ``n % k`` ranks get the
extra item).  Contiguity matters twice: merged results are a plain
concatenation (input order preserved with no index bookkeeping), and the
serial reference path processes items in exactly this order, which is what
makes shard-by-shard outputs directly comparable in the parity suite.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

T = TypeVar("T")


def shard_sizes(num_items: int, num_shards: int) -> List[int]:
    """Balanced contiguous shard sizes (may include zeros when
    ``num_items < num_shards``)."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_items < 0:
        raise ValueError(f"num_items must be >= 0, got {num_items}")
    base, extra = divmod(num_items, num_shards)
    return [base + (1 if rank < extra else 0) for rank in range(num_shards)]


def shard_list(items: Sequence[T], num_shards: int) -> List[List[T]]:
    """Split ``items`` into ``num_shards`` contiguous balanced shards."""
    items = list(items)
    shards: List[List[T]] = []
    start = 0
    for size in shard_sizes(len(items), num_shards):
        shards.append(items[start : start + size])
        start += size
    return shards


def merge_shards(shards: Sequence[Sequence[T]]) -> List[T]:
    """Concatenate shard outputs back into input order (inverse of
    :func:`shard_list` for order-preserving per-shard maps)."""
    merged: List[T] = []
    for shard in shards:
        merged.extend(shard)
    return merged
