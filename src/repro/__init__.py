"""repro — a full reproduction of *Relational Message Passing for Fully
Inductive Knowledge Graph Completion* (RMPI, ICDE 2023).

Subpackages
-----------
``repro.autograd``
    Numpy reverse-mode autodiff engine (the PyTorch/DGL substitute).
``repro.kg``
    Knowledge-graph substrate: triples, graphs, synthetic inductive
    benchmark generation (the offline stand-in for the GraIL datasets).
``repro.subgraph``
    Enclosing/disclosing extraction, double-radius labeling, relation-view
    (line-graph) transformation, Algorithm-1 pruning.
``repro.core``
    The RMPI model and its NE / TA variants.
``repro.baselines``
    GraIL, TACT(-base), CoMPILE, MaKEr.
``repro.schema``
    RDFS schema graphs, TransE pre-training, projection (Schema Enhanced).
``repro.train`` / ``repro.eval`` / ``repro.experiments``
    Trainer, evaluation protocols (AUC-PR / MRR / Hits@n), experiment
    runner and table formatting.
``repro.serve``
    Online inference: model registry, pinned inference sessions with a
    score cache, micro-batching scheduler, JSON-over-HTTP service.
"""

__version__ = "1.0.0"

from repro.core import RMPI, RMPIConfig

__all__ = ["RMPI", "RMPIConfig", "__version__"]
