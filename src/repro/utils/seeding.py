"""Deterministic seeding for serial and multi-process execution.

The parallel layer (``repro.parallel``) runs model code in forked worker
processes.  Forked children inherit the parent's RNG *state*, so without
intervention every worker would draw the identical stream — and any code
that reseeded from OS entropy would make runs irreproducible.  This module
derives independent, reproducible per-worker streams from a base seed and
the worker rank via :class:`numpy.random.SeedSequence`, the same
construction torch's ``DataLoader`` workers and NumPy's own parallel
recipes use.

Guarantees:

* ``derive_seed(base, *parts)`` is a pure function — same inputs, same
  seed, on every platform and process;
* streams for different ranks are statistically independent (SeedSequence
  spawn-key mixing), so worker 0 and worker 1 never see correlated draws;
* two runs with the same base seed and worker count produce bitwise
  identical draws in every rank, which is what makes parallel training
  checkpoints reproducible (see ``tests/test_parallel_equivalence.py``).
"""

from __future__ import annotations

import random
from typing import Sequence, Union

import numpy as np

#: Seeds accepted by :func:`seeded_rng` — anything deterministic that
#: ``np.random.default_rng`` takes, *except* ``None`` (OS entropy).
SeedLike = Union[int, Sequence[int], np.random.SeedSequence]


def derive_seed(base_seed: int, *components: int) -> int:
    """A reproducible 63-bit seed mixing ``base_seed`` with ``components``.

    Deterministic across processes and platforms; distinct component
    tuples give (with overwhelming probability) distinct seeds.  Use
    components for the worker rank, epoch, step — anything that must
    decorrelate streams.
    """
    # The component count is folded into the entropy because SeedSequence
    # zero-pads its entropy pool: without it, trailing zero components
    # would be silently ignored (derive_seed(0) == derive_seed(0, 0)).
    sequence = np.random.SeedSequence(
        [int(base_seed), len(components), *[int(c) for c in components]]
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0] >> 1)


def seeded_rng(seed: SeedLike) -> np.random.Generator:
    """The ``np.random.default_rng`` chokepoint (lint rule RL004).

    Every Generator in ``src/``/``benchmarks/`` is built here (or via
    :func:`worker_rng`), which keeps three properties auditable in one
    place: no stream is ever seeded from OS entropy by accident, seed
    derivation goes through :func:`derive_seed` wherever streams must
    decorrelate, and a grep for ``seeded_rng`` finds every RNG the system
    owns.  ``seeded_rng(s)`` is bitwise-identical to the
    ``np.random.default_rng(s)`` calls it replaced.
    """
    if seed is None:
        raise ValueError(
            "seeded_rng requires an explicit seed; OS-entropy streams are "
            "irreproducible by construction"
        )
    return np.random.default_rng(seed)


def worker_rng(base_seed: int, rank: int, *extra: int) -> np.random.Generator:
    """The pinned RNG stream for worker ``rank``.

    Built on :func:`derive_seed` so component tuples are uniquely decoded
    (no trailing-zero collisions); ``extra`` components decorrelate
    multiple streams within one rank (e.g. several RNG-bearing submodules).
    """
    return np.random.default_rng(derive_seed(base_seed, rank, *extra))


def seed_everything(seed: int) -> None:
    """Pin every stdlib/numpy global RNG this codebase can touch.

    Model/trainer code uses explicit ``Generator`` objects, but tests and
    third-party helpers (hypothesis' ``random`` interop, legacy
    ``np.random.*`` calls) read the global streams; pinning both makes a
    test session reproducible end to end.
    """
    random.seed(int(seed))
    np.random.seed(int(seed) % (2**32))
