"""`repro.utils` — cross-cutting helpers (deterministic seeding)."""

from repro.utils.seeding import (
    SeedLike,
    derive_seed,
    seed_everything,
    seeded_rng,
    worker_rng,
)

__all__ = [
    "SeedLike",
    "derive_seed",
    "seed_everything",
    "seeded_rng",
    "worker_rng",
]
