"""`repro.utils` — cross-cutting helpers (deterministic seeding)."""

from repro.utils.seeding import derive_seed, seed_everything, worker_rng

__all__ = [
    "derive_seed",
    "seed_everything",
    "worker_rng",
]
