"""TACT baselines (Chen et al., AAAI 2021; paper §IV-C1).

* **TACT-base** — the relational correlation module alone: a *single*
  aggregation over the target relation's adjacent relations in the
  relation-view graph, with per-connection-pattern transforms.  It can infer
  an unseen relation's embedding from one hop of adjacent relations, which
  is why the paper uses it as the fully-inductive baseline — but unlike
  RMPI's multi-layer pruned message passing it never reaches relations two
  hops away, and has no disclosing-subgraph fallback.
* **TACT** (full) — the correlation module combined with a GraIL-style
  entity-view module; the score concatenates the pooled subgraph, target
  entity embeddings, and the correlation-enhanced relation representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autograd import Linear, ModuleList, Parameter, Tensor, ops
from repro.autograd.init import xavier_uniform
from repro.autograd.segment import gather, segment_mean
from repro.baselines.grail import GraIL, GraILSample
from repro.core.base import SubgraphScoringModel
from repro.core.embeddings import RandomInitEmbedding, SchemaInitEmbedding
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.subgraph.extraction import (
    ExtractedSubgraph,
    extract_enclosing_subgraph,
)
from repro.subgraph.linegraph import (
    NUM_EDGE_TYPES,
    RelationalGraph,
    build_relational_graph,
)


@dataclass(frozen=True)
class TACTSample:
    """The target's one-hop relational neighborhood, grouped by edge type."""

    triple: Triple
    neighbor_relations: np.ndarray  # (m,) relation ids of incoming neighbors
    neighbor_types: np.ndarray  # (m,) connection-pattern types
    grail: Optional[GraILSample] = None  # for full TACT


class RelationalCorrelationModule(SubgraphScoringModel):
    """Shared core: correlation-enhanced target relation representation."""

    def __init__(
        self,
        num_relations: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_hops: int = 2,
        schema_vectors: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.num_relations = num_relations
        self.num_hops = num_hops
        self.embed_dim = embed_dim
        if schema_vectors is not None:
            self.embedding = SchemaInitEmbedding(schema_vectors, embed_dim, rng)
        else:
            self.embedding = RandomInitEmbedding(num_relations, embed_dim, rng)
        self.type_weights = [
            Parameter(xavier_uniform((embed_dim, embed_dim), rng), name=f"C_e{e}")
            for e in range(NUM_EDGE_TYPES)
        ]

    # ------------------------------------------------------------------
    def _neighborhood(self, graph: KnowledgeGraph, triple: Triple) -> TACTSample:
        subgraph = extract_enclosing_subgraph(graph, triple, self.num_hops)
        return self._neighborhood_from_subgraph(triple, subgraph)

    def _neighborhood_from_subgraph(
        self, triple: Triple, subgraph: ExtractedSubgraph
    ) -> TACTSample:
        return self._neighborhood_from_relational(
            triple, build_relational_graph(subgraph)
        )

    def _neighborhood_from_relational(
        self, triple: Triple, relational: RelationalGraph
    ) -> TACTSample:
        incoming = relational.incoming(relational.target_node)
        neighbor_relations = relational.node_relations[incoming[:, 0]]
        return TACTSample(
            triple=tuple(int(x) for x in triple),
            neighbor_relations=neighbor_relations.astype(np.int64),
            neighbor_types=incoming[:, 1].astype(np.int64),
        )

    def correlation_representation(self, sample: TACTSample) -> Tensor:
        """``h'_rt = ReLU(sum_e W_e mean(h_rj)) + h_rt`` over one hop."""
        target_emb = self.embedding(np.asarray([sample.triple[1]]))
        if len(sample.neighbor_relations) == 0:
            return target_emb
        aggregated = None
        for edge_type in range(NUM_EDGE_TYPES):
            mask = sample.neighbor_types == edge_type
            if not mask.any():
                continue
            neighbor_emb = self.embedding(sample.neighbor_relations[mask])
            pooled = ops.mean(neighbor_emb, axis=0, keepdims=True)
            part = ops.matmul(pooled, self.type_weights[edge_type])
            aggregated = part if aggregated is None else ops.add(aggregated, part)
        if aggregated is None:
            return target_emb
        return ops.add(ops.relu(aggregated), target_emb)


class TACTBase(RelationalCorrelationModule):
    """TACT-base: score directly from the correlation representation."""

    def __init__(
        self,
        num_relations: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_hops: int = 2,
        schema_vectors: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(num_relations, rng, embed_dim, num_hops, schema_vectors)
        self.output = Linear(embed_dim, 1, rng, bias=False)

    def prepare(self, graph: KnowledgeGraph, triple: Triple) -> TACTSample:
        return self._neighborhood(graph, triple)

    def prepare_many(self, graph: KnowledgeGraph, triples) -> list:
        """Batched prepare: vectorized extraction + batched relation-view
        transforms (one shared numpy pass across the candidate list)."""
        return self._prepare_from_relational(
            graph,
            triples,
            self.num_hops,
            lambda triple, _subgraph, relational: self._neighborhood_from_relational(
                triple, relational
            ),
        )

    def score_sample(self, sample: TACTSample) -> Tensor:
        return self.output(self.correlation_representation(sample))

    @property
    def name(self) -> str:
        schema = isinstance(self.embedding, SchemaInitEmbedding)
        return "TACT-base" + ("+schema" if schema else "")


class TACT(RelationalCorrelationModule):
    """Full TACT: correlation module + GraIL-style entity module."""

    def __init__(
        self,
        num_relations: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_hops: int = 2,
        num_layers: int = 2,
        schema_vectors: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__(num_relations, rng, embed_dim, num_hops, schema_vectors)
        self.entity_module = GraIL(
            num_relations,
            rng,
            embed_dim=embed_dim,
            num_layers=num_layers,
            num_hops=num_hops,
        )
        self.output = Linear(4 * embed_dim, 1, rng, bias=False)

    def prepare(self, graph: KnowledgeGraph, triple: Triple) -> TACTSample:
        return self.prepare_many(graph, [triple])[0]

    def prepare_many(self, graph: KnowledgeGraph, triples) -> list:
        """Batched prepare: one extraction per triple feeds BOTH the
        correlation module (via the batched relation-view transform) and
        the GraIL-style entity module (they use the same enclosing
        subgraph and hop count)."""

        def build(triple, subgraph, relational):
            sample = self._neighborhood_from_relational(triple, relational)
            return TACTSample(
                triple=sample.triple,
                neighbor_relations=sample.neighbor_relations,
                neighbor_types=sample.neighbor_types,
                grail=self.entity_module._sample_from_subgraph(subgraph),
            )

        return self._prepare_from_relational(graph, triples, self.num_hops, build)

    def score_sample(self, sample: TACTSample) -> Tensor:
        correlation = self.correlation_representation(sample)
        grail_sample = sample.grail
        features = self.entity_module.input_proj(Tensor(grail_sample.init_features))
        for layer in self.entity_module.layers:
            features = layer(
                features,
                grail_sample.edge_heads,
                grail_sample.edge_relations,
                grail_sample.edge_tails,
                target_relation=grail_sample.triple[1],
            )
        pooled = ops.mean(features, axis=0, keepdims=True)
        h_u = gather(features, np.asarray([grail_sample.head_index]))
        h_v = gather(features, np.asarray([grail_sample.tail_index]))
        combined = ops.concat([pooled, h_u, h_v, correlation], axis=1)
        return self.output(combined)

    @property
    def name(self) -> str:
        return "TACT"
