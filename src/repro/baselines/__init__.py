"""`repro.baselines` — the methods the paper compares against.

GraIL (entity-view subgraph reasoning), TACT-base / TACT (relational
correlation), CoMPILE (communicative node-edge message passing), and MaKEr
(meta-learning knowledge extrapolation).
"""

from repro.baselines.compile_model import CoMPILE, CoMPILESample
from repro.baselines.grail import GraIL, GraILSample, RGCNBasisLayer
from repro.baselines.maker import (
    MaKEr,
    RelationCooccurrence,
    ScopedMaKEr,
    relation_cooccurrence,
    train_maker,
)
from repro.baselines.rules import (
    Rule,
    RuleBasedScorer,
    RuleMiner,
    mine_and_build_scorer,
)
from repro.baselines.tact import TACT, TACTBase, TACTSample

__all__ = [
    "GraIL",
    "GraILSample",
    "RGCNBasisLayer",
    "TACT",
    "TACTBase",
    "TACTSample",
    "CoMPILE",
    "CoMPILESample",
    "MaKEr",
    "ScopedMaKEr",
    "RelationCooccurrence",
    "relation_cooccurrence",
    "train_maker",
    "Rule",
    "RuleMiner",
    "RuleBasedScorer",
    "mine_and_build_scorer",
]
