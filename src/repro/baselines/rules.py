"""Statistical rule-mining baseline (the paper's §I / §V-B lineage).

GraIL's predecessors induce entity-independent logical rules from the
training graph "in statistical manners" (RuleN / AnyBURL style); the paper
omits them from its tables because GraIL already dominates them, but they
complete the method lineage and give an interpretable reference point.

:class:`RuleMiner` mines three Horn-rule shapes over relations:

* equivalence: ``head(x, y) <- body(x, y)``
* inversion:   ``head(x, y) <- body(y, x)``
* composition: ``head(x, y) <- b1(x, z) & b2(z, y)``

each scored by its confidence ``support / body_count`` (with Laplace
smoothing).  :class:`RuleBasedScorer` scores a candidate triple by
noisy-or over the confidences of rules whose bodies match in the context
graph — fully entity-independent, hence inductive over entities (but, like
GraIL, unable to handle unseen head relations: no rule mentions them).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.autograd.engine import SCORE_DTYPE
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple, TripleSet

EQUIVALENCE = "equivalence"
INVERSION = "inversion"
COMPOSITION = "composition"


@dataclass(frozen=True)
class Rule:
    """A mined Horn rule with its empirical confidence."""

    kind: str
    head: int
    body: Tuple[int, ...]
    support: int
    body_count: int
    confidence: float

    def describe(self) -> str:
        if self.kind == EQUIVALENCE:
            pattern = f"r{self.head}(x,y) <- r{self.body[0]}(x,y)"
        elif self.kind == INVERSION:
            pattern = f"r{self.head}(x,y) <- r{self.body[0]}(y,x)"
        else:
            pattern = (
                f"r{self.head}(x,y) <- r{self.body[0]}(x,z) & r{self.body[1]}(z,y)"
            )
        return f"{pattern}  [conf={self.confidence:.3f}, support={self.support}]"


class RuleMiner:
    """Mine rules from a training graph.

    Parameters
    ----------
    min_support:
        Minimum number of body instances also satisfying the head.
    min_confidence:
        Minimum smoothed confidence to keep a rule.
    max_composition_bodies:
        Cap on the (body1, body2) pairs examined per head relation, for
        graphs with many relations.
    """

    def __init__(
        self,
        min_support: int = 2,
        min_confidence: float = 0.1,
        laplace: float = 1.0,
    ) -> None:
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.laplace = laplace

    # ------------------------------------------------------------------
    def mine(self, graph: KnowledgeGraph) -> List[Rule]:
        """Return all rules meeting the support/confidence thresholds."""
        facts: Set[Triple] = set(graph.triples)
        pairs_of: Dict[int, Set[Tuple[int, int]]] = defaultdict(set)
        tails_of: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for head, rel, tail in facts:
            pairs_of[rel].add((head, tail))
            tails_of[(rel, head)].append(tail)

        relations = sorted(pairs_of)
        rules: List[Rule] = []

        # Equivalence and inversion rules: pair overlap counting.
        for body in relations:
            body_pairs = pairs_of[body]
            inverse_pairs = {(t, h) for h, t in body_pairs}
            for head in relations:
                if head == body:
                    continue
                head_pairs = pairs_of[head]
                for kind, candidate_pairs in (
                    (EQUIVALENCE, body_pairs),
                    (INVERSION, inverse_pairs),
                ):
                    support = len(candidate_pairs & head_pairs)
                    body_count = len(candidate_pairs)
                    confidence = support / (body_count + self.laplace)
                    if support >= self.min_support and confidence >= self.min_confidence:
                        rules.append(
                            Rule(kind, head, (body,), support, body_count, confidence)
                        )

        # Composition rules: join body1 and body2 on the middle entity.
        joined: Dict[Tuple[int, int], Set[Tuple[int, int]]] = defaultdict(set)
        for (rel1, x), mids in (
            ((rel, h), tails_of[(rel, h)]) for (rel, h) in tails_of
        ):
            for mid in mids:
                for rel2 in graph.relations_of(mid):
                    for y in tails_of.get((rel2, mid), ()):
                        if x != y:
                            joined[(rel1, rel2)].add((x, y))
        for (body1, body2), body_pairs in joined.items():
            for head in relations:
                support = len(body_pairs & pairs_of[head])
                confidence = support / (len(body_pairs) + self.laplace)
                if support >= self.min_support and confidence >= self.min_confidence:
                    rules.append(
                        Rule(
                            COMPOSITION,
                            head,
                            (body1, body2),
                            support,
                            len(body_pairs),
                            confidence,
                        )
                    )

        rules.sort(key=lambda r: (-r.confidence, -r.support, r.head))
        return rules


class RuleBasedScorer:
    """Score triples by noisy-or over matched rule confidences.

    Satisfies the :class:`~repro.eval.protocol.TripleScorer` protocol so it
    plugs into the standard evaluation pipeline.
    """

    def __init__(self, rules: Sequence[Rule]) -> None:
        self.rules = list(rules)
        self._by_head: Dict[int, List[Rule]] = defaultdict(list)
        for rule in self.rules:
            self._by_head[rule.head].append(rule)

    # ------------------------------------------------------------------
    def _matched_confidences(
        self, graph: KnowledgeGraph, triple: Triple
    ) -> List[float]:
        head_entity, relation, tail_entity = triple
        confidences: List[float] = []
        for rule in self._by_head.get(relation, ()):
            if rule.kind == EQUIVALENCE:
                matched = rule.body[0] in graph.entity_pair_relations(
                    head_entity, tail_entity
                )
            elif rule.kind == INVERSION:
                matched = rule.body[0] in graph.entity_pair_relations(
                    tail_entity, head_entity
                )
            else:
                body1, body2 = rule.body
                matched = False
                for edge_index in graph.incident_edges(head_entity):
                    h, r, mid = graph.triples[edge_index]
                    if h != head_entity or r != body1:
                        continue
                    if body2 in graph.entity_pair_relations(mid, tail_entity):
                        matched = True
                        break
            if matched:
                confidences.append(rule.confidence)
        return confidences

    def score_triples(
        self, graph: KnowledgeGraph, triples: Sequence[Triple]
    ) -> np.ndarray:
        scores = []
        for triple in triples:
            confidences = self._matched_confidences(graph, triple)
            miss = 1.0
            for confidence in confidences:
                miss *= 1.0 - confidence
            scores.append(1.0 - miss)
        return np.asarray(scores, dtype=SCORE_DTYPE)


def mine_and_build_scorer(
    graph: KnowledgeGraph,
    min_support: int = 2,
    min_confidence: float = 0.1,
) -> RuleBasedScorer:
    """Convenience: mine rules from ``graph`` and wrap them in a scorer."""
    miner = RuleMiner(min_support=min_support, min_confidence=min_confidence)
    return RuleBasedScorer(miner.mine(graph))
