"""CoMPILE baseline (Mai et al., AAAI 2021; paper §IV-C1).

CoMPILE strengthens entity-relation interaction with *communicative*
message passing: edge (triple) embeddings and node (entity) embeddings
update each other across iterations, and the final score reads the target
edge's embedding together with the pooled subgraph.

This is a faithful-in-spirit reimplementation: per iteration,

* edge update:  ``e' = ReLU(W_ee e + W_eh h_head + W_et h_tail)``
* node update:  ``h' = ReLU(W_self h + sum_incoming sigmoid(g(e')) * e')``

with node features initialised from double-radius labels and edge features
from relation embeddings — preserving CoMPILE's defining node-edge
communication pattern while staying within this repository's engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.autograd import Embedding, Linear, Module, ModuleList, Tensor, ops
from repro.autograd.segment import gather, segment_sum
from repro.core.base import SubgraphScoringModel
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.subgraph.extraction import (
    ExtractedSubgraph,
    extract_enclosing_subgraph,
)
from repro.subgraph.labeling import (
    compressed_edge_arrays,
    encode_labels,
    label_feature_dim,
)


@dataclass(frozen=True)
class CoMPILESample:
    triple: Triple
    num_nodes: int
    init_features: np.ndarray
    edge_heads: np.ndarray
    edge_relations: np.ndarray
    edge_tails: np.ndarray
    target_edge: int  # index of the target edge row
    head_index: int
    tail_index: int


class CommunicativeLayer(Module):
    """One round of node<->edge communicative message passing."""

    def __init__(self, dim: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.edge_from_edge = Linear(dim, dim, rng, bias=False)
        self.edge_from_head = Linear(dim, dim, rng, bias=False)
        self.edge_from_tail = Linear(dim, dim, rng, bias=False)
        self.node_self = Linear(dim, dim, rng, bias=False)
        self.gate = Linear(dim, 1, rng)

    def forward(
        self,
        node_features: Tensor,
        edge_features: Tensor,
        edge_heads: np.ndarray,
        edge_tails: np.ndarray,
    ) -> tuple:
        h_head = gather(node_features, edge_heads)
        h_tail = gather(node_features, edge_tails)
        new_edges = ops.relu(
            ops.add(
                ops.add(self.edge_from_edge(edge_features), self.edge_from_head(h_head)),
                self.edge_from_tail(h_tail),
            )
        )
        gate = ops.sigmoid(self.gate(new_edges))
        incoming = segment_sum(ops.mul(new_edges, gate), edge_tails, node_features.shape[0])
        new_nodes = ops.relu(ops.add(self.node_self(node_features), incoming))
        return new_nodes, new_edges


class CoMPILE(SubgraphScoringModel):
    """Communicative message passing over enclosing subgraphs."""

    def __init__(
        self,
        num_relations: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_layers: int = 2,
        num_hops: int = 2,
    ) -> None:
        super().__init__()
        self.num_relations = num_relations
        self.num_hops = num_hops
        self.input_proj = Linear(label_feature_dim(num_hops), embed_dim, rng)
        self.relation_embedding = Embedding(num_relations, embed_dim, rng)
        self.layers = ModuleList(
            [CommunicativeLayer(embed_dim, rng) for _ in range(num_layers)]
        )
        self.output = Linear(2 * embed_dim, 1, rng, bias=False)

    # ------------------------------------------------------------------
    def prepare(self, graph: KnowledgeGraph, triple: Triple) -> CoMPILESample:
        subgraph = extract_enclosing_subgraph(graph, triple, self.num_hops)
        return self._sample_from_subgraph(subgraph)

    def prepare_many(self, graph: KnowledgeGraph, triples) -> List[CoMPILESample]:
        """Batched prepare via the vectorized extraction engine."""
        return self._prepare_from_enclosing(
            graph, triples, self.num_hops,
            lambda _triple, subgraph: self._sample_from_subgraph(subgraph),
        )

    def _sample_from_subgraph(self, subgraph: ExtractedSubgraph) -> CoMPILESample:
        features, _index = encode_labels(subgraph)
        edge_heads, edge_relations, edge_tails, head_index, tail_index = (
            compressed_edge_arrays(subgraph)
        )
        target_edge = len(subgraph.triples)
        return CoMPILESample(
            triple=(subgraph.head, subgraph.relation, subgraph.tail),
            num_nodes=len(subgraph.entities),
            init_features=features,
            edge_heads=edge_heads,
            edge_relations=edge_relations,
            edge_tails=edge_tails,
            target_edge=target_edge,
            head_index=head_index,
            tail_index=tail_index,
        )

    # ------------------------------------------------------------------
    def score_sample(self, sample: CoMPILESample) -> Tensor:
        nodes = self.input_proj(Tensor(sample.init_features))
        edges = self.relation_embedding(sample.edge_relations)
        for layer in self.layers:
            nodes, edges = layer(nodes, edges, sample.edge_heads, sample.edge_tails)
        pooled = ops.mean(nodes, axis=0, keepdims=True)
        target_edge = gather(edges, np.asarray([sample.target_edge]))
        return self.output(ops.concat([pooled, target_edge], axis=1))

    @property
    def name(self) -> str:
        return "CoMPILE"
