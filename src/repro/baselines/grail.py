"""GraIL baseline (Teru et al., ICML 2020; paper §II-B, eqs. 1–5).

GraIL scores a target triple by message passing over the *entity-view*
enclosing subgraph: entities carry double-radius structural labels, edges
carry relations, and an R-GCN-style encoder with edge attention (gated by
the target relation) produces entity embeddings; the score combines the
mean-pooled subgraph representation, the target entities' embeddings, and a
learnable target-relation embedding (eq. 4).

Relation-specific transforms use basis decomposition (as in the reference
implementation) to keep the parameter count independent of |R|.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.autograd import Embedding, Linear, Module, ModuleList, Parameter, Tensor, ops
from repro.autograd.init import xavier_uniform
from repro.autograd.segment import gather, segment_mean, segment_sum
from repro.core.base import SubgraphScoringModel
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import Triple
from repro.subgraph.extraction import (
    ExtractedSubgraph,
    extract_enclosing_subgraph,
)
from repro.subgraph.labeling import (
    compressed_edge_arrays,
    encode_labels,
    label_feature_dim,
)


@dataclass(frozen=True)
class GraILSample:
    """Entity-view enclosing subgraph, index-compressed."""

    triple: Triple
    num_nodes: int
    init_features: np.ndarray  # (n, 2*(K+1)) double-radius one-hots
    edge_heads: np.ndarray  # (m,) node indices
    edge_relations: np.ndarray  # (m,) relation ids
    edge_tails: np.ndarray  # (m,) node indices
    head_index: int
    tail_index: int


class RGCNBasisLayer(Module):
    """One R-GCN layer with basis decomposition and GraIL's edge attention."""

    def __init__(
        self,
        in_dim: int,
        out_dim: int,
        num_relations: int,
        num_bases: int,
        attn_dim: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.num_bases = num_bases
        self.bases = [
            Parameter(xavier_uniform((in_dim, out_dim), rng), name=f"basis{b}")
            for b in range(num_bases)
        ]
        self.coefficients = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(num_bases), size=(num_relations, num_bases)),
            name="coefficients",
        )
        self.self_weight = Parameter(xavier_uniform((in_dim, out_dim), rng), name="W_self")
        # Attention (eqs. 2-3): s = ReLU(A2 [h_i + h_j + ra_t + ra] + b2),
        # alpha = sigmoid(A1 s + b1); ra are attention relation embeddings.
        self.attn_relations = Embedding(num_relations, attn_dim, rng)
        self.attn_hidden = Linear(2 * in_dim + 2 * attn_dim, attn_dim, rng)
        self.attn_out = Linear(attn_dim, 1, rng)

    def forward(
        self,
        features: Tensor,
        edge_heads: np.ndarray,
        edge_relations: np.ndarray,
        edge_tails: np.ndarray,
        target_relation: int,
        edge_keep: Optional[np.ndarray] = None,
    ) -> Tensor:
        num_nodes = features.shape[0]
        if edge_keep is not None and len(edge_heads):
            edge_heads = edge_heads[edge_keep]
            edge_relations = edge_relations[edge_keep]
            edge_tails = edge_tails[edge_keep]
        self_part = ops.matmul(features, self.self_weight)
        if len(edge_heads) == 0:
            return ops.relu(self_part)

        h_src = gather(features, edge_heads)
        h_dst = gather(features, edge_tails)
        coeff = gather(self.coefficients, edge_relations)  # (m, B)
        message = None
        for b, basis in enumerate(self.bases):
            part = ops.mul(
                ops.matmul(h_src, basis),
                ops.reshape(gather_column(coeff, b), (len(edge_heads), 1)),
            )
            message = part if message is None else ops.add(message, part)

        ra = self.attn_relations(edge_relations)
        ra_t = self.attn_relations(np.full(len(edge_heads), target_relation, dtype=np.int64))
        attn_in = ops.concat([h_src, h_dst, ra, ra_t], axis=1)
        s = ops.relu(self.attn_hidden(attn_in))
        alpha = ops.sigmoid(self.attn_out(s))  # (m, 1) gate, as in GraIL
        weighted = ops.mul(message, alpha)
        aggregated = segment_sum(weighted, edge_tails, num_nodes)
        return ops.relu(ops.add(aggregated, self_part))


def gather_column(tensor: Tensor, column: int) -> Tensor:
    """Differentiable single-column slice of a 2-D tensor."""
    n, m = tensor.shape
    one_hot = np.zeros((m, 1))
    one_hot[column, 0] = 1.0
    return ops.matmul(tensor, Tensor(one_hot))


class GraIL(SubgraphScoringModel):
    """The GraIL model over enclosing subgraphs."""

    def __init__(
        self,
        num_relations: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_layers: int = 2,
        num_hops: int = 2,
        num_bases: int = 4,
        attn_dim: int = 8,
        dropout: float = 0.5,
    ) -> None:
        super().__init__()
        self.num_relations = num_relations
        self.num_hops = num_hops
        self.dropout = dropout
        self._rng = rng
        in_dim = label_feature_dim(num_hops)
        self.input_proj = Linear(in_dim, embed_dim, rng)
        self.layers = ModuleList(
            [
                RGCNBasisLayer(embed_dim, embed_dim, num_relations, num_bases, attn_dim, rng)
                for _ in range(num_layers)
            ]
        )
        self.relation_embedding = Embedding(num_relations, embed_dim, rng)
        self.output = Linear(4 * embed_dim, 1, rng, bias=False)

    # ------------------------------------------------------------------
    def prepare(self, graph: KnowledgeGraph, triple: Triple) -> GraILSample:
        subgraph = extract_enclosing_subgraph(graph, triple, self.num_hops)
        return self._sample_from_subgraph(subgraph)

    def prepare_many(self, graph: KnowledgeGraph, triples) -> List[GraILSample]:
        """Batched prepare via the vectorized extraction engine."""
        return self._prepare_from_enclosing(
            graph, triples, self.num_hops,
            lambda _triple, subgraph: self._sample_from_subgraph(subgraph),
        )

    def _sample_from_subgraph(self, subgraph: ExtractedSubgraph) -> GraILSample:
        features, _index = encode_labels(subgraph)
        edge_heads, edge_relations, edge_tails, head_index, tail_index = (
            compressed_edge_arrays(subgraph)
        )
        return GraILSample(
            triple=(subgraph.head, subgraph.relation, subgraph.tail),
            num_nodes=len(subgraph.entities),
            init_features=features,
            edge_heads=edge_heads,
            edge_relations=edge_relations,
            edge_tails=edge_tails,
            head_index=head_index,
            tail_index=tail_index,
        )

    # ------------------------------------------------------------------
    def score_sample(self, sample: GraILSample) -> Tensor:
        features = self.input_proj(Tensor(sample.init_features))
        for layer in self.layers:
            edge_keep = None
            if self.training and self.dropout > 0.0 and len(sample.edge_heads):
                edge_keep = self._rng.random(len(sample.edge_heads)) >= self.dropout
            features = layer(
                features,
                sample.edge_heads,
                sample.edge_relations,
                sample.edge_tails,
                target_relation=sample.triple[1],
                edge_keep=edge_keep,
            )
        pooled = ops.mean(features, axis=0, keepdims=True)
        h_u = gather(features, np.asarray([sample.head_index]))
        h_v = gather(features, np.asarray([sample.tail_index]))
        r_t = self.relation_embedding(np.asarray([sample.triple[1]]))
        combined = ops.concat([pooled, h_u, h_v, r_t], axis=1)
        return self.output(combined)

    @property
    def name(self) -> str:
        return "GraIL"
