"""MaKEr baseline (Chen et al., IJCAI 2022; paper §IV-C1, Tables IV/V).

MaKEr handles unseen entities *and* unseen relations by (i) representing
unseen relations through pre-defined topological relationships with other
relations, (ii) representing entities by their neighboring relations (no
entity table at all), and (iii) meta-learning: training episodes mask a
random subset of relations as pretend-unseen so the model learns to work
from estimated representations.

Reimplementation notes (documented substitution):

* the topological relation features use this repo's six connection-pattern
  types — per pattern, an unseen relation aggregates the mean embedding of
  co-occurring seen relations through a learned transform;
* entity features are initialised as the mean of incident relation
  features, then refined by CompGCN-style message passing
  (``h_j + r`` for incoming, ``h_j - r`` for outgoing edges);
* scoring is DistMult over the final entity/relation features;
* the episodic trainer is first-order (no second-order MAML gradients),
  which is the common practical approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.autograd import (
    Adam,
    Embedding,
    Linear,
    Module,
    Parameter,
    Tensor,
    margin_ranking_loss,
    ops,
)
from repro.autograd.engine import get_default_dtype
from repro.autograd.init import xavier_uniform
from repro.autograd.segment import gather, segment_mean, segment_sum
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import negative_triples
from repro.kg.triples import Triple, TripleSet
from repro.subgraph.linegraph import NUM_EDGE_TYPES, connection_types
from repro.utils.seeding import seeded_rng


@dataclass(frozen=True)
class RelationCooccurrence:
    """Per-relation, per-pattern sets of co-occurring relations in a graph."""

    # neighbors[relation][pattern] -> np.ndarray of co-occurring relation ids
    neighbors: Dict[int, Dict[int, np.ndarray]]


def relation_cooccurrence(graph: KnowledgeGraph) -> RelationCooccurrence:
    """Compute the relation co-occurrence structure of a whole graph."""
    pair_sets: Dict[Tuple[int, int], Set[int]] = {}
    for entity in range(graph.num_entities):
        edges = graph.incident_edges(entity)
        for i in edges:
            triple_i = graph.triples[i]
            for j in edges:
                if i == j:
                    continue
                triple_j = graph.triples[j]
                for pattern in connection_types(triple_j, triple_i):
                    pair_sets.setdefault((triple_i[1], pattern), set()).add(triple_j[1])
    neighbors: Dict[int, Dict[int, np.ndarray]] = {}
    for (relation, pattern), rels in pair_sets.items():
        neighbors.setdefault(relation, {})[pattern] = np.asarray(
            sorted(rels), dtype=np.int64
        )
    return RelationCooccurrence(neighbors=neighbors)


class MaKEr(Module):
    """Meta-learning knowledge extrapolation (whole-graph scorer)."""

    def __init__(
        self,
        num_relations: int,
        rng: np.random.Generator,
        embed_dim: int = 32,
        num_layers: int = 2,
        schema_vectors: Optional[np.ndarray] = None,
    ) -> None:
        super().__init__()
        self.num_relations = num_relations
        self.embed_dim = embed_dim
        self.num_layers = num_layers
        self._rng = rng
        self.relation_embedding = Embedding(num_relations, embed_dim, rng)
        # Pattern transforms for estimating unseen relation embeddings.
        self.pattern_weights = [
            Parameter(xavier_uniform((embed_dim, embed_dim), rng), name=f"P_e{e}")
            for e in range(NUM_EDGE_TYPES)
        ]
        self.gnn_layers = [Linear(embed_dim, embed_dim, rng) for _ in range(num_layers)]
        self._schema_proj: Optional[Linear] = None
        self._schema_vectors: Optional[Tensor] = None
        if schema_vectors is not None:
            # Engine dtype, not float64 — schema rows feed the projection
            # Linear and would promote its matmuls (RL001).
            self._schema_vectors = Tensor(
                np.asarray(schema_vectors, dtype=get_default_dtype())
            )
            self._schema_proj = Linear(schema_vectors.shape[1], embed_dim, rng, bias=False)
        self._cooccurrence_cache: Dict[int, RelationCooccurrence] = {}
        self._graph_refs: Dict[int, KnowledgeGraph] = {}

    # ------------------------------------------------------------------
    def _cooccurrence(self, graph: KnowledgeGraph) -> RelationCooccurrence:
        key = id(graph)  # repro-lint: disable=RL003 _graph_refs pins the graph so its id cannot be recycled
        if key not in self._cooccurrence_cache:
            self._cooccurrence_cache[key] = relation_cooccurrence(graph)
            self._graph_refs[key] = graph
        return self._cooccurrence_cache[key]

    def relation_features(
        self, graph: KnowledgeGraph, unseen: Set[int]
    ) -> Tensor:
        """Embeddings for all relations; unseen ones are estimated from
        co-occurring seen relations (falling back to schema projection or
        the raw table row when isolated)."""
        table = self.relation_embedding.weight
        if not unseen:
            return table
        cooc = self._cooccurrence(graph)
        rows: List[Tensor] = []
        for relation in range(self.num_relations):
            if relation not in unseen:
                rows.append(gather(table, np.asarray([relation])))
                continue
            aggregated = None
            patterns = cooc.neighbors.get(relation, {})
            for pattern, rels in patterns.items():
                seen_rels = np.asarray([r for r in rels if r not in unseen], dtype=np.int64)
                if len(seen_rels) == 0:
                    continue
                pooled = ops.mean(gather(table, seen_rels), axis=0, keepdims=True)
                part = ops.matmul(pooled, self.pattern_weights[pattern])
                aggregated = part if aggregated is None else ops.add(aggregated, part)
            if aggregated is not None:
                rows.append(ops.relu(aggregated))
            elif self._schema_proj is not None:
                onto = gather(self._schema_vectors, np.asarray([relation]))
                rows.append(self._schema_proj(onto))
            else:
                rows.append(gather(table, np.asarray([relation])))
        return ops.concat(rows, axis=0)

    # ------------------------------------------------------------------
    def entity_features(self, graph: KnowledgeGraph, relation_feats: Tensor) -> Tensor:
        """Entity embeddings built purely from relational structure."""
        edges = graph.triples.array
        num_entities = graph.num_entities
        if len(edges) == 0:
            return Tensor(np.zeros((num_entities, self.embed_dim)))
        heads, rels, tails = edges[:, 0], edges[:, 1], edges[:, 2]
        rel_rows = gather(relation_feats, rels)
        # h^0_i = mean of incident relation features (both directions).
        seg = np.concatenate([heads, tails])
        vals = ops.concat([rel_rows, rel_rows], axis=0)
        features = segment_mean(vals, seg, num_entities)
        for layer in self.gnn_layers:
            h_head = gather(features, heads)
            h_tail = gather(features, tails)
            # CompGCN-sub composition, direction-aware.
            incoming = segment_mean(ops.add(h_head, rel_rows), tails, num_entities)
            outgoing = segment_mean(ops.sub(h_tail, rel_rows), heads, num_entities)
            update = layer(ops.add(incoming, outgoing))
            features = ops.relu(ops.add(update, features))
        return features

    # ------------------------------------------------------------------
    def score_with_features(
        self,
        triples: Sequence[Triple],
        entity_feats: Tensor,
        relation_feats: Tensor,
    ) -> Tensor:
        """DistMult scores, shape (n, 1)."""
        array = np.asarray([tuple(t) for t in triples], dtype=np.int64)
        h = gather(entity_feats, array[:, 0])
        r = gather(relation_feats, array[:, 1])
        t = gather(entity_feats, array[:, 2])
        return ops.sum(ops.mul(ops.mul(h, r), t), axis=1, keepdims=True)

    def score_triples(
        self,
        graph: KnowledgeGraph,
        triples: Sequence[Triple],
        seen_relations: Optional[Set[int]] = None,
    ) -> np.ndarray:
        """Numpy scores; relations outside ``seen_relations`` are estimated."""
        was_training = self.training
        self.eval()
        try:
            unseen: Set[int] = set()
            if seen_relations is not None:
                present = graph.triples.relation_ids() | {t[1] for t in triples}
                unseen = {r for r in present if r not in seen_relations}
            relation_feats = self.relation_features(graph, unseen)
            entity_feats = self.entity_features(graph, relation_feats)
            scores = self.score_with_features(triples, entity_feats, relation_feats)
        finally:
            if was_training:
                self.train()
        return scores.data.reshape(-1)


class ScopedMaKEr:
    """Adapter fixing the seen-relation set so MaKEr satisfies the
    :class:`~repro.eval.protocol.TripleScorer` protocol."""

    def __init__(self, model: MaKEr, seen_relations: Set[int]) -> None:
        self.model = model
        self.seen_relations = set(seen_relations)

    def score_triples(self, graph: KnowledgeGraph, triples: Sequence[Triple]) -> np.ndarray:
        return self.model.score_triples(graph, triples, seen_relations=self.seen_relations)


def train_maker(
    model: MaKEr,
    graph: KnowledgeGraph,
    train_triples: TripleSet,
    episodes: int = 60,
    batch_size: int = 32,
    mask_fraction: float = 0.3,
    margin: float = 10.0,
    learning_rate: float = 1e-3,
    seed: int = 0,
) -> List[float]:
    """Episodic (meta) training; returns per-episode losses.

    Each episode masks a random subset of the training relations as
    pretend-unseen — their embeddings are *estimated* from co-occurrence —
    so the estimation transforms learn to extrapolate.
    """
    rng = seeded_rng(seed)
    optimizer = Adam(model.parameters(), lr=learning_rate)
    relations = sorted(train_triples.relation_ids())
    known = set(graph.triples) | set(train_triples)
    entities = sorted(graph.triples.entities())
    losses: List[float] = []
    model.train()
    for _episode in range(episodes):
        num_masked = max(1, int(mask_fraction * len(relations)))
        masked = set(
            int(r) for r in rng.choice(relations, size=num_masked, replace=False)
        )
        batch = train_triples.sample(batch_size, rng)
        positives = list(batch)
        negatives = negative_triples(
            batch,
            num_entities=graph.num_entities,
            rng=rng,
            known=known,
            candidate_entities=entities,
        )
        relation_feats = model.relation_features(graph, masked)
        entity_feats = model.entity_features(graph, relation_feats)
        pos_scores = model.score_with_features(positives, entity_feats, relation_feats)
        neg_scores = model.score_with_features(negatives, entity_feats, relation_feats)
        loss = margin_ranking_loss(pos_scores, neg_scores, margin=margin)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
    model.eval()
    return losses
