"""Evaluation protocols (paper §IV-B).

* **Triple classification**: one uniformly corrupted negative per test
  positive; AUC-PR over the pooled scores.
* **Entity prediction**: rank the ground-truth entity against 49 randomly
  sampled candidate corruptions of the head *or* tail; report MRR and
  Hits@10 (both in percent).

Both protocols restrict corruption entities to the *testing graph's* entity
set and filter corruptions that collide with known facts.

The ranking loop hands each query's full candidate list (truth + negatives)
to ``score_triples`` in one call; subgraph-scoring models batch it through
``prepare_many``, so the vectorized extraction engine shares each query's
K-hop frontier BFS across all ~50 candidates (they differ only in the
corrupted side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.eval.metrics import average_precision, hits_at, mrr, rank_of_first
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import negative_triples, ranking_candidates
from repro.kg.triples import Triple, TripleSet


class TripleScorer(Protocol):
    """Anything that can score triples against a context graph."""

    def score_triples(
        self, graph: KnowledgeGraph, triples: Sequence[Triple]
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class ClassificationResult:
    auc_pr: float
    num_positives: int

    def as_dict(self) -> Dict[str, float]:
        return {"AUC-PR": self.auc_pr}


@dataclass(frozen=True)
class RankingResult:
    mrr: float
    hits_at_10: float
    hits_at_1: float
    num_queries: int

    def as_dict(self) -> Dict[str, float]:
        return {"MRR": self.mrr, "Hits@10": self.hits_at_10, "Hits@1": self.hits_at_1}


def _candidate_entities(graph: KnowledgeGraph, targets: TripleSet) -> List[int]:
    entities = graph.triples.entities() | targets.entities()
    return sorted(entities)


def _known_facts(graph: KnowledgeGraph, targets: TripleSet) -> set:
    return set(graph.triples) | set(targets)


def evaluate_triple_classification(
    model: TripleScorer,
    graph: KnowledgeGraph,
    targets: TripleSet,
    rng: np.random.Generator,
) -> ClassificationResult:
    """AUC-PR with one sampled negative per positive (paper protocol)."""
    positives = list(targets)
    if not positives:
        raise ValueError("no test triples")
    candidates = _candidate_entities(graph, targets)
    known = _known_facts(graph, targets)
    negatives = negative_triples(
        targets,
        num_entities=graph.num_entities,
        rng=rng,
        known=known,
        candidate_entities=candidates,
    )
    pos_scores = model.score_triples(graph, positives)
    neg_scores = model.score_triples(graph, negatives)
    labels = [1] * len(positives) + [0] * len(negatives)
    scores = np.concatenate([pos_scores, neg_scores])
    return ClassificationResult(
        auc_pr=average_precision(labels, scores) * 100.0,
        num_positives=len(positives),
    )


def evaluate_entity_prediction(
    model: TripleScorer,
    graph: KnowledgeGraph,
    targets: TripleSet,
    rng: np.random.Generator,
    num_negatives: int = 49,
) -> RankingResult:
    """MRR / Hits@n ranking the truth against sampled candidates.

    For each test triple, the corrupted side (head or tail) is chosen
    uniformly — matching the paper's "replacing the head (or tail) with a
    random entity".
    """
    queries = list(targets)
    if not queries:
        raise ValueError("no test triples")
    candidates_pool = _candidate_entities(graph, targets)
    known = _known_facts(graph, targets)
    ranks: List[float] = []
    for triple in queries:
        corrupt_head = bool(rng.integers(2))
        candidates = ranking_candidates(
            triple,
            num_entities=graph.num_entities,
            rng=rng,
            num_negatives=num_negatives,
            known=known,
            candidate_entities=candidates_pool,
            corrupt_head=corrupt_head,
        )
        scores = model.score_triples(graph, candidates)
        ranks.append(rank_of_first(scores))
    return RankingResult(
        mrr=mrr(ranks),
        hits_at_10=hits_at(ranks, 10),
        hits_at_1=hits_at(ranks, 1),
        num_queries=len(queries),
    )


@dataclass(frozen=True)
class EvaluationReport:
    """Combined report in the shape of the paper's result tables."""

    classification: ClassificationResult
    ranking: RankingResult

    def as_dict(self) -> Dict[str, float]:
        row = {}
        row.update(self.classification.as_dict())
        row.update(self.ranking.as_dict())
        return row


def evaluate_both(
    model: TripleScorer,
    graph: KnowledgeGraph,
    targets: TripleSet,
    seed: int = 0,
    num_negatives: int = 49,
) -> EvaluationReport:
    """Run both protocols with independent deterministic streams."""
    classification = evaluate_triple_classification(
        model, graph, targets, np.random.default_rng((seed, 1))
    )
    ranking = evaluate_entity_prediction(
        model, graph, targets, np.random.default_rng((seed, 2)), num_negatives=num_negatives
    )
    return EvaluationReport(classification=classification, ranking=ranking)
