"""Evaluation protocols (paper §IV-B).

* **Triple classification**: one uniformly corrupted negative per test
  positive; AUC-PR over the pooled scores.
* **Entity prediction**: rank the ground-truth entity against 49 randomly
  sampled candidate corruptions of the head *or* tail; report MRR and
  Hits@10 (both in percent).

Both protocols restrict corruption entities to the *testing graph's* entity
set and filter corruptions that collide with known facts.

The ranking loop hands each query's full candidate list (truth + negatives)
to ``score_triples`` in one call; subgraph-scoring models batch it through
``prepare_many``, so the vectorized extraction engine shares each query's
K-hop frontier BFS across all ~50 candidates (they differ only in the
corrupted side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Sequence, Set

import numpy as np

from repro.autograd import no_grad
from repro.eval.metrics import average_precision, hits_at, mrr, rank_of_first
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import negative_triples, ranking_candidates
from repro.kg.triples import Triple, TripleSet
from repro.obs import get_registry, span
from repro.utils.seeding import seeded_rng


class TripleScorer(Protocol):
    """Anything that can score triples against a context graph."""

    def score_triples(
        self, graph: KnowledgeGraph, triples: Sequence[Triple]
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class ClassificationResult:
    auc_pr: float
    num_positives: int

    def as_dict(self) -> Dict[str, float]:
        return {"AUC-PR": self.auc_pr}


@dataclass(frozen=True)
class RankingResult:
    mrr: float
    hits_at_10: float
    hits_at_1: float
    num_queries: int

    def as_dict(self) -> Dict[str, float]:
        return {"MRR": self.mrr, "Hits@10": self.hits_at_10, "Hits@1": self.hits_at_1}


def candidate_entity_pool(
    graph: KnowledgeGraph, targets: Optional[TripleSet] = None
) -> List[int]:
    """The sorted entity pool both protocols corrupt over: every entity of
    the context graph plus (when evaluating) the target triples' entities.

    Public because the serving layer's top-k queries must rank over exactly
    this pool to stay consistent with :func:`evaluate_entity_prediction`.
    """
    entities = set(graph.triples.entities())
    if targets is not None:
        entities |= targets.entities()
    return sorted(entities)


def known_fact_set(
    graph: KnowledgeGraph, targets: Optional[TripleSet] = None
) -> Set[Triple]:
    """All facts a corruption must not collide with (graph + targets)."""
    known = set(graph.triples)
    if targets is not None:
        known |= set(targets)
    return known


# Internal aliases kept for the protocol implementations below.
_candidate_entities = candidate_entity_pool
_known_facts = known_fact_set


def link_prediction_candidates(
    graph: KnowledgeGraph,
    head: Optional[int],
    relation: int,
    tail: Optional[int],
    exclude_known: bool = True,
    candidate_entities: Optional[Sequence[int]] = None,
    known: Optional[Set[Triple]] = None,
) -> List[Triple]:
    """Candidate triples for an online top-k query (serving's ranking list).

    Exactly one of ``head`` / ``tail`` must be ``None`` — that side is
    filled with every entity from ``candidate_entities`` (default: the same
    pool as :func:`candidate_entity_pool`), in deterministic sorted order.
    This is the exhaustive counterpart of
    :func:`repro.kg.sampling.ranking_candidates` with identical filtering
    semantics: duplicates never appear, and with ``exclude_known`` (the
    serving default) candidates that collide with known facts are dropped,
    so a top-k answer only proposes *new* links.
    """
    if (head is None) == (tail is None):
        raise ValueError("exactly one of head/tail must be None")
    pool = (
        candidate_entity_pool(graph) if candidate_entities is None else candidate_entities
    )
    known_facts = (known_fact_set(graph) if known is None else known) if exclude_known else set()
    corrupt_head = head is None
    relation = int(relation)
    fixed = int(tail) if corrupt_head else int(head)
    candidates: List[Triple] = []
    seen: Set[Triple] = set()
    # Single pass over the (possibly precomputed, serving hot-path) pool;
    # int() per entry normalises numpy ids without an extra list copy.
    for entity in pool:
        entity = int(entity)
        triple: Triple = (
            (entity, relation, fixed) if corrupt_head else (fixed, relation, entity)
        )
        if triple in seen or triple in known_facts:
            continue
        seen.add(triple)
        candidates.append(triple)
    return candidates


def evaluate_triple_classification(
    model: TripleScorer,
    graph: KnowledgeGraph,
    targets: TripleSet,
    rng: np.random.Generator,
    pool=None,
) -> ClassificationResult:
    """AUC-PR with one sampled negative per positive (paper protocol).

    ``pool`` (a :class:`repro.parallel.pool.WorkerPool` whose context pins
    this model and graph) shards the scoring across worker processes;
    per-sample scoring is independent of batch composition, so the metric
    is bitwise identical to the serial run.
    """
    positives = list(targets)
    if not positives:
        raise ValueError("no test triples")
    candidates = _candidate_entities(graph, targets)
    known = _known_facts(graph, targets)
    negatives = negative_triples(
        targets,
        num_entities=graph.num_entities,
        rng=rng,
        known=known,
        candidate_entities=candidates,
    )
    if pool is not None and pool.workers > 1:
        from repro.parallel.evaluation import score_triples_sharded

        pos_scores = score_triples_sharded(pool, positives)
        neg_scores = score_triples_sharded(pool, negatives)
    else:
        # Evaluation never backpropagates: suppress backward-graph
        # construction for every scorer (subgraph models also no-grad
        # internally; this covers rule/embedding scorers uniformly).
        with no_grad():
            pos_scores = model.score_triples(graph, positives)
            neg_scores = model.score_triples(graph, negatives)
    labels = [1] * len(positives) + [0] * len(negatives)
    scores = np.concatenate([pos_scores, neg_scores])
    return ClassificationResult(
        auc_pr=average_precision(labels, scores) * 100.0,
        num_positives=len(positives),
    )


def build_ranking_queries(
    graph: KnowledgeGraph,
    targets: TripleSet,
    rng: np.random.Generator,
    num_negatives: int = 49,
) -> List[List[Triple]]:
    """Every query's candidate list (truth at index 0), drawn in protocol
    order.

    This is the RNG-consuming phase of entity prediction, factored out so
    the serial loop and the parallel fan-out rank the *identical* candidate
    lists: per query, one ``integers(2)`` draw for the corrupted side, then
    the :func:`~repro.kg.sampling.ranking_candidates` draws — the exact
    stream order of the historical inline loop.
    """
    candidates_pool = _candidate_entities(graph, targets)
    known = _known_facts(graph, targets)
    query_lists: List[List[Triple]] = []
    for triple in targets:
        corrupt_head = bool(rng.integers(2))
        query_lists.append(
            ranking_candidates(
                triple,
                num_entities=graph.num_entities,
                rng=rng,
                num_negatives=num_negatives,
                known=known,
                candidate_entities=candidates_pool,
                corrupt_head=corrupt_head,
            )
        )
    return query_lists


def evaluate_entity_prediction(
    model: TripleScorer,
    graph: KnowledgeGraph,
    targets: TripleSet,
    rng: np.random.Generator,
    num_negatives: int = 49,
    pool=None,
) -> RankingResult:
    """MRR / Hits@n ranking the truth against sampled candidates.

    For each test triple, the corrupted side (head or tail) is chosen
    uniformly — matching the paper's "replacing the head (or tail) with a
    random entity".  With ``pool`` (a worker pool pinning this model and
    graph), per-query candidate scoring fans out across worker processes;
    candidate drawing stays in the parent, so metrics are bitwise identical
    to the serial protocol.
    """
    queries = list(targets)
    if not queries:
        raise ValueError("no test triples")
    query_lists = build_ranking_queries(graph, targets, rng, num_negatives)
    with span("eval.rank"):
        if pool is not None and pool.workers > 1:
            from repro.parallel.evaluation import score_query_lists

            per_query_scores = score_query_lists(pool, query_lists)
        else:
            per_query_scores = []
            for candidates in query_lists:
                with no_grad():
                    per_query_scores.append(model.score_triples(graph, candidates))
    get_registry().counter("eval.queries").inc(len(query_lists))
    ranks: List[float] = [rank_of_first(scores) for scores in per_query_scores]
    return RankingResult(
        mrr=mrr(ranks),
        hits_at_10=hits_at(ranks, 10),
        hits_at_1=hits_at(ranks, 1),
        num_queries=len(queries),
    )


@dataclass(frozen=True)
class EvaluationReport:
    """Combined report in the shape of the paper's result tables."""

    classification: ClassificationResult
    ranking: RankingResult

    def as_dict(self) -> Dict[str, float]:
        row = {}
        row.update(self.classification.as_dict())
        row.update(self.ranking.as_dict())
        return row


def evaluate_both(
    model: TripleScorer,
    graph: KnowledgeGraph,
    targets: TripleSet,
    seed: int = 0,
    num_negatives: int = 49,
    workers: int = 1,
) -> EvaluationReport:
    """Run both protocols with independent deterministic streams.

    ``workers > 1`` fans candidate scoring across a transient worker pool
    (see :mod:`repro.parallel`); metrics are bitwise identical to the
    serial run for any worker count.
    """
    if workers > 1:
        from repro.parallel.evaluation import ParallelEvaluator

        with ParallelEvaluator(model, graph, workers=workers, seed=seed) as evaluator:
            classification = evaluator.triple_classification(
                targets, seeded_rng((seed, 1))
            )
            ranking = evaluator.entity_prediction(
                targets,
                seeded_rng((seed, 2)),
                num_negatives=num_negatives,
            )
            return EvaluationReport(classification=classification, ranking=ranking)
    classification = evaluate_triple_classification(
        model, graph, targets, seeded_rng((seed, 1))
    )
    ranking = evaluate_entity_prediction(
        model, graph, targets, seeded_rng((seed, 2)), num_negatives=num_negatives
    )
    return EvaluationReport(classification=classification, ranking=ranking)
