"""`repro.eval` — metrics and evaluation protocols."""

from repro.eval.metrics import average_precision, hits_at, mrr, rank_of_first
from repro.eval.protocol import (
    ClassificationResult,
    EvaluationReport,
    RankingResult,
    candidate_entity_pool,
    evaluate_both,
    evaluate_entity_prediction,
    evaluate_triple_classification,
    known_fact_set,
    link_prediction_candidates,
)
from repro.eval.splits import (
    categorize_ext_targets,
    categorize_ext_triple,
    seen_relation_triples,
    unseen_relation_triples,
)

__all__ = [
    "average_precision",
    "rank_of_first",
    "mrr",
    "hits_at",
    "ClassificationResult",
    "RankingResult",
    "EvaluationReport",
    "evaluate_triple_classification",
    "evaluate_entity_prediction",
    "evaluate_both",
    "candidate_entity_pool",
    "known_fact_set",
    "link_prediction_candidates",
    "unseen_relation_triples",
    "seen_relation_triples",
    "categorize_ext_triple",
    "categorize_ext_targets",
]
