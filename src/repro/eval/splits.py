"""Test-set filters for the fully inductive settings.

* semi / fully unseen-relation filters over a testing graph's targets;
* the MaKEr-style ``u_ent`` / ``u_rel`` / ``u_both`` categorisation used by
  the Ext benchmarks (Tables IV/V).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set

from repro.kg.triples import Triple, TripleSet


def unseen_relation_triples(targets: TripleSet, seen_relations: Set[int]) -> TripleSet:
    """Triples whose relation is unseen (the *fully* setting's targets)."""
    return targets.filter(lambda t: t[1] not in seen_relations)


def seen_relation_triples(targets: TripleSet, seen_relations: Set[int]) -> TripleSet:
    return targets.filter(lambda t: t[1] in seen_relations)


def categorize_ext_triple(
    triple: Triple, seen_entities: Set[int], seen_relations: Set[int]
) -> str:
    """MaKEr's target categories.

    * ``u_ent``  — all entities unseen, relation seen;
    * ``u_rel``  — all entities seen, relation unseen;
    * ``u_both`` — relation unseen and at least one entity unseen;
    * ``seen``   — everything seen (not a fully/partially inductive target);
    * ``bridge`` — relation seen, exactly one entity unseen.
    """
    head, rel, tail = triple
    head_seen = head in seen_entities
    tail_seen = tail in seen_entities
    rel_seen = rel in seen_relations
    if rel_seen:
        if head_seen and tail_seen:
            return "seen"
        if not head_seen and not tail_seen:
            return "u_ent"
        return "bridge"
    if head_seen and tail_seen:
        return "u_rel"
    return "u_both"


def categorize_ext_targets(
    targets: TripleSet, seen_entities: Set[int], seen_relations: Set[int]
) -> Dict[str, TripleSet]:
    """Partition ``targets`` into the MaKEr categories."""
    buckets: Dict[str, list] = {}
    for triple in targets:
        key = categorize_ext_triple(triple, seen_entities, seen_relations)
        buckets.setdefault(key, []).append(triple)
    return {key: TripleSet(rows) for key, rows in buckets.items()}
