"""Evaluation metrics (paper §IV-B).

* **AUC-PR** — area under the precision-recall curve, computed as average
  precision (the standard step-wise interpolation-free estimator), for
  triple classification;
* **MRR** and **Hits@n** over ranks, for entity prediction.

Ranks are computed with *mean tie-breaking* (ties share the average rank),
avoiding the optimistic-rank artefact of models emitting constant scores.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.autograd.engine import SCORE_DTYPE


def average_precision(labels: Sequence[int], scores: Sequence[float]) -> float:
    """AUC-PR as average precision.

    ``AP = sum_k P(k) * [label_k == 1] / num_positives`` with candidates
    sorted by descending score (ties broken by stable order).
    """
    labels = np.asarray(labels, dtype=np.int64)
    scores = np.asarray(scores, dtype=SCORE_DTYPE)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must be the same length")
    num_positives = int(labels.sum())
    if num_positives == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    cumulative_hits = np.cumsum(sorted_labels)
    precision_at_k = cumulative_hits / np.arange(1, len(labels) + 1)
    return float((precision_at_k * sorted_labels).sum() / num_positives)


def rank_of_first(scores: Sequence[float]) -> float:
    """Rank of the candidate at index 0 among ``scores`` (mean ties).

    The evaluation protocols put the ground truth first in each candidate
    list; rank 1 is best.
    """
    scores = np.asarray(scores, dtype=SCORE_DTYPE)
    if len(scores) == 0:
        raise ValueError("empty candidate list")
    target = scores[0]
    better = int((scores > target).sum())
    ties = int((scores == target).sum())  # includes the target itself
    return better + (ties + 1) / 2.0


def mrr(ranks: Iterable[float]) -> float:
    """Mean reciprocal rank, in percent (paper convention)."""
    ranks = np.asarray(list(ranks), dtype=SCORE_DTYPE)
    if len(ranks) == 0:
        return 0.0
    return float((1.0 / ranks).mean() * 100.0)


def hits_at(ranks: Iterable[float], n: int = 10) -> float:
    """Fraction of ranks <= n, in percent."""
    ranks = np.asarray(list(ranks), dtype=SCORE_DTYPE)
    if len(ranks) == 0:
        return 0.0
    return float((ranks <= n).mean() * 100.0)
