"""Module/Parameter abstractions, mirroring the familiar ``torch.nn`` pattern.

A :class:`Module` is a tree of submodules and :class:`Parameter` leaves.
``parameters()`` walks the tree; optimizers consume that flat list.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor (``requires_grad=True`` by construction)."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all neural network components.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__`` and implement ``forward``.  Instances are callable.
    """

    def __init__(self) -> None:
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs over the module tree."""
        for attr, value in vars(self).items():
            name = f"{prefix}.{attr}" if prefix else attr
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(name)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{name}[{i}]", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{name}[{i}]")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{name}[{key}]", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{name}[{key}]")

    def parameters(self) -> list:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    def train(self) -> "Module":
        """Switch the whole tree to training mode (enables dropout)."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Switch the whole tree to inference mode."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        item._set_mode(training)

    # ------------------------------------------------------------------
    # (De)serialisation: a flat dict of numpy arrays keyed by dotted names.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.shape}, got {value.shape}"
                )
            param.data = value.copy()


class ModuleList(Module):
    """A list container whose items are registered submodules."""

    def __init__(self, modules=()) -> None:
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def __len__(self) -> int:
        return len(self.items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers don't forward
        raise TypeError("ModuleList is a container and cannot be called")
