"""Loss functions used by the models.

The paper trains every subgraph-reasoning model with a margin-based ranking
loss (eq. 12): ``L = sum_i max(0, score(n_i) - score(p_i) + gamma)``.
TransE pre-training on the schema graph uses the same loss over distance
scores; binary cross-entropy is provided for auxiliary experiments.
"""

from __future__ import annotations

from repro.autograd import ops
from repro.autograd.tensor import Tensor, as_tensor


def margin_ranking_loss(
    positive_scores: Tensor, negative_scores: Tensor, margin: float = 10.0
) -> Tensor:
    """Paper eq. (12): hinge on (negative - positive + margin), summed then
    averaged over the batch for scale-independence of batch size."""
    positive_scores = as_tensor(positive_scores)
    negative_scores = as_tensor(negative_scores)
    if positive_scores.shape != negative_scores.shape:
        raise ValueError(
            f"score shapes differ: {positive_scores.shape} vs {negative_scores.shape}"
        )
    hinge = ops.maximum(
        ops.add(ops.sub(negative_scores, positive_scores), margin), 0.0
    )
    return ops.mean(hinge)


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically-stable BCE on raw scores: mean over elements."""
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    probs = ops.sigmoid(logits)
    loss = ops.sub(
        ops.mul(ops.mul(targets, ops.log(probs)), -1.0),
        ops.mul(ops.sub(1.0, targets), ops.log(ops.sub(1.0, probs))),
    )
    return ops.mean(loss)


def mse_loss(predictions: Tensor, targets) -> Tensor:
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    diff = ops.sub(predictions, targets)
    return ops.mean(ops.mul(diff, diff))
