"""Standard neural-network layers built on the autograd engine."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd import engine, init, ops
from repro.autograd.module import Module, ModuleList, Parameter
from repro.autograd.segment import gather
from repro.autograd.tensor import Tensor


class Linear(Module):
    """Affine map ``y = x @ W + b`` with Xavier-uniform weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng), name="weight"
        )
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = ops.matmul(x, self.weight)
        if self.bias is not None:
            out = ops.add(out, self.bias)
        return out


class Embedding(Module):
    """A learnable lookup table of row vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        scale: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        if scale is None:
            data = init.xavier_normal((num_embeddings, embedding_dim), rng)
        else:
            data = rng.normal(0.0, scale, size=(num_embeddings, embedding_dim)).astype(
                engine.get_default_dtype()
            )
        self.weight = Parameter(data, name="embedding")

    def forward(self, index) -> Tensor:
        return gather(self.weight, np.asarray(index, dtype=np.int64))


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, self._rng, training=self.training)


class MLP(Module):
    """A stack of Linear layers with ReLU in between."""

    def __init__(
        self,
        sizes: Sequence[int],
        rng: np.random.Generator,
        bias: bool = True,
        final_activation: bool = False,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        self.layers = ModuleList(
            [Linear(sizes[i], sizes[i + 1], rng, bias=bias) for i in range(len(sizes) - 1)]
        )
        self.final_activation = final_activation

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            is_last = i == len(self.layers) - 1
            if not is_last or self.final_activation:
                x = ops.relu(x)
        return x
