"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class — the computational substrate
for every neural model in this repository.  The paper's reference
implementation uses PyTorch/DGL; neither is available offline, so we implement
the minimal-but-complete engine the models need: dynamic computation graphs,
topologically-ordered backpropagation, and broadcasting-aware gradients.

The design mirrors the familiar ``torch.Tensor`` surface where it matters
(``.data``, ``.grad``, ``.backward()``, operator overloads) so the model code
reads like standard deep-learning code.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from repro.autograd.engine import get_default_dtype

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float numpy array under the engine dtype policy.

    ``float32``/``float64`` arrays keep their dtype (so explicit-precision
    inputs — gradcheck suites, float64 references — are never silently
    downcast); everything else (scalars, sequences, integer arrays) is
    converted to the engine default dtype.
    """
    if isinstance(value, (np.ndarray, np.generic)):
        if value.dtype == np.float32 or value.dtype == np.float64:
            return np.asarray(value)
        return np.asarray(value, dtype=get_default_dtype())
    return np.asarray(value, dtype=get_default_dtype())


def unbroadcast(grad: np.ndarray, shape: tuple) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Numpy broadcasting implicitly expands operands; the corresponding
    gradient operation is a sum over the expanded axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in a dynamic autograd graph.

    Parameters
    ----------
    data:
        Array-like payload; converted to a float array under the engine
        dtype policy (see :mod:`repro.autograd.engine`).
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    parents:
        Tensors this node was computed from (internal use).
    backward_fn:
        Function mapping the output gradient to a tuple of parent gradients
        (``None`` entries for parents that do not require gradient flow).
    name:
        Optional debugging label.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Autograd machinery
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (for scalar losses, the usual seed of 1.0).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"backward seed shape {grad.shape} != tensor shape {self.data.shape}"
                )

        order = self._topological_order()
        # id()-keyed on purpose: every node in `order` is pinned by the
        # traversal (and by its children's `_parents` tuples) for the whole
        # walk, so ids cannot be recycled mid-backward.
        grads: dict[int, np.ndarray] = {id(self): grad}  # repro-lint: disable=RL003 nodes pinned by `order` for the whole walk
        for node in order:
            node_grad = grads.pop(id(node), None)  # repro-lint: disable=RL003 nodes pinned by `order` for the whole walk
            if node_grad is None:
                continue
            if node.requires_grad:
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                if not (parent.requires_grad or parent._backward_fn is not None):
                    continue
                key = id(parent)  # repro-lint: disable=RL003 parents pinned by node._parents for the whole walk
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    def _topological_order(self) -> list:
        """Nodes reachable from self, ordered outputs-first (reverse topo)."""
        visited: set[int] = set()
        order: list[Tensor] = []
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:  # repro-lint: disable=RL003 nodes pinned by the DFS stack/parents tuples during the walk
                continue
            visited.add(id(node))  # repro-lint: disable=RL003 nodes pinned by the DFS stack/parents tuples during the walk
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:  # repro-lint: disable=RL003 nodes pinned by the DFS stack/parents tuples during the walk
                    stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Operator overloads (implemented in ops.py, attached lazily below)
    # ------------------------------------------------------------------
    def __add__(self, other):  # pragma: no cover - thin dispatch
        from repro.autograd import ops

        return ops.add(self, other)

    def __radd__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.add(other, self)

    def __sub__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.sub(self, other)

    def __rsub__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.sub(other, self)

    def __mul__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.mul(self, other)

    def __rmul__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.mul(other, self)

    def __truediv__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.div(other, self)

    def __neg__(self):  # pragma: no cover
        from repro.autograd import ops

        return ops.mul(self, -1.0)

    def __pow__(self, exponent):  # pragma: no cover
        from repro.autograd import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):  # pragma: no cover
        from repro.autograd import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):  # pragma: no cover
        from repro.autograd import ops

        return ops.index_select(self, index)

    # Convenience methods mirroring the functional API --------------------
    def sum(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.autograd import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self):
        from repro.autograd import ops

        return ops.transpose(self)

    @property
    def T(self):
        return self.transpose()

    def relu(self):
        from repro.autograd import ops

        return ops.relu(self)

    def sigmoid(self):
        from repro.autograd import ops

        return ops.sigmoid(self)

    def tanh(self):
        from repro.autograd import ops

        return ops.tanh(self)

    def exp(self):
        from repro.autograd import ops

        return ops.exp(self)

    def log(self):
        from repro.autograd import ops

        return ops.log(self)


def as_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Coerce ``value`` to a (non-differentiable) :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def stack_tensors(tensors: Iterable[Tensor]) -> Tensor:
    """Stack 1-D/2-D tensors along a new leading axis (differentiable)."""
    from repro.autograd import ops

    return ops.stack(list(tensors))
