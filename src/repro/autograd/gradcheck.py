"""Numerical gradient checking for the autograd engine.

Central-difference verification that a scalar-valued function's analytic
gradients (from :meth:`Tensor.backward`) match numerical estimates.  Used
throughout the test suite; exposed publicly because it is the right tool
for validating any new op contributed to the engine.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[[], Tensor],
    parameter: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``parameter``.

    ``fn`` must recompute the forward pass from ``parameter.data`` each call.
    """
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(fn().data.reshape(-1)[0])
        flat[i] = original - epsilon
        minus = float(fn().data.reshape(-1)[0])
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic == numerical gradients for every parameter.

    Raises ``AssertionError`` with the offending parameter index otherwise.
    """
    for param in parameters:
        param.zero_grad()
    output = fn()
    if output.size != 1:
        raise ValueError("check_gradients requires a scalar output")
    output.backward()
    for index, param in enumerate(parameters):
        analytic = param.grad if param.grad is not None else np.zeros_like(param.data)
        numeric = numerical_gradient(fn, param, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for parameter {index}: max abs diff {worst:.3e}"
            )
