"""`repro.autograd` — a numpy reverse-mode autodiff engine.

Public surface:

* :class:`~repro.autograd.tensor.Tensor` and :func:`~repro.autograd.tensor.as_tensor`
* functional ops in :mod:`repro.autograd.ops`
* segment/graph ops in :mod:`repro.autograd.segment`
* :class:`~repro.autograd.module.Module` / :class:`~repro.autograd.module.Parameter`
* layers (:class:`Linear`, :class:`Embedding`, :class:`Dropout`, :class:`MLP`)
* optimizers (:class:`SGD`, :class:`Adam`) and losses
* engine policy (:func:`no_grad`, default dtype, kernel selection) in
  :mod:`repro.autograd.engine`
"""

from repro.autograd.engine import (
    default_dtype,
    enable_grad,
    get_default_dtype,
    is_grad_enabled,
    legacy_kernels,
    no_grad,
    set_default_dtype,
)
from repro.autograd.gradcheck import check_gradients, numerical_gradient
from repro.autograd.layers import MLP, Dropout, Embedding, Linear
from repro.autograd.losses import (
    binary_cross_entropy_with_logits,
    margin_ranking_loss,
    mse_loss,
)
from repro.autograd.module import Module, ModuleList, Parameter
from repro.autograd.optim import SGD, Adam, clip_grad_norm
from repro.autograd.segment import (
    gather,
    segment_count,
    segment_mean,
    segment_softmax,
    segment_sum,
)
from repro.autograd.tensor import Tensor, as_tensor

__all__ = [
    "Tensor",
    "as_tensor",
    "Module",
    "ModuleList",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "MLP",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "margin_ranking_loss",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "segment_count",
    "check_gradients",
    "numerical_gradient",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "legacy_kernels",
]
