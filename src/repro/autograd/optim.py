"""Gradient-descent optimizers (SGD, Adam) over Parameter lists.

The paper trains with Adam at learning rate 1e-3; we implement the standard
bias-corrected Adam (Kingma & Ba, 2015) plus plain SGD for tests/baselines,
and global-norm gradient clipping used to stabilise margin losses.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.autograd.module import Parameter


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    The squared norm comes from one dot product over the concatenated
    (raveled) gradients instead of a Python-level sum of per-parameter
    scalars.  Returns the pre-clip norm (useful for logging / divergence
    detection).
    """
    grads = [p.grad for p in parameters if p.grad is not None]
    if not grads:
        return 0.0
    flat = (
        grads[0].ravel()
        if len(grads) == 1
        else np.concatenate([g.ravel() for g in grads])
    )
    flat = flat.astype(np.float64, copy=False)  # repro-lint: disable=RL001 norm accumulation in float64: one scalar out, nothing re-enters the graph
    total = float(np.sqrt(flat @ flat))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for grad in grads:
            grad *= scale
    return total


class Optimizer:
    """Base optimizer: holds the parameter list and clears gradients."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None
        if momentum > 0.0:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            if self._velocity is not None:
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction; the paper's optimizer (lr=1e-3)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for i, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            # Moment buffers update in place; the bias-corrected update is
            # folded into one scratch array instead of m_hat/v_hat copies.
            m, v = self._m[i], self._v[i]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            denom = np.sqrt(v / bias2)
            denom += self.eps
            np.divide(m, denom, out=denom)
            denom *= self.lr / bias1
            param.data -= denom
