"""Differentiable functional operations over :class:`~repro.autograd.tensor.Tensor`.

Every function returns a new :class:`Tensor` whose ``backward_fn`` maps the
output gradient to gradients for each parent.  Broadcasting is handled by
:func:`~repro.autograd.tensor.unbroadcast`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autograd.engine import is_grad_enabled
from repro.autograd.tensor import ArrayLike, Tensor, as_tensor, unbroadcast

TensorLike = Union[Tensor, ArrayLike]


def _needs_graph(*tensors: Tensor) -> bool:
    """Whether an op must record a backward closure for these inputs.

    Always ``False`` inside :class:`repro.autograd.engine.no_grad` — the
    eval/serving fast path allocates no autograd bookkeeping at all.
    """
    if not is_grad_enabled():
        return False
    return any(t.requires_grad or t._backward_fn is not None for t in tensors)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------
def add(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data
    if not _needs_graph(a, b):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return unbroadcast(grad, a.shape), unbroadcast(grad, b.shape)

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def sub(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data
    if not _needs_graph(a, b):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return unbroadcast(grad, a.shape), unbroadcast(-grad, b.shape)

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def mul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data
    if not _needs_graph(a, b):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (
            unbroadcast(grad * b.data, a.shape),
            unbroadcast(grad * a.data, b.shape),
        )

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def div(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data
    if not _needs_graph(a, b):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (
            unbroadcast(grad / b.data, a.shape),
            unbroadcast(-grad * a.data / (b.data**2), b.shape),
        )

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def power(a: TensorLike, exponent: float) -> Tensor:
    a = as_tensor(a)
    out_data = a.data**exponent
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (unbroadcast(grad * exponent * a.data ** (exponent - 1), a.shape),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------
def matmul(a: TensorLike, b: TensorLike) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data
    if not _needs_graph(a, b):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        if a.data.ndim == 1 and b.data.ndim == 2:
            # (k,) @ (k, n) -> (n,)
            grad_a = grad @ b.data.T
            grad_b = np.outer(a.data, grad)
        elif a.data.ndim == 2 and b.data.ndim == 1:
            # (m, k) @ (k,) -> (m,)
            grad_a = np.outer(grad, b.data)
            grad_b = a.data.T @ grad
        elif a.data.ndim == 1 and b.data.ndim == 1:
            grad_a = grad * b.data
            grad_b = grad * a.data
        else:
            grad_a = grad @ np.swapaxes(b.data, -1, -2)
            grad_b = np.swapaxes(a.data, -1, -2) @ grad
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def _type_blocks(types: np.ndarray):
    """Stable sort of ``types`` into contiguous per-type blocks.

    Returns ``(order, starts, ends, block_types)`` where ``order`` is
    ``None`` when ``types`` is already sorted (no permutation needed).
    Also the run-decomposition kernel behind
    :func:`repro.autograd.segment._sorted_runs`.
    """
    m = len(types)
    if m and np.any(types[1:] < types[:-1]):
        order = np.argsort(types, kind="stable")
        sorted_types = types[order]
    else:
        order = None
        sorted_types = types
    if m == 0:
        starts = np.empty(0, dtype=np.int64)
    else:
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_types[1:] != sorted_types[:-1]))
        )
    ends = np.concatenate((starts[1:], [m])).astype(np.int64)
    return order, starts, ends, sorted_types[starts] if m else sorted_types


def typed_matmul(x: TensorLike, weights: TensorLike, types) -> Tensor:
    """Per-row typed linear map: ``out[i] = x[i] @ weights[types[i]]``.

    The batched replacement for a per-type mask/matmul/concat loop: rows
    are grouped by type with one stable argsort (skipped when ``types`` is
    already sorted), each group hits a single BLAS matmul against its
    type's ``(dim_in, dim_out)`` weight slice, and results scatter back to
    input order.  The backward is fused the same way — one grouped pass
    produces both ``grad_x`` and the stacked ``grad_weights``.
    """
    x, weights = as_tensor(x), as_tensor(weights)
    types = np.asarray(types, dtype=np.int64)
    if x.ndim != 2 or weights.ndim != 3:
        raise ValueError(
            f"typed_matmul expects x (m, d_in) and weights (T, d_in, d_out), "
            f"got {x.shape} and {weights.shape}"
        )
    if len(types) != x.shape[0]:
        raise ValueError(f"types length {len(types)} != rows {x.shape[0]}")
    num_types = weights.shape[0]
    if types.size and (types.min() < 0 or types.max() >= num_types):
        raise ValueError("type id out of range")

    order, starts, ends, block_types = _type_blocks(types)
    xs = x.data if order is None else x.data[order]
    out_dtype = np.result_type(x.data.dtype, weights.data.dtype)
    out_sorted = np.empty((x.shape[0], weights.shape[2]), dtype=out_dtype)
    for t, s, e in zip(block_types, starts, ends):
        np.matmul(xs[s:e], weights.data[t], out=out_sorted[s:e])
    if order is None:
        out_data = out_sorted
    else:
        out_data = np.empty_like(out_sorted)
        out_data[order] = out_sorted
    if not _needs_graph(x, weights):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        grad_sorted = grad if order is None else grad[order]
        grad_x_sorted = np.empty(x.shape, dtype=np.result_type(grad.dtype, out_dtype))
        grad_w = np.zeros_like(weights.data)
        for t, s, e in zip(block_types, starts, ends):
            np.matmul(grad_sorted[s:e], weights.data[t].T, out=grad_x_sorted[s:e])
            grad_w[t] = xs[s:e].T @ grad_sorted[s:e]
        if order is None:
            grad_x = grad_x_sorted
        else:
            grad_x = np.empty_like(grad_x_sorted)
            grad_x[order] = grad_x_sorted
        return grad_x, grad_w

    return Tensor(out_data, parents=(x, weights), backward_fn=backward)


def legacy_typed_matmul(x: TensorLike, weights: TensorLike, types) -> Tensor:
    """Reference :func:`typed_matmul`: the original per-type mask/matmul/
    concat/reorder composition of existing differentiable ops.  Kept for
    the equivalence property suite and benchmark contenders."""
    x, weights = as_tensor(x), as_tensor(weights)
    types = np.asarray(types, dtype=np.int64)
    parts = []
    order_parts = []
    for t in range(weights.shape[0]):
        idx = np.nonzero(types == t)[0]
        if not len(idx):
            continue
        parts.append(matmul(index_select(x, idx), index_select(weights, t)))
        order_parts.append(idx)
    if not parts:
        return Tensor(np.zeros((0, weights.shape[2]), dtype=x.data.dtype))
    order = np.concatenate(order_parts)
    stacked = concat(parts, axis=0)
    inverse = np.empty_like(order)
    inverse[order] = np.arange(len(order))
    return index_select(stacked, inverse)


def transpose(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.T
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad.T,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def reshape(a: Tensor, shape: tuple) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.reshape(shape)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad.reshape(a.shape),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------
def sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    if not _needs_graph(a):
        return Tensor(out_data)
    if axis is None:
        count = a.data.size
    elif isinstance(axis, tuple):
        count = int(np.prod([a.shape[ax] for ax in axis]))
    else:
        count = a.shape[axis]

    def backward(grad: np.ndarray):
        g = grad / count
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        return (np.broadcast_to(g, a.shape).copy(),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def max_along(a: Tensor, axis: int, keepdims: bool = False) -> Tensor:
    """Max reduction; gradient flows to the (first) argmax positions."""
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    if not _needs_graph(a):
        return Tensor(out_data)
    expanded = a.data.max(axis=axis, keepdims=True)
    mask = (a.data == expanded).astype(a.data.dtype)
    # Normalise so ties share the gradient.
    mask = mask / mask.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray):
        g = grad if keepdims else np.expand_dims(grad, axis=axis)
        return (mask * g,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


# ---------------------------------------------------------------------------
# Nonlinearities
# ---------------------------------------------------------------------------
def relu(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = np.maximum(a.data, 0.0)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * (a.data > 0.0),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def leaky_relu(a: Tensor, negative_slope: float = 0.2) -> Tensor:
    a = as_tensor(a)
    out_data = np.where(a.data > 0.0, a.data, negative_slope * a.data)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        # Slope mask in the input dtype, so float32 grads stay float32.
        slope = np.where(a.data > 0.0, 1.0, negative_slope).astype(
            a.data.dtype, copy=False
        )
        return (grad * slope,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def sigmoid(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * out_data * (1.0 - out_data),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def tanh(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = np.tanh(a.data)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * (1.0 - out_data**2),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def exp(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = np.exp(np.clip(a.data, -60.0, 60.0))
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * out_data,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def sin(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = np.sin(a.data)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * np.cos(a.data),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def cos(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = np.cos(a.data)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * -np.sin(a.data),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def sqrt(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = np.sqrt(np.maximum(a.data, 0.0))
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * 0.5 / np.maximum(out_data, 1e-12),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def softplus(a: Tensor) -> Tensor:
    """log(1 + exp(x)), numerically stable."""
    a = as_tensor(a)
    out_data = np.logaddexp(0.0, a.data)
    if not _needs_graph(a):
        return Tensor(out_data)
    sig = 1.0 / (1.0 + np.exp(-np.clip(a.data, -60.0, 60.0)))

    def backward(grad: np.ndarray):
        return (grad * sig,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def log(a: Tensor) -> Tensor:
    a = as_tensor(a)
    out_data = np.log(np.maximum(a.data, 1e-12))
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad / np.maximum(a.data, 1e-12),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        return (out_data * (grad - dot),)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


# ---------------------------------------------------------------------------
# Shape / indexing
# ---------------------------------------------------------------------------
def index_select(a: Tensor, index) -> Tensor:
    """Differentiable fancy indexing: gradient scatters back into ``a``."""
    a = as_tensor(a)
    out_data = a.data[index]
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        grad_a = np.zeros_like(a.data)
        np.add.at(grad_a, index, grad)  # repro-lint: disable=RL002 generic fancy-index scatter; the sort kernels require 1-D non-negative indices
        return (grad_a,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not _needs_graph(*tensors):
        return Tensor(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray):
        grads = []
        for i in range(len(tensors)):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(grad[tuple(slicer)])
        return tuple(grads)

    return Tensor(out_data, parents=tuple(tensors), backward_fn=backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not _needs_graph(*tensors):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(p, axis=axis) for p in pieces)

    return Tensor(out_data, parents=tuple(tensors), backward_fn=backward)


def dropout(a: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``."""
    a = as_tensor(a)
    if not training or rate <= 0.0:
        return a
    if rate >= 1.0:
        raise ValueError("dropout rate must be < 1")
    keep = ((rng.random(a.shape) >= rate) / (1.0 - rate)).astype(
        a.data.dtype, copy=False
    )
    out_data = a.data * keep
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad * keep,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def clip(a: Tensor, low: float, high: float) -> Tensor:
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    if not _needs_graph(a):
        return Tensor(out_data)
    mask = (a.data > low) & (a.data < high)

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def maximum(a: TensorLike, b: TensorLike) -> Tensor:
    """Elementwise max with subgradient split evenly on ties."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.maximum(a.data, b.data)
    if not _needs_graph(a, b):
        return Tensor(out_data)
    a_wins = a.data > b.data
    ties = a.data == b.data

    def backward(grad: np.ndarray):
        # Subgradient weights in the output dtype (bool-array arithmetic
        # with python floats would silently promote grads to float64).
        half_ties = np.asarray(0.5, dtype=out_data.dtype) * ties
        grad_a = grad * (a_wins + half_ties)
        grad_b = grad * (~a_wins & ~ties) + grad * half_ties
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)

    return Tensor(out_data, parents=(a, b), backward_fn=backward)


def l2_norm_squared(a: Tensor) -> Tensor:
    """Sum of squares of all elements (used for weight decay terms)."""
    return sum(mul(a, a))
