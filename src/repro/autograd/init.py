"""Weight initialisation schemes.

All initialisers take an explicit :class:`numpy.random.Generator` so model
construction is fully deterministic given a seed.  Draws happen in float64
(so the random stream is identical across dtype policies) and are cast to
the engine default dtype (see :mod:`repro.autograd.engine`).
"""

from __future__ import annotations

import numpy as np

from repro.autograd.engine import get_default_dtype


def xavier_uniform(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0] if shape else 1
    else:
        fan_in, fan_out = shape[0], shape[1]
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype())


def xavier_normal(shape: tuple, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal: N(0, gain^2 * 2 / (fan_in + fan_out))."""
    if len(shape) < 2:
        fan_in = fan_out = shape[0] if shape else 1
    else:
        fan_in, fan_out = shape[0], shape[1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype())


def uniform(shape: tuple, rng: np.random.Generator, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    return rng.uniform(low, high, size=shape).astype(get_default_dtype())


def zeros(shape: tuple) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())
