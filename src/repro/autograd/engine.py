"""Engine-wide compute policy: default dtype, grad mode, kernel selection.

Three process-wide switches control how the autograd engine executes, each
with a context-manager form for scoped overrides:

* **Default dtype** — the dtype new tensors and parameters are created with.
  ``float32`` by default (halves memory bandwidth on the message-passing
  matmuls); ``float64`` is an opt-in for gradient checking and the
  legacy-equivalence property suites.  Float arrays passed in explicitly as
  ``float32``/``float64`` keep their dtype — the policy only governs
  scalars, sequences, integer arrays and parameter initialisation.
* **Grad mode** — :class:`no_grad` suppresses backward-graph construction
  engine-wide: inside the context every op returns a plain tensor with no
  parents and no backward closure, so eval/serving forwards allocate zero
  autograd bookkeeping.
* **Kernel selection** — :func:`legacy_kernels` re-enables the original
  ``np.add.at`` scatter kernels and the per-edge-type matmul loop.  The
  fast sort-based kernels are the default; the legacy ones are kept as the
  reference implementation for equivalence tests and benchmarks.

The switches are plain module globals.  The serving stack funnels all
scoring through a single worker thread, so scoped toggling is safe there;
mixing training and ``no_grad`` scoring across threads is not supported.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Union

import numpy as np

DtypeLike = Union[str, type, np.dtype]

#: Dtype of score/metric arrays at the eval/serving boundaries.  Scores
#: leave the engine as plain numpy and never re-enter autograd, so they
#: carry no promotion hazard; keeping ranking comparisons and metric
#: accumulation in float64 makes MRR/Hits/AUC identical whether the
#: engine computes in float32 or float64.  This is the one sanctioned
#: float64 constant outside this module's dtype policy (lint rule RL001).
SCORE_DTYPE: type = np.float64

_SUPPORTED_DTYPES = (np.float32, np.float64)

_default_dtype: type = np.float32
_grad_enabled: bool = True
_fast_kernels: bool = True


def resolve_dtype(dtype: DtypeLike) -> type:
    """Normalise ``dtype`` to ``np.float32`` or ``np.float64``."""
    resolved = np.dtype(dtype).type
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported engine dtype {dtype!r}; expected float32 or float64"
        )
    return resolved


# ---------------------------------------------------------------------------
# Default dtype policy
# ---------------------------------------------------------------------------
def get_default_dtype() -> type:
    """The dtype new tensors / parameters are created with."""
    return _default_dtype


def set_default_dtype(dtype: DtypeLike) -> None:
    """Set the engine default dtype (``float32`` or ``float64``)."""
    global _default_dtype
    _default_dtype = resolve_dtype(dtype)


@contextlib.contextmanager
def default_dtype(dtype: DtypeLike) -> Iterator[None]:
    """Scoped override of the engine default dtype."""
    global _default_dtype
    previous = _default_dtype
    _default_dtype = resolve_dtype(dtype)
    try:
        yield
    finally:
        _default_dtype = previous


# ---------------------------------------------------------------------------
# Grad mode
# ---------------------------------------------------------------------------
def is_grad_enabled() -> bool:
    return _grad_enabled


class no_grad:
    """Context manager disabling backward-graph construction engine-wide.

    Inside the context every op returns a graph-free tensor
    (``_backward_fn is None``, no parents), with forward values identical
    to grad mode.  Re-entrant; also usable as a decorator.
    """

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _grad_enabled
        _grad_enabled = self._previous

    def __call__(self, fn):
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Scoped re-enabling of grad mode (escape hatch inside ``no_grad``)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = True
    try:
        yield
    finally:
        _grad_enabled = previous


# ---------------------------------------------------------------------------
# Kernel selection
# ---------------------------------------------------------------------------
def fast_kernels_enabled() -> bool:
    return _fast_kernels


@contextlib.contextmanager
def legacy_kernels() -> Iterator[None]:
    """Scoped switch to the ``np.add.at`` reference kernels and the
    per-edge-type matmul loop (equivalence tests / benchmark contenders)."""
    global _fast_kernels
    previous = _fast_kernels
    _fast_kernels = False
    try:
        yield
    finally:
        _fast_kernels = previous
