"""Segment (scatter/gather) operations for graph neural networks.

Message passing aggregates variable-size neighborhoods.  We express this with
three primitives over a flat list of messages tagged by segment ids:

* :func:`gather`         — pick rows by index (embedding lookup / broadcast
                           node features onto edges);
* :func:`segment_sum`    — scatter-add messages into per-node accumulators;
* :func:`segment_softmax`— normalise attention logits within each segment.

All are differentiable; ``segment_sum``'s backward is a gather and vice versa.

Two kernel families implement the scatter reductions:

* the **fast kernels** (default) sort rows by segment id once (a stable
  argsort, skipped when ids are already sorted) and reduce contiguous runs
  with ``np.add.reduceat`` / ``np.maximum.reduceat``; 1-D reductions use
  ``np.bincount``.  Each segment reduces over its rows in their original
  order — bitwise-equal to the scatter kernels for the 1-D paths, within a
  few ULPs for the 2-D ``reduceat`` paths (numpy may re-associate the
  additions);
* the **legacy kernels** are the original ``np.add.at`` buffered-scatter
  implementations, kept verbatim as ``legacy_*`` references — the
  equivalence property suite (``tests/test_kernel_equivalence.py``) and the
  benchmark contenders run against them, selected engine-wide via
  :func:`repro.autograd.engine.legacy_kernels`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.engine import fast_kernels_enabled
from repro.autograd.ops import _needs_graph
from repro.autograd.tensor import Tensor, as_tensor


def _check_segment_ids(segment_ids: np.ndarray, num_rows: int) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    if len(segment_ids) != num_rows:
        raise ValueError(
            f"segment_ids length {len(segment_ids)} != number of rows {num_rows}"
        )
    if segment_ids.size and segment_ids.min() < 0:
        raise ValueError("segment ids must be non-negative")
    return segment_ids


def _sorted_runs(segment_ids: np.ndarray):
    """Stable sort of ``segment_ids`` into contiguous runs.

    Returns ``(order, starts, run_ids)``; ``order`` is ``None`` when the
    ids are already sorted (the permutation can be skipped).  Shares the
    run-decomposition kernel with :func:`repro.autograd.ops.typed_matmul`.
    """
    from repro.autograd.ops import _type_blocks

    order, starts, _ends, run_ids = _type_blocks(segment_ids)
    return order, starts, run_ids


def _segment_sum_array(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sort-based unsorted-segment-sum on raw arrays (fast kernel core).

    Within each segment, rows are summed in their original order — the
    same sequence as ``np.add.at``, so results agree with the legacy
    scatter kernel to within numpy's reduction re-association (a few ULPs;
    bitwise on the 1-D ``bincount`` path).
    """
    out_shape = (num_segments,) + values.shape[1:]
    n = len(segment_ids)
    if n == 0:
        return np.zeros(out_shape, dtype=values.dtype)
    if values.ndim == 1:
        out = np.bincount(segment_ids, weights=values, minlength=num_segments)
        return out.astype(values.dtype, copy=False)
    if values.ndim == 2 and values.shape[1] <= 64:
        # Per-column bincount beats sort+reduceat except on large
        # already-sorted inputs (measured crossover ~16k rows), and keeps
        # the exact np.add.at accumulation order.
        use_reduceat = n >= 16384 and not np.any(segment_ids[1:] < segment_ids[:-1])
        if not use_reduceat:
            out = np.empty(out_shape, dtype=values.dtype)
            for column in range(values.shape[1]):
                out[:, column] = np.bincount(
                    segment_ids, weights=values[:, column], minlength=num_segments
                )
            return out
    order, starts, run_ids = _sorted_runs(segment_ids)
    sorted_values = values if order is None else values[order]
    out = np.zeros(out_shape, dtype=values.dtype)
    out[run_ids] = np.add.reduceat(sorted_values, starts, axis=0)
    return out


def _segment_max_array(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sort-based per-segment max; empty segments come back as ``-inf``."""
    out = np.full((num_segments,) + values.shape[1:], -np.inf, dtype=values.dtype)
    if len(segment_ids) == 0:
        return out
    order, starts, run_ids = _sorted_runs(segment_ids)
    sorted_values = values if order is None else values[order]
    out[run_ids] = np.maximum.reduceat(sorted_values, starts, axis=0)
    return out


# ---------------------------------------------------------------------------
# Gather
# ---------------------------------------------------------------------------
def gather(a: Tensor, index) -> Tensor:
    """Row gather ``a[index]`` with (sort-based) scatter-add backward."""
    if not fast_kernels_enabled():
        return legacy_gather(a, index)
    a = as_tensor(a)
    index = np.asarray(index, dtype=np.int64)
    out_data = a.data[index]
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        if index.ndim != 1 or (index.size and index.min() < 0):
            # Rare generic-indexing path: keep the scatter kernel.
            grad_a = np.zeros_like(a.data)
            np.add.at(grad_a, index, grad)  # repro-lint: disable=RL002 fallback for multi-dim/negative indices the sort kernels cannot express
            return (grad_a,)
        grad_a = _segment_sum_array(grad, index, a.shape[0])
        if grad_a.dtype != a.data.dtype:
            grad_a = grad_a.astype(a.data.dtype)
        return (grad_a,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def legacy_gather(a: Tensor, index) -> Tensor:
    """Reference gather: ``np.add.at`` scatter backward (legacy kernel)."""
    a = as_tensor(a)
    index = np.asarray(index, dtype=np.int64)
    out_data = a.data[index]
    if not _needs_graph(a):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        grad_a = np.zeros_like(a.data)
        np.add.at(grad_a, index, grad)
        return (grad_a,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


# ---------------------------------------------------------------------------
# Segment sum / mean
# ---------------------------------------------------------------------------
def segment_sum(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    ``out[s] = sum(values[i] for i where segment_ids[i] == s)``; empty
    segments yield zero rows.  Output dtype follows the input dtype.
    """
    if not fast_kernels_enabled():
        return legacy_segment_sum(values, segment_ids, num_segments)
    values = as_tensor(values)
    segment_ids = _check_segment_ids(segment_ids, values.shape[0])
    if segment_ids.size and segment_ids.max() >= num_segments:
        raise ValueError("segment id exceeds num_segments")
    out_data = _segment_sum_array(values.data, segment_ids, num_segments)
    if not _needs_graph(values):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad[segment_ids],)

    return Tensor(out_data, parents=(values,), backward_fn=backward)


def legacy_segment_sum(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Reference segment sum: ``np.add.at`` into a float64 accumulator
    (the pre-dtype-policy behaviour, kept verbatim)."""
    values = as_tensor(values)
    segment_ids = _check_segment_ids(segment_ids, values.shape[0])
    if segment_ids.size and segment_ids.max() >= num_segments:
        raise ValueError("segment id exceeds num_segments")
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, values.data)
    if not _needs_graph(values):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad[segment_ids],)

    return Tensor(out_data, parents=(values,), backward_fn=backward)


def segment_mean(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Mean over each segment; empty segments yield zeros."""
    values = as_tensor(values)
    segment_ids = _check_segment_ids(segment_ids, values.shape[0])
    counts = np.bincount(segment_ids, minlength=num_segments).astype(
        values.data.dtype
    )
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(values, segment_ids, num_segments)
    inv = (1.0 / counts).reshape((num_segments,) + (1,) * (values.ndim - 1))
    from repro.autograd import ops

    return ops.mul(summed, inv.astype(summed.data.dtype, copy=False))


def segment_max_constant(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-segment max computed on raw arrays (used as a stop-gradient shift)."""
    if not fast_kernels_enabled():
        out = np.full((num_segments,) + values.shape[1:], -np.inf)
        np.maximum.at(out, segment_ids, values)  # repro-lint: disable=RL002 legacy-kernel branch, selected only under legacy_kernels()
        out[np.isneginf(out)] = 0.0
        return out
    out = _segment_max_array(values, segment_ids, num_segments)
    out[np.isneginf(out)] = 0.0
    return out


# ---------------------------------------------------------------------------
# Segment softmax
# ---------------------------------------------------------------------------
def segment_softmax(logits: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Softmax over each segment of a 1-D logits tensor.

    The max-shift for numerical stability is treated as a constant
    (the standard stop-gradient trick); the softmax Jacobian is exact.
    """
    if not fast_kernels_enabled():
        return legacy_segment_softmax(logits, segment_ids, num_segments)
    logits = as_tensor(logits)
    if logits.ndim != 1:
        raise ValueError("segment_softmax expects 1-D logits")
    segment_ids = _check_segment_ids(segment_ids, logits.shape[0])

    shift = segment_max_constant(logits.data, segment_ids, num_segments)
    shifted = logits.data - shift[segment_ids]
    exps = np.exp(np.clip(shifted, -60.0, 60.0))
    denom = np.bincount(segment_ids, weights=exps, minlength=num_segments)
    denom = np.maximum(denom, 1e-12).astype(exps.dtype, copy=False)
    out_data = exps / denom[segment_ids]

    if not _needs_graph(logits):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        # d softmax_i / d logit_j = p_i (delta_ij - p_j) within a segment.
        weighted = grad * out_data
        seg_dot = np.bincount(
            segment_ids, weights=weighted, minlength=num_segments
        ).astype(weighted.dtype, copy=False)
        return (weighted - out_data * seg_dot[segment_ids],)

    return Tensor(out_data, parents=(logits,), backward_fn=backward)


def legacy_segment_softmax(logits: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Reference segment softmax: ``np.add.at`` scatter normalisers."""
    logits = as_tensor(logits)
    if logits.ndim != 1:
        raise ValueError("segment_softmax expects 1-D logits")
    segment_ids = _check_segment_ids(segment_ids, logits.shape[0])

    shift = np.full(num_segments, -np.inf)
    np.maximum.at(shift, segment_ids, logits.data)
    shift[np.isneginf(shift)] = 0.0
    shifted = logits.data - shift[segment_ids]
    exps = np.exp(np.clip(shifted, -60.0, 60.0))
    denom = np.zeros(num_segments, dtype=np.float64)
    np.add.at(denom, segment_ids, exps)
    denom = np.maximum(denom, 1e-12)
    out_data = exps / denom[segment_ids]

    if not _needs_graph(logits):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        weighted = grad * out_data
        seg_dot = np.zeros(num_segments, dtype=np.float64)
        np.add.at(seg_dot, segment_ids, weighted)
        return (weighted - out_data * seg_dot[segment_ids],)

    return Tensor(out_data, parents=(logits,), backward_fn=backward)


def segment_count(segment_ids, num_segments: int) -> np.ndarray:
    """Number of rows in each segment (plain numpy helper)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    return np.bincount(segment_ids, minlength=num_segments)
