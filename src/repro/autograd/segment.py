"""Segment (scatter/gather) operations for graph neural networks.

Message passing aggregates variable-size neighborhoods.  We express this with
three primitives over a flat list of messages tagged by segment ids:

* :func:`gather`         — pick rows by index (embedding lookup / broadcast
                           node features onto edges);
* :func:`segment_sum`    — scatter-add messages into per-node accumulators;
* :func:`segment_softmax`— normalise attention logits within each segment.

All are differentiable; ``segment_sum``'s backward is a gather and vice versa.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, as_tensor


def _check_segment_ids(segment_ids: np.ndarray, num_rows: int) -> np.ndarray:
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if segment_ids.ndim != 1:
        raise ValueError("segment_ids must be 1-D")
    if len(segment_ids) != num_rows:
        raise ValueError(
            f"segment_ids length {len(segment_ids)} != number of rows {num_rows}"
        )
    return segment_ids


def gather(a: Tensor, index) -> Tensor:
    """Row gather ``a[index]`` with scatter-add backward."""
    a = as_tensor(a)
    index = np.asarray(index, dtype=np.int64)
    out_data = a.data[index]
    if not (a.requires_grad or a._backward_fn is not None):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        grad_a = np.zeros_like(a.data)
        np.add.at(grad_a, index, grad)
        return (grad_a,)

    return Tensor(out_data, parents=(a,), backward_fn=backward)


def segment_sum(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    ``out[s] = sum(values[i] for i where segment_ids[i] == s)``; empty
    segments yield zero rows.
    """
    values = as_tensor(values)
    segment_ids = _check_segment_ids(segment_ids, values.shape[0])
    if segment_ids.size and segment_ids.max() >= num_segments:
        raise ValueError("segment id exceeds num_segments")
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(out_data, segment_ids, values.data)
    if not (values.requires_grad or values._backward_fn is not None):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        return (grad[segment_ids],)

    return Tensor(out_data, parents=(values,), backward_fn=backward)


def segment_mean(values: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Mean over each segment; empty segments yield zeros."""
    values = as_tensor(values)
    segment_ids = _check_segment_ids(segment_ids, values.shape[0])
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0)
    summed = segment_sum(values, segment_ids, num_segments)
    inv = (1.0 / counts).reshape((num_segments,) + (1,) * (values.ndim - 1))
    from repro.autograd import ops

    return ops.mul(summed, inv)


def segment_max_constant(values: np.ndarray, segment_ids: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment max computed on raw arrays (used as a stop-gradient shift)."""
    out = np.full((num_segments,) + values.shape[1:], -np.inf)
    np.maximum.at(out, segment_ids, values)
    out[np.isneginf(out)] = 0.0
    return out


def segment_softmax(logits: Tensor, segment_ids, num_segments: int) -> Tensor:
    """Softmax over each segment of a 1-D logits tensor.

    The max-shift for numerical stability is treated as a constant
    (the standard stop-gradient trick); the softmax Jacobian is exact.
    """
    logits = as_tensor(logits)
    if logits.ndim != 1:
        raise ValueError("segment_softmax expects 1-D logits")
    segment_ids = _check_segment_ids(segment_ids, logits.shape[0])

    shift = segment_max_constant(logits.data, segment_ids, num_segments)
    shifted = logits.data - shift[segment_ids]
    exps = np.exp(np.clip(shifted, -60.0, 60.0))
    denom = np.zeros(num_segments, dtype=np.float64)
    np.add.at(denom, segment_ids, exps)
    denom = np.maximum(denom, 1e-12)
    out_data = exps / denom[segment_ids]

    if not (logits.requires_grad or logits._backward_fn is not None):
        return Tensor(out_data)

    def backward(grad: np.ndarray):
        # d softmax_i / d logit_j = p_i (delta_ij - p_j) within a segment.
        weighted = grad * out_data
        seg_dot = np.zeros(num_segments, dtype=np.float64)
        np.add.at(seg_dot, segment_ids, weighted)
        return (weighted - out_data * seg_dot[segment_ids],)

    return Tensor(out_data, parents=(logits,), backward_fn=backward)


def segment_count(segment_ids, num_segments: int) -> np.ndarray:
    """Number of rows in each segment (plain numpy helper)."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    return np.bincount(segment_ids, minlength=num_segments)
