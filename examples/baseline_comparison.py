"""Partially inductive comparison across all methods (paper Table VI style).

Trains GraIL, TACT-base, TACT, CoMPILE and the four RMPI variants on a
WN18RR-like benchmark (sparse — many empty enclosing subgraphs, where the
NE module matters most) and prints entity prediction Hits@10 plus triple
classification AUC-PR.

Run:  python examples/baseline_comparison.py
"""

from repro.experiments import print_table, results_to_rows, run_experiment
from repro.kg import build_partial_benchmark
from repro.train import TrainingConfig

METHODS = (
    "GraIL",
    "TACT-base",
    "TACT",
    "CoMPILE",
    "RMPI-base",
    "RMPI-NE",
    "RMPI-TA",
    "RMPI-NE-TA",
)


def main() -> None:
    benchmark = build_partial_benchmark("WN18RR", 1, scale=0.06, seed=0)
    print(f"Benchmark {benchmark.name}: {benchmark.statistics()}")

    training = TrainingConfig(epochs=8, seed=0, max_triples_per_epoch=150)
    results = []
    for method in METHODS:
        print(f"  training {method}...")
        results.append(run_experiment(benchmark, method, training))

    metric_keys = ("Hits@10", "MRR", "AUC-PR")
    print_table(
        ["method", "benchmark", *metric_keys],
        results_to_rows(results, metric_keys),
        title="Partially inductive KGC (unseen entities)",
    )


if __name__ == "__main__":
    main()
