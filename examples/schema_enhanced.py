"""Ontological schema injection (paper §III-D2): TransE on the schema graph.

Shows the Schema Enhanced pipeline end to end:

1. materialise the RDFS schema graph (subPropertyOf / domain / range /
   subClassOf) of a NELL-like ontology — including *unseen* relations;
2. pre-train TransE on it and inspect which relations land near each other;
3. train schema-enhanced vs random-initialized RMPI on a fully inductive
   benchmark and compare.

Run:  python examples/schema_enhanced.py
"""

import numpy as np

from repro.experiments import print_table, run_full_experiment
from repro.kg import build_full_benchmark, family_ontology
from repro.schema import TransEConfig, build_schema_graph, pretrain_schema_embeddings
from repro.train import TrainingConfig


def nearest_relations(vectors: np.ndarray, relation: int, k: int = 3):
    distances = np.linalg.norm(vectors - vectors[relation], axis=1)
    order = np.argsort(distances)
    return [int(r) for r in order if r != relation][:k]


def main() -> None:
    ontology = family_ontology("NELL-995")
    schema = build_schema_graph(ontology)
    print(f"Schema graph: {schema.statistics()} "
          f"({schema.num_relations} relations + {schema.num_concepts} concepts)")

    print("\nPre-training TransE on the schema graph...")
    vectors = pretrain_schema_embeddings(schema, TransEConfig(dim=32, epochs=100))

    print("Nearest schema neighbors of a few relations "
          "(relations sharing domain/range/hierarchy cluster together):")
    for relation in (0, 5, ontology.num_relations - 1):
        sig = ontology.signatures[relation]
        neighbors = nearest_relations(vectors, relation)
        print(f"  r{relation} (domain=c{sig.domain}, range=c{sig.range}) "
              f"-> nearest: {['r%d' % n for n in neighbors]}")

    benchmark = build_full_benchmark("NELL-995", 2, 3, scale=0.06, seed=0)
    training = TrainingConfig(epochs=8, seed=0, max_triples_per_epoch=150)
    print(f"\nTraining RMPI-base on {benchmark.name} "
          f"({len(benchmark.unseen_relations())} unseen test relations)...")

    rows = []
    for use_schema in (False, True):
        result = run_full_experiment(
            benchmark, "RMPI-base", "fully", training, use_schema=use_schema
        )
        rows.append(
            [result.model, result.metrics["AUC-PR"], result.metrics["MRR"],
             result.metrics["Hits@10"]]
        )
    print_table(
        ["method", "AUC-PR", "MRR", "Hits@10"],
        rows,
        title="Fully unseen relations: random init vs schema enhanced",
    )


if __name__ == "__main__":
    main()
