"""Transductive KG embeddings and pluggable schema pre-training.

Two things in one example:

1. train the classic transductive scorers (TransE/TransH/DistMult/ComplEx/
   RotatE) on a single graph and compare link-prediction quality — and see
   why none of them can handle the *inductive* setting RMPI targets;
2. use any of them as the schema pre-training backend (§III-D2 says
   "KG embedding techniques e.g. TransE" — the backend is a free choice).

Run:  python examples/transductive_embeddings.py
"""

import numpy as np

from repro.experiments import print_table
from repro.kg import build_partial_benchmark, family_ontology
from repro.schema import build_schema_graph
from repro.schema.pretraining import pretrain_schema_with
from repro.transductive import (
    MODEL_REGISTRY,
    TransductiveTrainingConfig,
    create_model,
    evaluate_link_prediction,
    train_transductive,
)
from repro.utils.seeding import seeded_rng


def main() -> None:
    benchmark = build_partial_benchmark("NELL-995", 2, scale=0.06, seed=0)
    graph = benchmark.train_graph
    held_out = benchmark.valid_triples
    # The benchmark keeps validation targets inside the context graph (they
    # are context for subgraph models); for a fair transductive evaluation,
    # train the embeddings on everything *except* the held-out targets.
    training_triples = graph.triples.difference(held_out)
    print(f"Training graph: {graph.statistics()}")

    rows = []
    for name in sorted(MODEL_REGISTRY):
        model = create_model(
            name,
            num_entities=graph.num_entities,
            num_relations=benchmark.num_relations,
            dim=32,
            rng=seeded_rng(0),
        )
        train_transductive(
            model,
            training_triples,
            TransductiveTrainingConfig(epochs=40, learning_rate=0.02, seed=0),
        )
        result = evaluate_link_prediction(
            model, held_out, graph.triples, num_negatives=19, seed=0
        )
        rows.append([name, result.mrr, result.hits_at_10])
    print_table(
        ["model", "MRR", "Hits@10"],
        rows,
        title="Transductive link prediction (held-out triples, SEEN entities)",
    )
    print(
        "Note: these models index entities by id — on the testing graph's\n"
        "unseen entities they have no embeddings at all, which is exactly\n"
        "the gap inductive methods like RMPI close.\n"
    )

    ontology = family_ontology("NELL-995")
    schema = build_schema_graph(ontology)
    for backend in ("TransE", "RotatE"):
        vectors = pretrain_schema_with(
            schema,
            backend,
            dim=16,
            config=TransductiveTrainingConfig(epochs=30, seed=0),
        )
        print(f"schema vectors via {backend}: shape {vectors.shape}, "
              f"norm {np.linalg.norm(vectors, axis=1).mean():.3f}")


if __name__ == "__main__":
    main()
