"""Anatomy of RMPI's subgraph reasoning on the paper's Fig. 2/3 example.

Builds the family knowledge graph from the paper's figures, then walks
through each stage of the RMPI pipeline for the target triple
(A, husband_of, B):

1. K-hop enclosing subgraph extraction;
2. entity-view -> relation-view (line graph) transformation with the six
   connection-pattern edge types (H-H, H-T, T-H, T-T, PARA, LOOP);
3. Algorithm-1 target-relation-guided pruning, showing the shrinking
   per-layer update frontiers;
4. the disclosing subgraph's one-hop relational neighborhood (NE module).

Run:  python examples/graph_transformation_demo.py
"""

from repro.kg import KnowledgeGraph, TripleSet
from repro.subgraph import (
    EDGE_TYPE_NAMES,
    build_message_plan,
    build_relational_graph,
    extract_disclosing_subgraph,
    extract_enclosing_subgraph,
    full_graph_plan,
    target_one_hop_relations,
)

ENTITIES = ["A", "B", "C", "D", "E", "F"]
RELATIONS = [
    "husband_of",
    "daughter_of",
    "mother_of",
    "son_of",
    "father_of",
    "lives_in",
    "address",
]

TRIPLES = [
    (0, 0, 1),  # A husband_of B
    (2, 1, 0),  # C daughter_of A
    (1, 2, 2),  # B mother_of C
    (3, 3, 1),  # D son_of B
    (0, 4, 3),  # A father_of D
    (0, 4, 4),  # A father_of E
    (1, 5, 5),  # B lives_in F
    (5, 6, 1),  # F address B
]


def fmt(triple) -> str:
    h, r, t = triple
    return f"{ENTITIES[h]} --{RELATIONS[r]}--> {ENTITIES[t]}"


def main() -> None:
    graph = KnowledgeGraph(TripleSet(TRIPLES), num_entities=6, num_relations=7)
    target = (0, 0, 1)  # (A, husband_of, B)
    print(f"Knowledge graph: {graph}")
    print(f"Target triple: {fmt(target)}\n")

    # Step 1: enclosing subgraph.
    enclosing = extract_enclosing_subgraph(graph, target, num_hops=2)
    print("1) 2-hop enclosing subgraph (target edge removed):")
    for triple in enclosing.triples:
        print(f"   {fmt(triple)}")

    # Step 2: relation-view transformation.
    relational = build_relational_graph(enclosing)
    print(f"\n2) Relation-view graph: {relational.num_nodes} nodes, "
          f"{relational.num_edges} typed directed edges")
    for src, etype, dst in relational.edges[:12]:
        a = relational.node_triples[src]
        b = relational.node_triples[dst]
        print(
            f"   [{RELATIONS[a[1]]}({ENTITIES[a[0]]}{ENTITIES[a[2]]})] "
            f"--{EDGE_TYPE_NAMES[etype]}--> "
            f"[{RELATIONS[b[1]]}({ENTITIES[b[0]]}{ENTITIES[b[2]]})]"
        )
    if relational.num_edges > 12:
        print(f"   ... and {relational.num_edges - 12} more")

    # Step 3: pruned message plan vs the full graph.
    plan = build_message_plan(relational, num_layers=2)
    full = full_graph_plan(relational, num_layers=2)
    print("\n3) Algorithm-1 pruning (K = 2 layers):")
    for k, layer in enumerate(plan.layers, start=1):
        print(
            f"   layer {k}: updates {len(layer.update_nodes)} node(s), "
            f"{len(layer.edges)} message edge(s)"
        )
    print(
        f"   total node updates: pruned {plan.total_updates()} "
        f"vs full-graph {full.total_updates()}"
    )

    # Step 4: disclosing neighborhood for the NE module.
    disclosing = extract_disclosing_subgraph(graph, target, num_hops=2)
    neighbors = target_one_hop_relations(disclosing)
    print("\n4) Disclosing one-hop relational neighborhood (NE module input):")
    print("   " + ", ".join(RELATIONS[r] for r in sorted(set(neighbors))))


if __name__ == "__main__":
    main()
