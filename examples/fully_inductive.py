"""Fully inductive KGC: unseen entities AND unseen relations (paper §IV-D).

Reproduces the paper's headline scenario on a NELL-995.v1.v3 analogue:
the testing graph contains relations never seen in training.  We compare

* TACT-base vs RMPI-base vs RMPI-NE (the paper's Table II/III method grid),
* the Random Initialized vs Schema Enhanced settings, and
* testing with semi unseen relations vs fully unseen relations.

Run:  python examples/fully_inductive.py
"""

from repro.experiments import (
    print_table,
    run_full_experiment,
    results_to_rows,
)
from repro.kg import build_full_benchmark
from repro.train import TrainingConfig

METHODS = ("TACT-base", "RMPI-base", "RMPI-NE")


def main() -> None:
    benchmark = build_full_benchmark("NELL-995", 1, 3, scale=0.06, seed=0)
    print(f"Benchmark {benchmark.name}")
    print(f"  seen relations:   {len(benchmark.seen_relations)}")
    print(f"  unseen relations: {len(benchmark.unseen_relations())}")
    print(f"  TE(semi):  {len(benchmark.semi_test_triples)} targets")
    print(f"  TE(fully): {len(benchmark.fully_test_triples)} targets")

    training = TrainingConfig(epochs=8, seed=0, max_triples_per_epoch=150)
    metric_keys = ("AUC-PR", "MRR", "Hits@10")

    for setting in ("semi", "fully"):
        for use_schema in (False, True):
            label = "Schema Enhanced" if use_schema else "Random Initialized"
            results = [
                run_full_experiment(
                    benchmark,
                    method,
                    setting,
                    training,
                    use_schema=use_schema,
                )
                for method in METHODS
            ]
            print_table(
                ["method", "benchmark", *metric_keys],
                results_to_rows(results, metric_keys),
                title=f"Testing with {setting} unseen relations — {label}",
            )


if __name__ == "__main__":
    main()
