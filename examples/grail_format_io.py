"""Working with GraIL-format benchmark directories.

The original RMPI/GraIL benchmarks ship as directories of TSV triple files.
This example round-trips a synthetic benchmark through that format and
shows how to run any model of this library on a loaded directory — the path
you would follow with the *real* WN18RR/FB15k-237/NELL-995 files, e.g.::

    data/WN18RR_v1/
        train/train.txt   train/valid.txt
        test/train.txt    test/test.txt

Run:  python examples/grail_format_io.py
"""

import tempfile

from repro.experiments import run_experiment
from repro.kg import build_partial_benchmark, load_benchmark, save_benchmark
from repro.train import TrainingConfig


def main() -> None:
    source = build_partial_benchmark("FB15k-237", 1, scale=0.05, seed=0)
    with tempfile.TemporaryDirectory() as root:
        save_benchmark(source, root)
        print(f"wrote GraIL-format benchmark to {root}/{{train,test}}/*.txt")

        loaded = load_benchmark(root, name="FB15k-237.v1(loaded)")
        print(f"loaded: {loaded.name}")
        print(f"  training graph: {loaded.train_graph.statistics()}")
        print(f"  entity vocab samples: "
              f"{loaded.train_graph.entity_vocab.symbols()[:3]} ...")
        print(f"  seen relations: {len(loaded.seen_relations)}")

        result = run_experiment(
            loaded,
            "RMPI-NE",
            TrainingConfig(epochs=4, seed=0, max_triples_per_epoch=100),
            num_negatives=19,
        )
        print(f"\n{result.model} on {result.benchmark}:")
        for key, value in result.metrics.items():
            print(f"  {key:8s} {value:6.2f}")


if __name__ == "__main__":
    main()
