"""Quickstart: train RMPI on a partially inductive benchmark and evaluate.

This walks the minimal end-to-end path of the library:

1. build a synthetic inductive benchmark (training graph + testing graph
   over disjoint entities);
2. train RMPI-base with the paper's margin-ranking protocol;
3. evaluate triple classification (AUC-PR) and entity prediction
   (MRR / Hits@10) on the testing graph.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import RMPI, RMPIConfig
from repro.eval import evaluate_both
from repro.kg import build_partial_benchmark
from repro.train import TrainingConfig, train_model
from repro.utils.seeding import seeded_rng


def main() -> None:
    # A scaled-down analogue of the paper's NELL-995.v2 benchmark.
    benchmark = build_partial_benchmark("NELL-995", 2, scale=0.06, seed=0)
    stats = benchmark.statistics()
    print(f"Benchmark {benchmark.name}")
    print(f"  training graph: {stats['train']}")
    print(f"  testing graph:  {stats['test']} (disjoint entities)")

    model = RMPI(
        num_relations=benchmark.num_relations,
        rng=seeded_rng(0),
        config=RMPIConfig(embed_dim=32, num_layers=2, num_hops=2),
    )
    print(f"\nTraining {model.name} ({model.num_parameters()} parameters)...")
    history = train_model(
        model,
        benchmark.train_graph,
        benchmark.train_triples,
        benchmark.valid_triples,
        TrainingConfig(epochs=10, seed=0),
    )
    print(f"  loss: {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    report = evaluate_both(
        model, benchmark.test_graph, benchmark.test_triples, seed=0
    )
    print("\nResults on the unseen-entity testing graph:")
    for key, value in report.as_dict().items():
        print(f"  {key:8s} {value:6.2f}")


if __name__ == "__main__":
    main()
