"""Edge cases of the evaluation stack: tiny pools, tie storms, determinism."""

import numpy as np
import pytest

from repro.eval import (
    average_precision,
    evaluate_entity_prediction,
    evaluate_triple_classification,
    rank_of_first,
)
from repro.kg import KnowledgeGraph, TripleSet


class NoisyScorer:
    """Deterministic pseudo-random scores keyed by the triple itself."""

    def score_triples(self, graph, triples):
        return np.array(
            [((hash(t) % 1000) / 1000.0) for t in triples], dtype=np.float64
        )


@pytest.fixture
def tiny_setting():
    graph = KnowledgeGraph.from_triples(
        [(0, 0, 1), (1, 0, 2), (2, 0, 3)], num_entities=5, num_relations=2
    )
    targets = TripleSet([(0, 1, 2), (1, 1, 3)])
    return graph, targets


class TestTinyCandidatePools:
    def test_entity_prediction_with_tiny_pool(self, tiny_setting):
        graph, targets = tiny_setting
        # Only 5 entities exist: requesting 49 negatives must cap, not hang.
        result = evaluate_entity_prediction(
            NoisyScorer(), graph, targets, np.random.default_rng(0), num_negatives=49
        )
        assert result.num_queries == 2
        assert 0.0 <= result.mrr <= 100.0

    def test_classification_with_tiny_pool(self, tiny_setting):
        graph, targets = tiny_setting
        result = evaluate_triple_classification(
            NoisyScorer(), graph, targets, np.random.default_rng(0)
        )
        assert 0.0 <= result.auc_pr <= 100.0


class TestTieHandling:
    def test_all_tied_ap_equals_positive_rate(self):
        # Stable sort keeps input order for ties; the expectation over
        # orders is the positive rate — verify the deterministic variant.
        labels = [1, 0, 1, 0]
        scores = [0.5, 0.5, 0.5, 0.5]
        ap = average_precision(labels, scores)
        assert 0.0 < ap <= 1.0

    def test_rank_of_first_with_partial_ties(self):
        # Target ties with 2 of 4 others, 1 strictly better.
        assert rank_of_first([1.0, 2.0, 1.0, 1.0, 0.0]) == 3.0

    def test_duplicate_scores_dont_crash_ranking(self, tiny_setting):
        graph, targets = tiny_setting

        class ConstantScorer:
            def score_triples(self, graph, triples):
                return np.ones(len(triples))

        result = evaluate_entity_prediction(
            ConstantScorer(), graph, targets, np.random.default_rng(0), num_negatives=3
        )
        # Mean-tie rank over n candidates -> MRR strictly below 100.
        assert result.mrr < 100.0


class TestDeterminism:
    def test_same_rng_state_same_report(self, tiny_setting):
        graph, targets = tiny_setting
        a = evaluate_triple_classification(
            NoisyScorer(), graph, targets, np.random.default_rng(42)
        )
        b = evaluate_triple_classification(
            NoisyScorer(), graph, targets, np.random.default_rng(42)
        )
        assert a == b

    def test_different_rng_state_can_differ(self, tiny_setting):
        graph, targets = tiny_setting
        results = {
            evaluate_entity_prediction(
                NoisyScorer(), graph, targets, np.random.default_rng(seed),
                num_negatives=2,
            ).mrr
            for seed in range(6)
        }
        assert len(results) >= 1  # sanity; usually > 1 on this noisy scorer
