"""Shared fixtures: small deterministic graphs and benchmarks.

Parallel-suite knobs: ``--workers N`` (or ``REPRO_TEST_WORKERS``) caps the
worker counts the multi-process suites exercise — CI shared runners run
them with ``--workers 2``; locally the default sweep is {1, 2, 4}.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.kg import (
    KnowledgeGraph,
    TripleSet,
    build_full_benchmark,
    build_partial_benchmark,
    build_ext_benchmark,
)
from repro.utils.seeding import seed_everything


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_TEST_WORKERS", "4")),
        help="largest worker count the parallel suites exercise "
        "(cases above it are skipped; default 4, env REPRO_TEST_WORKERS)",
    )


@pytest.fixture
def max_workers(request):
    """Cap from ``--workers`` / ``REPRO_TEST_WORKERS`` for parallel tests."""
    return request.config.getoption("--workers")


@pytest.fixture
def pinned_seeds():
    """Pin every global RNG stream for tests that compare two runs.

    Per-worker streams inside :mod:`repro.parallel` are pinned by the pool
    itself (seed derived from the worker rank via
    :func:`repro.utils.seeding.worker_rng`); this fixture pins the
    *parent-process* globals so a test's own sampling is reproducible too.
    """
    seed_everything(0)
    yield
    seed_everything(0)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def family_graph():
    """The paper's Fig. 1/Fig. 3 style family graph.

    Entities: 0=A, 1=B, 2=C, 3=D, 4=E, 5=F
    Relations: 0=husband_of, 1=daughter_of, 2=mother_of, 3=father_of,
               4=son_of, 5=lives_in, 6=address
    """
    triples = TripleSet(
        [
            (0, 0, 1),  # A husband_of B
            (2, 1, 0),  # C daughter_of A
            (1, 2, 2),  # B mother_of C
            (3, 4, 1),  # D son_of B
            (0, 3, 3),  # A father_of D
            (0, 3, 4),  # A father_of E
            (1, 5, 5),  # B lives_in F
            (5, 6, 1),  # F address B
        ]
    )
    return KnowledgeGraph(triples, num_entities=6, num_relations=7)


@pytest.fixture(scope="session")
def tiny_partial_benchmark():
    return build_partial_benchmark("NELL-995", 1, scale=0.05, seed=0)


@pytest.fixture(scope="session")
def tiny_full_benchmark():
    return build_full_benchmark("NELL-995", 1, 3, scale=0.05, seed=0)


@pytest.fixture(scope="session")
def tiny_ext_benchmark():
    return build_ext_benchmark("NELL-995", scale=0.05, seed=0)
