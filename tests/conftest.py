"""Shared fixtures: small deterministic graphs and benchmarks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import (
    KnowledgeGraph,
    TripleSet,
    build_full_benchmark,
    build_partial_benchmark,
    build_ext_benchmark,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def family_graph():
    """The paper's Fig. 1/Fig. 3 style family graph.

    Entities: 0=A, 1=B, 2=C, 3=D, 4=E, 5=F
    Relations: 0=husband_of, 1=daughter_of, 2=mother_of, 3=father_of,
               4=son_of, 5=lives_in, 6=address
    """
    triples = TripleSet(
        [
            (0, 0, 1),  # A husband_of B
            (2, 1, 0),  # C daughter_of A
            (1, 2, 2),  # B mother_of C
            (3, 4, 1),  # D son_of B
            (0, 3, 3),  # A father_of D
            (0, 3, 4),  # A father_of E
            (1, 5, 5),  # B lives_in F
            (5, 6, 1),  # F address B
        ]
    )
    return KnowledgeGraph(triples, num_entities=6, num_relations=7)


@pytest.fixture(scope="session")
def tiny_partial_benchmark():
    return build_partial_benchmark("NELL-995", 1, scale=0.05, seed=0)


@pytest.fixture(scope="session")
def tiny_full_benchmark():
    return build_full_benchmark("NELL-995", 1, 3, scale=0.05, seed=0)


@pytest.fixture(scope="session")
def tiny_ext_benchmark():
    return build_ext_benchmark("NELL-995", scale=0.05, seed=0)
