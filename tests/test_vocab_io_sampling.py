"""Vocabulary, TSV IO, and negative sampling tests."""

import numpy as np
import pytest

from repro.kg import (
    TripleSet,
    Vocabulary,
    corrupt_triple,
    load_triples_tsv,
    negative_triples,
    ranking_candidates,
    save_triples_tsv,
)


class TestVocabulary:
    def test_insertion_order_ids(self):
        v = Vocabulary(["a", "b"])
        assert v.id_of("a") == 0
        assert v.id_of("b") == 1

    def test_add_idempotent(self):
        v = Vocabulary()
        assert v.add("x") == v.add("x") == 0
        assert len(v) == 1

    def test_symbol_roundtrip(self):
        v = Vocabulary(["alpha", "beta"])
        assert v.symbol_of(v.id_of("beta")) == "beta"

    def test_contains_and_iter(self):
        v = Vocabulary(["a"])
        assert "a" in v and "z" not in v
        assert list(v) == ["a"]

    def test_equality(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
        assert Vocabulary(["a", "b"]) != Vocabulary(["b", "a"])


class TestTSVRoundtrip:
    def test_roundtrip(self, tmp_path):
        entities = Vocabulary(["A", "B", "C"])
        relations = Vocabulary(["knows", "likes"])
        triples = TripleSet([(0, 0, 1), (1, 1, 2)])
        path = str(tmp_path / "triples.tsv")
        save_triples_tsv(path, triples, entities, relations)
        loaded, e2, r2 = load_triples_tsv(path)
        names = {
            (e2.symbol_of(h), r2.symbol_of(r), e2.symbol_of(t)) for h, r, t in loaded
        }
        assert names == {("A", "knows", "B"), ("B", "likes", "C")}

    def test_shared_vocab_extension(self, tmp_path):
        entities = Vocabulary(["A"])
        relations = Vocabulary(["r"])
        save_triples_tsv(
            str(tmp_path / "a.tsv"), TripleSet([(0, 0, 0)]), entities, relations
        )
        loaded, e2, r2 = load_triples_tsv(str(tmp_path / "a.tsv"), entities, relations)
        assert e2 is entities  # extended in place
        assert len(e2) == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only two\tcolumns\n")
        with pytest.raises(ValueError):
            load_triples_tsv(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.tsv"
        path.write_text("a\tr\tb\n\n")
        loaded, _, _ = load_triples_tsv(str(path))
        assert len(loaded) == 1


class TestNegativeSampling:
    def test_corrupt_differs_from_original(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            neg = corrupt_triple((0, 0, 1), num_entities=10, rng=rng)
            assert neg != (0, 0, 1)

    def test_corrupt_keeps_relation(self):
        rng = np.random.default_rng(0)
        neg = corrupt_triple((0, 3, 1), num_entities=10, rng=rng)
        assert neg[1] == 3

    def test_corrupt_changes_exactly_one_side(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            h, r, t = corrupt_triple((0, 0, 1), num_entities=10, rng=rng)
            assert (h == 0) != (t == 1) or (h != 0 and t == 1) or (h == 0 and t != 1)
            assert (h, t).count(0) <= 2

    def test_avoids_known_facts(self):
        rng = np.random.default_rng(0)
        known = {(h, 0, 1) for h in range(10)} - {(5, 0, 1)}
        known |= {(0, 0, t) for t in range(10)} - {(0, 0, 5)}
        for _ in range(20):
            neg = corrupt_triple((0, 0, 1), 10, rng, known=known)
            assert neg not in known

    def test_candidate_restriction(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            h, r, t = corrupt_triple(
                (0, 0, 1), 100, rng, candidate_entities=[2, 3]
            )
            assert {h, t} <= {0, 1, 2, 3}

    def test_max_tries_must_be_positive(self):
        # Regression: max_tries=0 skipped the loop entirely and hit the
        # final `return candidate` with the name never bound
        # (UnboundLocalError instead of a meaningful error).
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            corrupt_triple((0, 0, 1), num_entities=10, rng=rng, max_tries=0)

    def test_negative_triples_aligned(self):
        rng = np.random.default_rng(0)
        positives = TripleSet([(0, 0, 1), (2, 1, 3)])
        negatives = negative_triples(positives, 10, rng)
        assert len(negatives) == 2
        assert negatives[0][1] == 0 and negatives[1][1] == 1

    def test_per_positive_multiplier(self):
        rng = np.random.default_rng(0)
        positives = TripleSet([(0, 0, 1)])
        assert len(negative_triples(positives, 10, rng, per_positive=3)) == 3


class TestRankingCandidates:
    def test_ground_truth_first(self):
        rng = np.random.default_rng(0)
        candidates = ranking_candidates((0, 0, 1), 100, rng, num_negatives=49)
        assert candidates[0] == (0, 0, 1)

    def test_count_and_uniqueness(self):
        rng = np.random.default_rng(0)
        candidates = ranking_candidates((0, 0, 1), 100, rng, num_negatives=49)
        assert len(candidates) == 50
        assert len(set(candidates)) == 50

    def test_tail_corruption_only_changes_tail(self):
        rng = np.random.default_rng(0)
        candidates = ranking_candidates(
            (7, 3, 1), 100, rng, num_negatives=10, corrupt_head=False
        )
        assert all(c[0] == 7 and c[1] == 3 for c in candidates)

    def test_head_corruption_only_changes_head(self):
        rng = np.random.default_rng(0)
        candidates = ranking_candidates(
            (7, 3, 1), 100, rng, num_negatives=10, corrupt_head=True
        )
        assert all(c[2] == 1 and c[1] == 3 for c in candidates)

    def test_known_filtered(self):
        rng = np.random.default_rng(0)
        known = {(7, 3, t) for t in range(50)}
        candidates = ranking_candidates(
            (7, 3, 1), 50, rng, num_negatives=10, known=known - {(7, 3, 1)}
        )
        assert all(c == (7, 3, 1) or c not in known for c in candidates)

    def test_small_entity_pool_caps_candidates(self):
        rng = np.random.default_rng(0)
        candidates = ranking_candidates(
            (0, 0, 1), 3, rng, num_negatives=49, candidate_entities=[0, 1, 2]
        )
        assert len(candidates) <= 4

    def test_truth_never_resampled_as_tail_negative(self):
        # Pool contains ONLY the true tail: every corruption reproduces the
        # truth and must be rejected, else rank_of_first would see a tie.
        rng = np.random.default_rng(0)
        candidates = ranking_candidates(
            (0, 0, 1), 2, rng, num_negatives=10, candidate_entities=[1]
        )
        assert candidates == [(0, 0, 1)]

    def test_truth_never_resampled_as_head_negative(self):
        rng = np.random.default_rng(0)
        candidates = ranking_candidates(
            (0, 0, 1), 2, rng, num_negatives=10, corrupt_head=True, candidate_entities=[0]
        )
        assert candidates == [(0, 0, 1)]

    def test_truth_appears_exactly_once(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            corrupt_head = bool(seed % 2)
            candidates = ranking_candidates(
                (3, 1, 4), 8, rng, num_negatives=49, corrupt_head=corrupt_head
            )
            assert candidates.count((3, 1, 4)) == 1
            assert candidates[0] == (3, 1, 4)
            assert len(candidates) == len(set(candidates))
