"""Baseline model tests: GraIL, TACT(-base), CoMPILE."""

import numpy as np
import pytest

from repro.baselines import TACT, CoMPILE, GraIL, TACTBase
from repro.kg import KnowledgeGraph


@pytest.fixture
def rng0():
    return np.random.default_rng(0)


class TestGraIL:
    def test_sample_includes_target_edge(self, family_graph, rng0):
        model = GraIL(family_graph.num_relations, rng0)
        sample = model.prepare(family_graph, (0, 0, 1))
        # Extraction removes the target edge, prepare adds it back: the last
        # edge row is the target.
        assert sample.edge_relations[-1] == 0
        assert sample.edge_heads[-1] == sample.head_index
        assert sample.edge_tails[-1] == sample.tail_index

    def test_features_are_double_radius(self, family_graph, rng0):
        model = GraIL(family_graph.num_relations, rng0, num_hops=2)
        sample = model.prepare(family_graph, (0, 0, 1))
        assert sample.init_features.shape[1] == 6  # 2 * (K+1)

    def test_score_finite(self, family_graph, rng0):
        model = GraIL(family_graph.num_relations, rng0)
        score = model.score_triples(family_graph, [(0, 0, 1), (2, 0, 3)])
        assert np.isfinite(score).all()

    def test_gradients_flow(self, family_graph, rng0):
        model = GraIL(family_graph.num_relations, rng0)
        model.score_sample(model.prepare(family_graph, (0, 0, 1))).backward()
        assert model.relation_embedding.weight.grad is not None
        assert model.input_proj.weight.grad is not None

    def test_empty_subgraph_scoreable(self, rng0):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        model = GraIL(g.num_relations, rng0)
        score = model.score_triples(g, [(0, 0, 3)])
        assert np.isfinite(score).all()

    def test_entity_independence(self, rng0):
        # Two isomorphic graphs over disjoint entity ids must get identical
        # scores — GraIL never indexes entities directly.
        g1 = KnowledgeGraph.from_triples(
            [(0, 0, 1), (1, 1, 2), (0, 2, 2)], num_entities=20, num_relations=3
        )
        g2 = KnowledgeGraph.from_triples(
            [(10, 0, 11), (11, 1, 12), (10, 2, 12)], num_entities=20, num_relations=3
        )
        model = GraIL(3, rng0)
        model.eval()
        s1 = model.score_triples(g1, [(0, 2, 2)])
        s2 = model.score_triples(g2, [(10, 2, 12)])
        assert s1 == pytest.approx(s2)


class TestTACTBase:
    def test_neighborhood_sample(self, family_graph, rng0):
        model = TACTBase(family_graph.num_relations, rng0)
        sample = model.prepare(family_graph, (0, 0, 1))
        assert len(sample.neighbor_relations) == len(sample.neighbor_types)
        assert (sample.neighbor_types < 6).all()

    def test_score_finite(self, family_graph, rng0):
        model = TACTBase(family_graph.num_relations, rng0)
        score = model.score_triples(family_graph, [(0, 0, 1)])
        assert np.isfinite(score).all()

    def test_isolated_target_scores_from_embedding(self, rng0):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        model = TACTBase(g.num_relations, rng0)
        score = model.score_triples(g, [(0, 0, 3)])
        assert np.isfinite(score).all()

    def test_one_hop_only(self, family_graph, rng0):
        # TACT-base aggregates one hop: neighbors must all be adjacent to the
        # target triple (share an entity with it).
        model = TACTBase(family_graph.num_relations, rng0)
        sample = model.prepare(family_graph, (0, 0, 1))
        adjacent_relations = set()
        for h, r, t in family_graph.triples:
            if {h, t} & {0, 1} and (h, r, t) != (0, 0, 1):
                adjacent_relations.add(r)
        assert set(sample.neighbor_relations.tolist()) <= adjacent_relations

    def test_schema_variant(self, family_graph, rng0):
        vectors = np.random.default_rng(1).normal(size=(7, 10))
        model = TACTBase(family_graph.num_relations, rng0, schema_vectors=vectors)
        assert "+schema" in model.name
        assert np.isfinite(model.score_triples(family_graph, [(0, 0, 1)])).all()


class TestTACTFull:
    def test_score_finite(self, family_graph, rng0):
        model = TACT(family_graph.num_relations, rng0)
        score = model.score_triples(family_graph, [(0, 0, 1)])
        assert np.isfinite(score).all()

    def test_sample_carries_both_views(self, family_graph, rng0):
        model = TACT(family_graph.num_relations, rng0)
        sample = model.prepare(family_graph, (0, 0, 1))
        assert sample.grail is not None
        assert sample.neighbor_relations is not None

    def test_gradients_flow_to_both_modules(self, family_graph, rng0):
        model = TACT(family_graph.num_relations, rng0)
        model.score_sample(model.prepare(family_graph, (0, 0, 1))).backward()
        assert model.embedding.table.weight.grad is not None
        assert model.entity_module.input_proj.weight.grad is not None


class TestCoMPILE:
    def test_target_edge_tracked(self, family_graph, rng0):
        model = CoMPILE(family_graph.num_relations, rng0)
        sample = model.prepare(family_graph, (0, 0, 1))
        assert sample.edge_relations[sample.target_edge] == 0

    def test_score_finite(self, family_graph, rng0):
        model = CoMPILE(family_graph.num_relations, rng0)
        score = model.score_triples(family_graph, [(0, 0, 1), (2, 0, 3)])
        assert np.isfinite(score).all()

    def test_edges_and_nodes_communicate(self, family_graph, rng0):
        # Changing a relation embedding must change the final score (edges
        # feed nodes feed edges).
        model = CoMPILE(family_graph.num_relations, rng0)
        model.eval()
        before = model.score_triples(family_graph, [(0, 0, 1)])[0]
        model.relation_embedding.weight.data = (
            model.relation_embedding.weight.data + 1.0
        )
        after = model.score_triples(family_graph, [(0, 0, 1)])[0]
        assert before != pytest.approx(after)

    def test_gradients_flow(self, family_graph, rng0):
        model = CoMPILE(family_graph.num_relations, rng0)
        model.score_sample(model.prepare(family_graph, (0, 0, 1))).backward()
        assert model.relation_embedding.weight.grad is not None
