"""RMPI model tests: variants, layers, NE, scoring, unseen relations."""

import numpy as np
import pytest

from repro.core import RMPI, RMPIConfig
from repro.core.disclosing import DisclosingAggregator
from repro.core.layers import RelationalMessagePassingLayer
from repro.core.scoring import ScoringHead
from repro.autograd import Tensor
from repro.kg import KnowledgeGraph


@pytest.fixture
def model(family_graph):
    return RMPI(family_graph.num_relations, np.random.default_rng(0))


class TestConfig:
    def test_variant_names(self):
        assert RMPIConfig().variant_name == "RMPI-base"
        assert RMPIConfig(use_disclosing=True).variant_name == "RMPI-NE"
        assert RMPIConfig(use_target_attention=True).variant_name == "RMPI-TA"
        assert (
            RMPIConfig(use_disclosing=True, use_target_attention=True).variant_name
            == "RMPI-NE-TA"
        )

    def test_invalid_fusion(self):
        with pytest.raises(ValueError):
            RMPIConfig(fusion="mean")

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            RMPIConfig(num_layers=0)


class TestPrepare:
    def test_sample_structure(self, model, family_graph):
        sample = model.prepare(family_graph, (0, 0, 1))
        assert sample.triple == (0, 0, 1)
        assert sample.plan.target_index == 0
        assert sample.disclosing_relations is None  # base variant

    def test_ne_variant_collects_disclosing(self, family_graph):
        config = RMPIConfig(use_disclosing=True)
        model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
        sample = model.prepare(family_graph, (0, 0, 1))
        assert sample.disclosing_relations is not None
        assert len(sample.disclosing_relations) > 0

    def test_cache_hit(self, model, family_graph):
        a = model.prepared(family_graph, (0, 0, 1))
        b = model.prepared(family_graph, (0, 0, 1))
        assert a is b
        assert model.cache_size() == 1
        model.clear_cache()
        assert model.cache_size() == 0

    def test_empty_enclosing_flag(self, model):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        sample = model.prepare(g, (0, 0, 3))
        assert sample.enclosing_empty


class TestScoring:
    def test_score_shape(self, model, family_graph):
        score = model.score_sample(model.prepare(family_graph, (0, 0, 1)))
        assert score.shape == (1, 1)

    def test_eval_deterministic(self, model, family_graph):
        model.eval()
        s1 = model.score_triples(family_graph, [(0, 0, 1)])
        s2 = model.score_triples(family_graph, [(0, 0, 1)])
        assert s1 == pytest.approx(s2)

    def test_score_batch_stacks(self, model, family_graph):
        scores = model.score_batch(family_graph, [(0, 0, 1), (1, 2, 2)])
        assert scores.shape == (2, 1)

    def test_empty_subgraph_scoreable(self, model):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        score = model.score_triples(g, [(0, 0, 3)])
        assert np.isfinite(score).all()

    def test_unseen_relation_scoreable(self, family_graph):
        # Relation id 6 never occurs around the target; score a candidate
        # with an id beyond anything trained (global id space covers it).
        model = RMPI(20, np.random.default_rng(0))
        score = model.score_triples(family_graph, [(0, 15, 1)])
        assert np.isfinite(score).all()

    def test_gradients_reach_embedding(self, model, family_graph):
        score = model.score_sample(model.prepare(family_graph, (0, 0, 1)))
        score.backward()
        grads = model.embedding.table.weight.grad
        assert grads is not None and np.abs(grads).sum() > 0

    def test_training_dropout_varies_scores(self, family_graph):
        config = RMPIConfig(dropout=0.5)
        model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
        model.train()
        sample = model.prepared(family_graph, (0, 0, 1))
        values = {float(model.score_sample(sample).data.reshape(-1)[0]) for _ in range(8)}
        assert len(values) > 1

    def test_variants_score_differently(self, family_graph):
        scores = {}
        for flags in ((False, False), (True, False), (False, True), (True, True)):
            config = RMPIConfig(use_disclosing=flags[0], use_target_attention=flags[1])
            m = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
            m.eval()
            scores[flags] = float(m.score_triples(family_graph, [(0, 0, 1)])[0])
        assert len(set(scores.values())) >= 2

    def test_schema_enhanced_model(self, family_graph):
        schema_vectors = np.random.default_rng(1).normal(size=(7, 12))
        model = RMPI(
            family_graph.num_relations,
            np.random.default_rng(0),
            schema_vectors=schema_vectors,
        )
        assert "+schema" in model.name
        score = model.score_triples(family_graph, [(0, 0, 1)])
        assert np.isfinite(score).all()

    def test_schema_vectors_must_cover_relations(self):
        with pytest.raises(ValueError):
            RMPI(10, np.random.default_rng(0), schema_vectors=np.zeros((5, 8)))


class TestLayerInternals:
    def test_empty_edges_identity(self):
        layer = RelationalMessagePassingLayer(4, np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        out = layer(h, np.empty((0, 3), dtype=np.int64), 0, False, False)
        assert out is h

    def test_residual_preserves_unreached_nodes(self):
        layer = RelationalMessagePassingLayer(4, np.random.default_rng(0))
        h = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        edges = np.array([[1, 0, 0]], dtype=np.int64)  # only node 0 updated
        out = layer(h, edges, 0, False, False)
        assert np.allclose(out.data[1], h.data[1])
        assert np.allclose(out.data[2], h.data[2])

    def test_attention_weights_change_output(self):
        rng = np.random.default_rng(0)
        layer = RelationalMessagePassingLayer(4, rng)
        h = Tensor(np.random.default_rng(1).normal(size=(4, 4)))
        edges = np.array([[1, 0, 0], [2, 0, 0], [3, 0, 0]], dtype=np.int64)
        with_attn = layer(h, edges, 0, True, False)
        without = layer(h, edges, 0, False, False)
        assert not np.allclose(with_attn.data[0], without.data[0])

    def test_last_layer_sums_not_means(self):
        layer = RelationalMessagePassingLayer(4, np.random.default_rng(0))
        h = Tensor(np.abs(np.random.default_rng(1).normal(size=(3, 4))))
        edges = np.array([[1, 0, 0], [2, 0, 0]], dtype=np.int64)
        last = layer(h, edges, 0, False, True)
        mid = layer(h, edges, 0, False, False)
        # Equal aggregation (sum) vs mean over 2 neighbors differ.
        assert not np.allclose(last.data[0], mid.data[0])


class TestDisclosingAggregator:
    def test_no_neighbors_returns_zeros(self):
        agg = DisclosingAggregator(6, np.random.default_rng(0))
        out = agg(Tensor(np.zeros((0, 6))), Tensor(np.ones((1, 6))))
        assert np.allclose(out.data, 0.0)
        assert out.shape == (1, 6)

    def test_output_shape(self):
        agg = DisclosingAggregator(6, np.random.default_rng(0))
        out = agg(Tensor(np.random.default_rng(1).normal(size=(5, 6))), Tensor(np.ones((1, 6))))
        assert out.shape == (1, 6)

    def test_nonnegative_after_relu(self):
        agg = DisclosingAggregator(6, np.random.default_rng(0))
        out = agg(Tensor(np.random.default_rng(1).normal(size=(5, 6))), Tensor(np.ones((1, 6))))
        assert (out.data >= 0).all()


class TestScoringHead:
    def test_sum_fusion(self):
        head = ScoringHead(4, np.random.default_rng(0), fusion="sum", use_disclosing=True)
        a, b = Tensor(np.ones((1, 4))), Tensor(np.ones((1, 4)))
        assert head(a, b).shape == (1, 1)

    def test_concat_fusion_uses_merge(self):
        head = ScoringHead(4, np.random.default_rng(0), fusion="concat", use_disclosing=True)
        assert head.merge is not None
        a, b = Tensor(np.ones((1, 4))), Tensor(np.ones((1, 4)))
        assert head(a, b).shape == (1, 1)

    def test_without_disclosing_ignores_second_arg(self):
        head = ScoringHead(4, np.random.default_rng(0), fusion="sum", use_disclosing=False)
        a = Tensor(np.ones((1, 4)))
        s1 = head(a, None)
        s2 = head(a, Tensor(np.full((1, 4), 100.0)))
        assert np.allclose(s1.data, s2.data)

    def test_invalid_fusion(self):
        with pytest.raises(ValueError):
            ScoringHead(4, np.random.default_rng(0), fusion="bogus")
