"""Experiment runner and table formatting tests."""

import numpy as np
import pytest

from repro.core import RMPI
from repro.baselines import TACT, CoMPILE, GraIL, TACTBase
from repro.experiments import (
    MODEL_NAMES,
    bench_settings,
    format_table,
    make_model,
    results_to_rows,
    run_experiment,
    run_full_experiment,
    schema_vectors_for,
)
from repro.experiments.runner import ExperimentResult
from repro.train import TrainingConfig


class TestMakeModel:
    def test_all_names_construct(self):
        for name in MODEL_NAMES:
            model = make_model(name, num_relations=10, seed=0, embed_dim=8)
            assert model is not None

    def test_types(self):
        assert isinstance(make_model("GraIL", 10), GraIL)
        assert isinstance(make_model("TACT", 10), TACT)
        assert isinstance(make_model("TACT-base", 10), TACTBase)
        assert isinstance(make_model("CoMPILE", 10), CoMPILE)
        assert isinstance(make_model("RMPI-NE-TA", 10), RMPI)

    def test_rmpi_flags(self):
        model = make_model("RMPI-NE-TA", 10)
        assert model.config.use_disclosing and model.config.use_target_attention
        base = make_model("RMPI-base", 10)
        assert not base.config.use_disclosing and not base.config.use_target_attention

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_model("DistMult", 10)

    def test_fusion_passthrough(self):
        model = make_model("RMPI-NE", 10, fusion="concat")
        assert model.config.fusion == "concat"


class TestSchemaVectors:
    def test_cached_per_ontology(self, tiny_partial_benchmark):
        a = schema_vectors_for(tiny_partial_benchmark.ontology)
        b = schema_vectors_for(tiny_partial_benchmark.ontology)
        assert a is b

    def test_covers_all_relations(self, tiny_partial_benchmark):
        vectors = schema_vectors_for(tiny_partial_benchmark.ontology)
        assert vectors.shape[0] == tiny_partial_benchmark.ontology.num_relations

    def test_settings_are_part_of_the_cache_key(self, tiny_partial_benchmark):
        # Regression: the cache was keyed on id(ontology) alone, so a
        # different seed or dim silently answered with vectors pretrained
        # under the previous settings.
        ontology = tiny_partial_benchmark.ontology
        base = schema_vectors_for(ontology, seed=0, dim=16)
        reseeded = schema_vectors_for(ontology, seed=1, dim=16)
        resized = schema_vectors_for(ontology, seed=0, dim=8)
        assert not np.array_equal(base, reseeded)
        assert resized.shape[1] != base.shape[1]
        assert schema_vectors_for(ontology, seed=0, dim=16) is base

    def test_cache_pins_ontology_alive(self, tiny_partial_benchmark):
        # Regression: an id()-keyed cache whose values do not reference the
        # ontology lets a garbage-collected ontology's id be recycled by a
        # NEW ontology, which then aliases the stale embeddings.  The cache
        # must hold the keyed ontology itself.
        from repro.experiments.runner import _SCHEMA_CACHE

        ontology = tiny_partial_benchmark.ontology
        schema_vectors_for(ontology, seed=0, dim=16)
        assert any(
            entry[0] is ontology
            for entry in _SCHEMA_CACHE.values()
        )


class TestRunExperiment:
    def test_partial_run(self, tiny_partial_benchmark):
        result = run_experiment(
            tiny_partial_benchmark,
            "RMPI-base",
            TrainingConfig(epochs=1, seed=0, max_triples_per_epoch=20),
            num_negatives=5,
            embed_dim=8,
        )
        assert set(result.metrics) == {"AUC-PR", "MRR", "Hits@10", "Hits@1"}
        assert result.benchmark == tiny_partial_benchmark.name

    def test_schema_label(self, tiny_partial_benchmark):
        result = run_experiment(
            tiny_partial_benchmark,
            "TACT-base",
            TrainingConfig(epochs=1, seed=0, max_triples_per_epoch=10),
            use_schema=True,
            num_negatives=5,
            embed_dim=8,
        )
        assert result.model == "TACT-base+schema"

    def test_full_settings(self, tiny_full_benchmark):
        for setting in ("semi", "fully"):
            result = run_full_experiment(
                tiny_full_benchmark,
                "TACT-base",
                setting,
                TrainingConfig(epochs=1, seed=0, max_triples_per_epoch=10),
                embed_dim=8,
            )
            assert setting in result.benchmark


class TestTables:
    def test_format_basic(self):
        table = format_table(["a", "b"], [["x", 1.234], ["yy", 5.0]])
        lines = table.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "1.23" in table

    def test_title(self):
        table = format_table(["h"], [["v"]], title="Table II")
        assert table.startswith("Table II")

    def test_results_to_rows(self):
        results = [
            ExperimentResult("bench", "model", {"AUC-PR": 90.0, "MRR": 50.0}),
        ]
        rows = results_to_rows(results, ["AUC-PR", "MRR", "Hits@10"])
        assert rows[0][0] == "model"
        assert rows[0][2] == 90.0
        assert np.isnan(rows[0][4])  # missing metric -> NaN


class TestBenchSettings:
    def test_defaults(self, monkeypatch):
        for var in (
            "REPRO_BENCH_SCALE",
            "REPRO_BENCH_EPOCHS",
            "REPRO_BENCH_SEED",
            "REPRO_BENCH_MAX_TRIPLES",
            "REPRO_BENCH_NEGATIVES",
        ):
            monkeypatch.delenv(var, raising=False)
        settings = bench_settings()
        assert settings.scale > 0
        assert settings.training_config().epochs == settings.epochs

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.2")
        monkeypatch.setenv("REPRO_BENCH_EPOCHS", "7")
        settings = bench_settings()
        assert settings.scale == 0.2
        assert settings.epochs == 7
