"""Algorithm-1 pruning tests: hop computation and layer schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import KnowledgeGraph, TripleSet
from repro.subgraph import (
    build_message_plan,
    build_relational_graph,
    extract_enclosing_subgraph,
    full_graph_plan,
    incoming_hops,
)


def relational_graph_for(triples, target, hops=2):
    g = KnowledgeGraph.from_triples(triples)
    sub = extract_enclosing_subgraph(g, target, num_hops=hops)
    return build_relational_graph(sub)


@pytest.fixture
def chain_rg(family_graph):
    sub = extract_enclosing_subgraph(family_graph, (0, 0, 1), num_hops=2)
    return build_relational_graph(sub)


class TestIncomingHops:
    def test_target_at_hop_zero(self, chain_rg):
        hops = incoming_hops(chain_rg, 2)
        assert hops[chain_rg.target_node] == 0

    def test_hops_bounded(self, chain_rg):
        hops = incoming_hops(chain_rg, 2)
        assert all(h <= 2 for h in hops.values())

    def test_hop_one_are_direct_neighbors(self, chain_rg):
        hops = incoming_hops(chain_rg, 2)
        direct = set(chain_rg.incoming(chain_rg.target_node)[:, 0].tolist())
        for node in direct:
            assert hops[node] == 1

    def test_isolated_target(self):
        rg = relational_graph_for([(0, 0, 1), (2, 0, 3)], (0, 0, 3))
        hops = incoming_hops(rg, 2)
        assert hops == {rg.target_node: 0}


class TestMessagePlan:
    def test_target_index_zero(self, chain_rg):
        plan = build_message_plan(chain_rg, 2)
        assert plan.target_index == 0
        assert plan.node_relations[0] == chain_rg.node_relations[chain_rg.target_node]

    def test_layer_count(self, chain_rg):
        plan = build_message_plan(chain_rg, 3)
        assert len(plan.layers) == 3

    def test_frontier_shrinks(self, chain_rg):
        plan = build_message_plan(chain_rg, 2)
        sizes = [len(layer.update_nodes) for layer in plan.layers]
        assert sizes == sorted(sizes, reverse=True)

    def test_last_layer_updates_only_target(self, chain_rg):
        plan = build_message_plan(chain_rg, 2)
        assert plan.layers[-1].update_nodes.tolist() == [plan.target_index]

    def test_layer_edges_destinations_in_update_set(self, chain_rg):
        plan = build_message_plan(chain_rg, 2)
        for layer in plan.layers:
            update = set(layer.update_nodes.tolist())
            assert all(int(dst) in update for _s, _e, dst in layer.edges)

    def test_layer_k_updates_nodes_within_budget(self, chain_rg):
        K = 2
        plan = build_message_plan(chain_rg, K)
        for k, layer in enumerate(plan.layers, start=1):
            budget = K - k
            for node in layer.update_nodes:
                assert plan.hops[node] <= budget

    def test_sources_within_pruned_set(self, chain_rg):
        plan = build_message_plan(chain_rg, 2)
        n = plan.num_nodes
        for layer in plan.layers:
            assert all(0 <= int(s) < n for s, _e, _d in layer.edges)

    def test_total_updates_less_than_full(self, chain_rg):
        pruned = build_message_plan(chain_rg, 2)
        full = full_graph_plan(chain_rg, 2)
        assert pruned.total_updates() <= full.total_updates()

    def test_empty_graph_plan(self):
        rg = relational_graph_for([(0, 0, 1), (2, 0, 3)], (0, 0, 3))
        plan = build_message_plan(rg, 2)
        assert plan.num_nodes == 1
        assert all(len(layer.edges) == 0 for layer in plan.layers)

    @given(seed=st.integers(0, 100), num_layers=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_property_plan_consistency(self, seed, num_layers):
        rng = np.random.default_rng(seed)
        triples = TripleSet(
            {
                (int(rng.integers(8)), int(rng.integers(4)), int(rng.integers(8)))
                for _ in range(14)
            }
        )
        g = KnowledgeGraph.from_triples(triples, num_entities=8, num_relations=4)
        if len(g.triples) == 0:
            return
        target = g.triples[0]
        rg = build_relational_graph(
            extract_enclosing_subgraph(g, target, num_hops=2)
        )
        plan = build_message_plan(rg, num_layers)
        # Target always kept at hop 0.
        assert plan.hops[plan.target_index] == 0
        # All kept hops within num_layers.
        assert (plan.hops <= num_layers).all()
        # Edges at every layer respect the shrinking frontier.
        for k, layer in enumerate(plan.layers, start=1):
            budget = num_layers - k
            for src, _etype, dst in layer.edges:
                assert plan.hops[dst] <= budget
                assert plan.hops[src] <= budget + 1


class TestFullGraphPlan:
    def test_updates_everything_each_layer(self, chain_rg):
        plan = full_graph_plan(chain_rg, 2)
        for layer in plan.layers:
            assert len(layer.update_nodes) == chain_rg.num_nodes
            assert len(layer.edges) == chain_rg.num_edges

    def test_total_updates(self, chain_rg):
        plan = full_graph_plan(chain_rg, 3)
        assert plan.total_updates() == 3 * chain_rg.num_nodes
