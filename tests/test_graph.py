"""KnowledgeGraph tests: adjacency, K-hop BFS, induced subgraphs."""

import pytest

from repro.kg import KnowledgeGraph, TripleSet


@pytest.fixture
def chain_graph():
    """0 -r0-> 1 -r0-> 2 -r1-> 3 -r1-> 4"""
    return KnowledgeGraph.from_triples(
        [(0, 0, 1), (1, 0, 2), (2, 1, 3), (3, 1, 4)]
    )


class TestConstruction:
    def test_from_triples_infers_sizes(self, chain_graph):
        assert chain_graph.num_entities == 5
        assert chain_graph.num_relations == 2

    def test_explicit_sizes_validated(self):
        with pytest.raises(ValueError):
            KnowledgeGraph(TripleSet([(0, 0, 5)]), num_entities=3, num_relations=1)
        with pytest.raises(ValueError):
            KnowledgeGraph(TripleSet([(0, 4, 1)]), num_entities=3, num_relations=1)

    def test_id_space_may_exceed_data(self):
        g = KnowledgeGraph(TripleSet([(0, 0, 1)]), num_entities=100, num_relations=50)
        assert g.degree(99) == 0

    def test_empty_graph(self):
        g = KnowledgeGraph.from_triples([])
        assert len(g) == 0
        assert g.num_entities == 0


class TestAdjacency:
    def test_incident_edges(self, chain_graph):
        assert chain_graph.incident_edges(2) == [1, 2]
        assert chain_graph.degree(0) == 1

    def test_self_loop_counted_once(self):
        g = KnowledgeGraph.from_triples([(0, 0, 0)])
        assert g.degree(0) == 1

    def test_edge_accessor(self, chain_graph):
        assert chain_graph.edge(2) == (2, 1, 3)

    def test_relations_of(self, chain_graph):
        assert chain_graph.relations_of(2) == {0, 1}

    def test_entity_pair_relations(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (0, 1, 1), (1, 0, 0)])
        assert g.entity_pair_relations(0, 1) == {0, 1}
        assert g.entity_pair_relations(1, 0) == {0}


class TestKHop:
    def test_distances_undirected(self, chain_graph):
        d = chain_graph.khop_distances(0, 10)
        assert d == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_hops_limits(self, chain_graph):
        d = chain_graph.khop_distances(0, 2)
        assert set(d) == {0, 1, 2}

    def test_forbidden_blocks_paths_through(self, chain_graph):
        # Forbid 2: nodes beyond 2 are unreachable from 0, though 2 itself
        # is still *reported* (entered but not expanded).
        d = chain_graph.khop_distances(0, 10, forbidden={2})
        assert 3 not in d and 4 not in d
        assert d[2] == 2

    def test_khop_neighbors_includes_source(self, chain_graph):
        assert 0 in chain_graph.khop_neighbors(0, 1)


class TestEntityIdValidation:
    """incident_edges and induced_edge_indices reject out-of-range ids
    consistently (negative ids used to crash obscurely / oversized ids were
    silently skipped)."""

    def test_incident_edges_negative_id(self, chain_graph):
        with pytest.raises(ValueError, match="out of range"):
            chain_graph.incident_edges(-1)

    def test_incident_edges_oversized_id(self, chain_graph):
        with pytest.raises(ValueError, match="out of range"):
            chain_graph.incident_edges(5)

    def test_induced_negative_id(self, chain_graph):
        with pytest.raises(ValueError, match="out of range"):
            chain_graph.induced_edge_indices({0, -3})

    def test_induced_oversized_id(self, chain_graph):
        with pytest.raises(ValueError, match="out of range"):
            chain_graph.induced_edge_indices({0, 1, 99})

    def test_degree_and_khop_validate_too(self, chain_graph):
        with pytest.raises(ValueError, match="out of range"):
            chain_graph.degree(-2)
        with pytest.raises(ValueError, match="out of range"):
            chain_graph.khop_distances(17, 2)

    def test_empty_entity_set_is_fine(self, chain_graph):
        assert chain_graph.induced_edge_indices(set()) == []


class TestInducedSubgraph:
    def test_only_internal_edges(self, chain_graph):
        triples = chain_graph.induced_subgraph_triples({0, 1, 2})
        assert triples == TripleSet([(0, 0, 1), (1, 0, 2)])

    def test_empty_for_disconnected_set(self, chain_graph):
        assert len(chain_graph.induced_subgraph_triples({0, 4})) == 0

    def test_edge_indices_sorted_unique(self, chain_graph):
        idx = chain_graph.induced_edge_indices({1, 2, 3})
        assert idx == sorted(set(idx))

    def test_statistics(self, chain_graph):
        stats = chain_graph.statistics()
        assert stats == {"relations": 2, "entities": 5, "triples": 4}
