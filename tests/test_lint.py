"""Tests for the project linter (``repro.lint``).

Every rule gets a violating fixture and a clean fixture, proving the rule
both fires on the bug class it encodes and stays quiet on the sanctioned
pattern.  Framework behaviour (suppressions, baseline, CLI, config
fallback) is covered separately, and a self-check at the end lints the
real repository expecting zero violations — the committed-baseline-empty
policy, enforced from inside the test suite.
"""

from __future__ import annotations

import json
import os
import textwrap

import pytest

from repro.lint import (
    LintConfig,
    Violation,
    all_rules,
    lint_paths,
    lint_sources,
    load_config,
    render_json,
    render_text,
)
from repro.lint.baseline import filter_baselined, load_baseline, write_baseline
from repro.lint.config import FALLBACK_CONFIG
from repro.lint.registry import resolve_rules
from repro.lint.__main__ import main as lint_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint(sources, tmp_path, **overrides):
    """Lint in-memory sources with an isolated root (no disk test globs)."""
    config = LintConfig(root=str(tmp_path), **overrides)
    pairs = [
        (path, textwrap.dedent(source).lstrip("\n"))
        for path, source in sources
    ]
    return lint_sources(pairs, config)


def codes(violations):
    return sorted(v.rule for v in violations)


# ---------------------------------------------------------------------------
# RL001 — dtype policy
# ---------------------------------------------------------------------------
def test_rl001_flags_hardcoded_float64(tmp_path):
    violations = run_lint(
        [(
            "src/repro/feat.py",
            """
            import numpy as np

            def features(n):
                return np.zeros((n, 4), dtype=np.float64)
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL001"]
    assert violations[0].line == 4


def test_rl001_flags_dtype_float_and_astype_float(tmp_path):
    violations = run_lint(
        [(
            "src/repro/feat.py",
            """
            import numpy as np

            def features(x):
                a = np.asarray(x, dtype=float)
                return a.astype(float)
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL001", "RL001"]


def test_rl001_clean_engine_module_comparisons_and_legacy(tmp_path):
    violations = run_lint(
        [
            (
                # The policy module itself may name float64.
                "src/repro/autograd/engine.py",
                """
                import numpy as np
                SCORE_DTYPE = np.float64
                """,
            ),
            (
                "src/repro/check.py",
                """
                import numpy as np

                def is_wide(x):
                    return x.dtype == np.float64

                def legacy_feature(n):
                    return np.zeros(n, dtype=np.float64)
                """,
            ),
        ],
        tmp_path,
        # Scoped to the rule under test: the legacy_ fixture would
        # otherwise (correctly) trip RL006's parity-pairing check.
        select=("RL001",),
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL002 — no scatter-add outside legacy references
# ---------------------------------------------------------------------------
def test_rl002_flags_scatter_add(tmp_path):
    violations = run_lint(
        [(
            "src/repro/kernel.py",
            """
            import numpy as np

            def segment_sum(values, index, n):
                out = np.zeros(n)
                np.add.at(out, index, values)
                return out
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL002"]
    assert "legacy_" in violations[0].message


def test_rl002_clean_inside_legacy_reference(tmp_path):
    violations = run_lint(
        [(
            "src/repro/kernel.py",
            """
            import numpy as np

            def legacy_segment_sum(values, index, n):
                out = np.zeros(n)
                np.add.at(out, index, values)
                np.maximum.at(out, index, values)
                return out
            """,
        )],
        tmp_path,
        # Scoped to the rule under test: the legacy_ fixture would
        # otherwise (correctly) trip RL006's parity-pairing check.
        select=("RL002",),
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL003 — no id()-keyed caches
# ---------------------------------------------------------------------------
def test_rl003_flags_id_keyed_cache(tmp_path):
    violations = run_lint(
        [(
            "src/repro/cache.py",
            """
            _CACHE = {}

            def lookup(graph):
                return _CACHE.get(id(graph))
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL003"]
    assert "recycled" in violations[0].message


def test_rl003_clean_fingerprint_key(tmp_path):
    violations = run_lint(
        [(
            "src/repro/cache.py",
            """
            _CACHE = {}

            def lookup(graph):
                return _CACHE.get(graph.fingerprint())
            """,
        )],
        tmp_path,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL004 — seeding discipline
# ---------------------------------------------------------------------------
def test_rl004_flags_default_rng_and_bare_sampling(tmp_path):
    violations = run_lint(
        [(
            "src/repro/sampling.py",
            """
            import numpy as np

            def draw(n):
                rng = np.random.default_rng(0)
                noise = np.random.normal(size=n)
                return rng, noise
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL004", "RL004"]
    messages = " ".join(v.message for v in violations)
    assert "seeded_rng" in messages and "global state" in messages


def test_rl004_clean_seeded_rng_and_chokepoint_module(tmp_path):
    violations = run_lint(
        [
            (
                "src/repro/sampling.py",
                """
                from repro.utils.seeding import seeded_rng

                def draw(n, seed):
                    return seeded_rng(seed).normal(size=n)
                """,
            ),
            (
                # The chokepoint module itself is the one sanctioned caller.
                "src/repro/utils/seeding.py",
                """
                import numpy as np

                def seeded_rng(seed):
                    return np.random.default_rng(seed)
                """,
            ),
        ],
        tmp_path,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL005 — fork safety of worker-pool ops
# ---------------------------------------------------------------------------
def test_rl005_flags_lambda_and_global_mutation(tmp_path):
    violations = run_lint(
        [(
            "src/repro/parallel/myops.py",
            """
            from repro.parallel.pool import register_op

            _RESULTS = {}

            register_op("square")(lambda payload, state: payload ** 2)

            @register_op("tally")
            def tally_op(payload, state):
                _RESULTS[payload["key"]] = payload["value"]
                _RESULTS.update(payload["extra"])
                return None
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL005", "RL005", "RL005"]
    messages = " ".join(v.message for v in violations)
    assert "lambda" in messages and "_RESULTS" in messages


def test_rl005_flags_nested_op_and_global_stmt(tmp_path):
    violations = run_lint(
        [(
            "src/repro/parallel/myops.py",
            """
            from repro.parallel.pool import register_op

            _EPOCH = 0

            def install():
                @register_op("inner")
                def inner_op(payload, state):
                    return payload

            @register_op("bump")
            def bump_op(payload, state):
                global _EPOCH
                _EPOCH = payload
                return _EPOCH
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL005", "RL005"]
    messages = " ".join(v.message for v in violations)
    assert "nested closure" in messages and "_EPOCH" in messages


def test_rl005_clean_module_level_op_with_state_dict(tmp_path):
    violations = run_lint(
        [(
            "src/repro/parallel/myops.py",
            """
            from repro.parallel.pool import register_op

            @register_op("prepare")
            def prepare_op(payload, state):
                cache = state.setdefault("cache", {})
                cache[payload["key"]] = payload["value"]
                local = {}
                local.update(payload)
                return cache
            """,
        )],
        tmp_path,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL006 — legacy parity pairing (cross-file)
# ---------------------------------------------------------------------------
def test_rl006_flags_unpaired_legacy_reference(tmp_path):
    violations = run_lint(
        [(
            "src/repro/kernels.py",
            """
            def legacy_zz_orphan_kernel(values):
                return values
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL006"]
    assert "legacy_zz_orphan_kernel" in violations[0].message


def test_rl006_clean_when_equivalence_module_references_it(tmp_path):
    violations = run_lint(
        [
            (
                "src/repro/kernels.py",
                """
                def legacy_zz_paired_kernel(values):
                    return values
                """,
            ),
            (
                "tests/test_kernels_equivalence.py",
                """
                from repro import kernels

                def test_parity(data):
                    assert kernels.legacy_zz_paired_kernel(data) is data
                """,
            ),
        ],
        tmp_path,
    )
    assert violations == []


def test_rl006_loads_equivalence_modules_from_disk(tmp_path):
    """Parity suites count even when the CLI wasn't pointed at tests/."""
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    (tests_dir / "test_disk_equivalence.py").write_text(
        "def test_it():\n    name = 'legacy_zz_disk_kernel'\n"
    )
    violations = run_lint(
        [(
            "src/repro/kernels.py",
            """
            def legacy_zz_disk_kernel(values):
                return values
            """,
        )],
        tmp_path,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL007 — no-grad hygiene
# ---------------------------------------------------------------------------
def test_rl007_flags_unguarded_backward_closure(tmp_path):
    violations = run_lint(
        [(
            "src/repro/autograd/extra_ops.py",
            """
            from repro.autograd.tensor import Tensor

            def double(a):
                def backward(grad):
                    return (grad * 2,)
                return Tensor(a.data * 2, parents=(a,), backward_fn=backward)
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL007"]
    assert "'double'" in violations[0].message


def test_rl007_clean_with_needs_graph_guard(tmp_path):
    violations = run_lint(
        [(
            "src/repro/autograd/extra_ops.py",
            """
            from repro.autograd.engine import _needs_graph
            from repro.autograd.tensor import Tensor

            def double(a):
                data = a.data * 2
                if not _needs_graph(a):
                    return Tensor(data)
                def backward(grad):
                    return (grad * 2,)
                return Tensor(data, parents=(a,), backward_fn=backward)
            """,
        )],
        tmp_path,
    )
    assert violations == []


def test_rl007_ignores_modules_outside_autograd(tmp_path):
    violations = run_lint(
        [(
            "src/repro/serve/adhoc.py",
            """
            from repro.autograd.tensor import Tensor

            def wrap(a, backward):
                return Tensor(a, backward_fn=backward)
            """,
        )],
        tmp_path,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# RL008 — instrumentation clock discipline
# ---------------------------------------------------------------------------
def test_rl008_flags_time_and_perf_counter_in_library_code(tmp_path):
    violations = run_lint(
        [(
            "src/repro/train/timing_hack.py",
            """
            import time
            from time import perf_counter

            def step(fn):
                start = perf_counter()
                fn()
                wall = time.time()
                return time.perf_counter() - start, wall
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL008", "RL008", "RL008"]
    assert "repro.obs.span" in violations[0].message


def test_rl008_tracks_import_aliases(tmp_path):
    violations = run_lint(
        [(
            "src/repro/eval/clocked.py",
            """
            import time as t
            from time import perf_counter as pc

            def measure(fn):
                start = pc()
                fn()
                return t.perf_counter() - start
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL008", "RL008"]


def test_rl008_allows_monotonic_obs_and_out_of_scope_paths(tmp_path):
    deadline = """
    import time

    def wait(timeout):
        return time.monotonic() + timeout
    """
    clocked = """
    import time

    def now():
        return time.perf_counter()
    """
    violations = run_lint(
        [
            ("src/repro/serve/deadline.py", deadline),  # monotonic: control flow
            ("src/repro/obs/clock.py", clocked),  # the sanctioned call site
            ("benchmarks/bench_adhoc.py", clocked),  # outside src/repro
            ("tests/test_adhoc.py", clocked),
        ],
        tmp_path,
    )
    assert violations == []


def test_rl008_suppression_with_reason(tmp_path):
    violations = run_lint(
        [(
            "src/repro/train/wall.py",
            """
            import time

            def wall_budget_exceeded(start, budget):
                now = time.time()  # repro-lint: disable=RL008 wall budget compares epoch time, not a measurement
                return now - start > budget
            """,
        )],
        tmp_path,
    )
    assert violations == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------
def test_trailing_suppression_with_reason_mutes_violation(tmp_path):
    violations = run_lint(
        [(
            "src/repro/cache.py",
            """
            def lookup(cache, graph):
                return cache.get(id(graph))  # repro-lint: disable=RL003 values pin the graph
            """,
        )],
        tmp_path,
    )
    assert violations == []


def test_standalone_suppression_applies_to_next_line(tmp_path):
    violations = run_lint(
        [(
            "src/repro/cache.py",
            """
            def lookup(cache, graph):
                # repro-lint: disable=RL003 values pin the graph
                return cache.get(id(graph))
            """,
        )],
        tmp_path,
    )
    assert violations == []


def test_suppression_without_reason_is_rl000_and_does_not_mute(tmp_path):
    violations = run_lint(
        [(
            "src/repro/cache.py",
            """
            def lookup(cache, graph):
                return cache.get(id(graph))  # repro-lint: disable=RL003
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL000", "RL003"]
    rl000 = [v for v in violations if v.rule == "RL000"][0]
    assert "without a reason" in rl000.message


def test_suppression_with_unknown_code_is_rl000(tmp_path):
    violations = run_lint(
        [(
            "src/repro/mod.py",
            """
            x = 1  # repro-lint: disable=RL999 no such rule
            """,
        )],
        tmp_path,
    )
    assert codes(violations) == ["RL000"]
    assert "RL999" in violations[0].message


def test_suppression_only_mutes_named_codes(tmp_path):
    violations = run_lint(
        [(
            "src/repro/mix.py",
            """
            import numpy as np

            def make(cache, graph, n):
                key = id(graph)  # repro-lint: disable=RL001 wrong code on purpose
                return key, np.zeros(n, dtype=np.float64)
            """,
        )],
        tmp_path,
    )
    # The RL001 suppression does not apply to the RL003 site it decorates.
    assert codes(violations) == ["RL001", "RL003"]


def test_suppression_inside_string_literal_is_not_a_suppression(tmp_path):
    violations = run_lint(
        [(
            "src/repro/doc.py",
            """
            EXAMPLE = "x = id(y)  # repro-lint: disable=RL003 not a comment"
            """,
        )],
        tmp_path,
    )
    # Neither a violation (no real id() call at runtime... there is none)
    # nor an RL000: the tokenizer sees a string, not a comment.
    assert violations == []


# ---------------------------------------------------------------------------
# Config: select / ignore / per-path ignores / fallback sync
# ---------------------------------------------------------------------------
SOURCE_WITH_TWO_RULES = (
    "src/repro/two.py",
    """
    import numpy as np

    def make(graph, n):
        return id(graph), np.zeros(n, dtype=np.float64)
    """,
)


def test_select_runs_only_named_rules(tmp_path):
    violations = run_lint([SOURCE_WITH_TWO_RULES], tmp_path, select=("RL003",))
    assert codes(violations) == ["RL003"]


def test_ignore_disables_named_rules(tmp_path):
    violations = run_lint([SOURCE_WITH_TWO_RULES], tmp_path, ignore=("RL003",))
    assert codes(violations) == ["RL001"]


def test_unknown_rule_code_raises(tmp_path):
    with pytest.raises(KeyError):
        run_lint([SOURCE_WITH_TWO_RULES], tmp_path, select=("RL999",))


# ---------------------------------------------------------------------------
# RL009 — no silently swallowed exceptions
# ---------------------------------------------------------------------------
def test_rl009_flags_pass_only_except(tmp_path):
    violations = run_lint(
        [(
            "src/repro/worker.py",
            """
            def collect(queue):
                try:
                    return queue.get_nowait()
                except KeyError:
                    pass
            """,
        )],
        tmp_path,
        select=("RL009",),
    )
    assert codes(violations) == ["RL009"]


def test_rl009_flags_ellipsis_body_and_bare_except(tmp_path):
    violations = run_lint(
        [(
            "src/repro/worker.py",
            """
            def collect(queue):
                try:
                    return queue.get_nowait()
                except ValueError:
                    ...
                except:
                    log = 1
            """,
        )],
        tmp_path,
        select=("RL009",),
    )
    assert codes(violations) == ["RL009", "RL009"]


def test_rl009_allows_handled_translated_or_reraised(tmp_path):
    violations = run_lint(
        [(
            "src/repro/worker.py",
            """
            def collect(queue):
                try:
                    return queue.get_nowait()
                except KeyError as error:
                    raise RuntimeError("empty") from error
                except ValueError:
                    return None
                except:
                    raise
            """,
        )],
        tmp_path,
        select=("RL009",),
    )
    assert violations == []


def test_rl009_suppression_needs_a_reason(tmp_path):
    source = """
    def close(queue):
        try:
            queue.close()
        except OSError:  # repro-lint: disable=RL009 teardown race, pipe may be gone
            pass
    """
    violations = run_lint(
        [("src/repro/worker.py", source)], tmp_path, select=("RL009",)
    )
    assert violations == []


def test_rl009_is_scoped_to_library_code(tmp_path):
    noisy = """
    def probe(thing):
        try:
            return thing()
        except Exception:
            pass
    """
    in_tests = run_lint(
        [("tests/test_probe.py", noisy)], tmp_path, select=("RL009",)
    )
    in_bench = run_lint(
        [("benchmarks/bench_probe.py", noisy)], tmp_path, select=("RL009",)
    )
    in_src = run_lint(
        [("src/repro/probe.py", noisy)], tmp_path, select=("RL009",)
    )
    assert in_tests == [] and in_bench == []
    assert codes(in_src) == ["RL009"]


def test_per_path_ignores_scope_rules_to_prefix(tmp_path):
    config_kwargs = {
        "per_path_ignores": (("tests/", ("RL001", "RL004")),),
    }
    noisy = """
    import numpy as np

    def helper(n):
        rng = np.random.default_rng(0)
        return rng.normal(size=n).astype(float)
    """
    in_tests = run_lint(
        [("tests/test_helper.py", noisy)], tmp_path, **config_kwargs
    )
    in_src = run_lint(
        [("src/repro/helper.py", noisy)], tmp_path, **config_kwargs
    )
    assert in_tests == []
    assert codes(in_src) == ["RL001", "RL004"]


def test_registry_has_all_nine_project_rules():
    rules = all_rules()
    assert set(rules) >= {f"RL00{i}" for i in range(1, 10)}
    assert len(resolve_rules((), ())) >= 9


def test_fallback_config_matches_pyproject_section():
    tomllib = pytest.importorskip("tomllib")
    with open(os.path.join(REPO_ROOT, "pyproject.toml"), "rb") as handle:
        section = tomllib.load(handle)["tool"]["repro-lint"]
    assert section == FALLBACK_CONFIG


def test_load_config_reads_repo_pyproject():
    config = load_config(REPO_ROOT)
    assert config.baseline == "lint-baseline.json"
    assert config.ignored_rules_for("tests/test_anything.py") == (
        "RL001",
        "RL004",
    )
    assert config.ignored_rules_for("src/repro/core/base.py") == ()


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
def test_baseline_round_trip_filters_known_violations(tmp_path):
    violations = [
        Violation("RL003", "src/repro/a.py", 10, 5, "id() keys alias"),
        Violation("RL001", "src/repro/b.py", 3, 1, "hardcoded float64"),
    ]
    path = str(tmp_path / "baseline.json")
    write_baseline(path, violations[:1])
    baseline = load_baseline(path)
    remaining = filter_baselined(violations, baseline)
    assert [v.rule for v in remaining] == ["RL001"]
    # Line numbers are not part of baseline identity: the same violation
    # shifted by an unrelated edit still matches.
    moved = Violation("RL003", "src/repro/a.py", 99, 1, "id() keys alias")
    assert filter_baselined([moved], baseline) == []


def test_missing_baseline_file_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.json")) == set()


def test_committed_baseline_is_empty_by_policy():
    baseline = load_baseline(os.path.join(REPO_ROOT, "lint-baseline.json"))
    assert baseline == set(), (
        "lint-baseline.json must stay empty on main: fix new violations or "
        "inline-suppress them with a reason instead of baselining"
    )


# ---------------------------------------------------------------------------
# Rendering + CLI
# ---------------------------------------------------------------------------
def test_render_text_and_json_agree(tmp_path):
    violations = run_lint([SOURCE_WITH_TWO_RULES], tmp_path)
    text = render_text(violations, files_scanned=1)
    assert "2 violations in 1 files" in text
    assert "src/repro/two.py:4:" in text
    payload = json.loads(render_json(violations, files_scanned=1))
    assert payload["count"] == 2
    assert payload["files_scanned"] == 1
    assert {v["rule"] for v in payload["violations"]} == {"RL001", "RL003"}


def _write_project(tmp_path, source):
    (tmp_path / "mod.py").write_text(textwrap.dedent(source).lstrip("\n"))
    return str(tmp_path)


def test_cli_exits_zero_on_clean_tree(tmp_path, capsys):
    root = _write_project(tmp_path, "def add(a, b):\n    return a + b\n")
    status = lint_main(["mod.py", "--root", root])
    assert status == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exits_one_on_violations_with_json(tmp_path, capsys):
    root = _write_project(
        tmp_path,
        """
        import numpy as np
        X = np.zeros(3, dtype=np.float64)
        """,
    )
    status = lint_main(["mod.py", "--root", root, "--format", "json"])
    assert status == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    assert payload["violations"][0]["rule"] == "RL001"


def test_cli_select_and_ignore_flags(tmp_path, capsys):
    root = _write_project(
        tmp_path,
        """
        import numpy as np
        X = np.zeros(3, dtype=np.float64)
        """,
    )
    assert lint_main(["mod.py", "--root", root, "--ignore", "RL001"]) == 0
    capsys.readouterr()
    assert lint_main(["mod.py", "--root", root, "--select", "RL003"]) == 0
    capsys.readouterr()
    assert lint_main(["mod.py", "--root", root, "--select", "RL001"]) == 1


def test_cli_unknown_rule_is_usage_error(tmp_path, capsys):
    root = _write_project(tmp_path, "x = 1\n")
    status = lint_main(["mod.py", "--root", root, "--select", "RL999"])
    assert status == 2
    assert "RL999" in capsys.readouterr().err


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    root = _write_project(
        tmp_path,
        """
        import numpy as np
        X = np.zeros(3, dtype=np.float64)
        """,
    )
    assert lint_main(["mod.py", "--root", root, "--write-baseline"]) == 0
    capsys.readouterr()
    # Baselined violation no longer fails the gate...
    assert lint_main(["mod.py", "--root", root]) == 0
    capsys.readouterr()
    # ...but a fresh one does.
    (tmp_path / "mod.py").write_text(
        "import numpy as np\n"
        "X = np.zeros(3, dtype=np.float64)\n"
        "Y = np.random.default_rng(0)\n"
    )
    status = lint_main(["mod.py", "--root", root])
    assert status == 1
    assert "RL004" in capsys.readouterr().out


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL004", "RL007"):
        assert code in out


def test_syntax_error_reports_rl000(tmp_path):
    violations = run_lint([("src/repro/bad.py", "def broken(:\n")], tmp_path)
    assert codes(violations) == ["RL000"]
    assert "syntax error" in violations[0].message


# ---------------------------------------------------------------------------
# Self-check: the real repository is clean under the committed config
# ---------------------------------------------------------------------------
def test_repository_is_lint_clean():
    config_base = load_config(REPO_ROOT)
    config = LintConfig(
        select=config_base.select,
        ignore=config_base.ignore,
        baseline=config_base.baseline,
        per_path_ignores=config_base.per_path_ignores,
        root=REPO_ROOT,
    )
    violations, files_scanned = lint_paths(
        ["src", "tests", "benchmarks"], config
    )
    assert files_scanned > 100
    assert violations == [], render_text(violations, files_scanned)
