"""Tests for SubgraphScoringModel base behaviour and fused training."""

import numpy as np
import pytest

from repro.core import RMPI, RMPIConfig
from repro.train import TrainingConfig, train_model


class TestBaseModelBehaviour:
    def test_score_triples_restores_training_mode(self, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        model.train()
        model.score_triples(family_graph, [(0, 0, 1)])
        assert model.training  # restored

    def test_score_triples_runs_in_eval_mode(self, family_graph):
        # Dropout must be off during score_triples even from train mode:
        # repeated calls give identical values.
        model = RMPI(
            family_graph.num_relations,
            np.random.default_rng(0),
            RMPIConfig(dropout=0.9),
        )
        model.train()
        a = model.score_triples(family_graph, [(0, 0, 1)])
        b = model.score_triples(family_graph, [(0, 0, 1)])
        assert a == pytest.approx(b)

    def test_cache_distinguishes_graphs(self, family_graph, tiny_partial_benchmark):
        model = RMPI(
            max(family_graph.num_relations, tiny_partial_benchmark.num_relations),
            np.random.default_rng(0),
        )
        triple = (0, 0, 1)
        a = model.prepared(family_graph, triple)
        b = model.prepared(tiny_partial_benchmark.train_graph, triple)
        assert a is not b
        assert model.cache_size() == 2

    def test_single_triple_batch_shape(self, family_graph):
        model = RMPI(family_graph.num_relations, np.random.default_rng(0))
        scores = model.score_batch(family_graph, [(0, 0, 1)])
        assert scores.shape == (1, 1)


class TestFusedTraining:
    def test_fused_training_converges(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        model = RMPI(
            b.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=16)
        )
        history = train_model(
            model,
            b.train_graph,
            b.train_triples,
            config=TrainingConfig(epochs=6, seed=0, use_fused_scoring=True),
        )
        assert history.losses[-1] < history.losses[0]

    def test_fused_flag_default_and_generic_fallback(self, tiny_partial_benchmark):
        # Fused scoring is the default now; models without a true
        # disjoint-union forward (TACT here) train through the generic
        # score_batch_fused fallback (batched prepare + per-sample scores).
        from repro.baselines import TACTBase

        assert TrainingConfig().use_fused_scoring is True
        b = tiny_partial_benchmark
        model = TACTBase(b.num_relations, np.random.default_rng(0), embed_dim=8)
        history = train_model(
            model,
            b.train_graph,
            b.train_triples,
            config=TrainingConfig(epochs=1, seed=0, max_triples_per_epoch=20),
        )
        assert np.isfinite(history.losses).all()
