"""Double-radius labeling tests (GraIL features)."""

import numpy as np

from repro.kg import KnowledgeGraph
from repro.subgraph import (
    encode_labels,
    extract_enclosing_subgraph,
    label_feature_dim,
    node_labels,
)


def path_subgraph():
    """0 - 1 - 2 path; target (0, r, 2) via a parallel relation."""
    g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 2), (0, 1, 2)])
    return extract_enclosing_subgraph(g, (0, 1, 2), num_hops=2)


class TestNodeLabels:
    def test_target_conventions(self):
        sub = path_subgraph()
        labels = node_labels(sub)
        assert labels[sub.head] == (0, 1)
        assert labels[sub.tail] == (1, 0)

    def test_intermediate_node(self):
        sub = path_subgraph()
        labels = node_labels(sub)
        assert labels[1] == (1, 1)

    def test_distances_clipped_to_k(self):
        g = KnowledgeGraph.from_triples(
            [(0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 4), (0, 1, 4)]
        )
        sub = extract_enclosing_subgraph(g, (0, 1, 4), num_hops=3)
        labels = node_labels(sub)
        for d_u, d_v in labels.values():
            assert d_u <= 3 and d_v <= 3


class TestEncoding:
    def test_feature_dim(self):
        assert label_feature_dim(2) == 6
        assert label_feature_dim(3) == 8

    def test_one_hot_rows(self):
        sub = path_subgraph()
        features, index = encode_labels(sub)
        assert features.shape == (len(sub.entities), label_feature_dim(2))
        # Each row is exactly two one-hots.
        assert np.allclose(features.sum(axis=1), 2.0)

    def test_index_maps_all_entities(self):
        sub = path_subgraph()
        _features, index = encode_labels(sub)
        assert set(index) == set(sub.entities)

    def test_head_encoding_position(self):
        sub = path_subgraph()
        features, index = encode_labels(sub)
        head_row = features[index[sub.head]]
        # (0, 1): one-hot 0 in the first half, one-hot 1 in the second half.
        assert head_row[0] == 1.0
        assert head_row[3 + 1] == 1.0

    def test_isomorphic_subgraphs_same_features(self):
        # Same structure over different entity ids -> identical feature
        # matrices (entity independence, the point of the labeling).
        g1 = KnowledgeGraph.from_triples([(0, 0, 1), (1, 0, 2), (0, 1, 2)])
        g2 = KnowledgeGraph.from_triples([(10, 0, 11), (11, 0, 12), (10, 1, 12)])
        f1, _ = encode_labels(extract_enclosing_subgraph(g1, (0, 1, 2), 2))
        f2, _ = encode_labels(extract_enclosing_subgraph(g2, (10, 1, 12), 2))
        assert np.allclose(np.sort(f1, axis=0), np.sort(f2, axis=0))
