"""Tests for the future-work extensions (paper §VI):

* scaled dot-product target attention ('more robust TA mechanisms'),
* gated fusion ('more robust fusion functions'),
* entity-clue augmentation ('assembling reasoning clues from entities').
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core import RMPI, RMPIConfig
from repro.core.scoring import ScoringHead
from repro.train import TrainingConfig, train_model


class TestScaledDotAttention:
    def test_config_accepts(self):
        config = RMPIConfig(use_target_attention=True, attention_kind="scaled_dot")
        assert config.attention_kind == "scaled_dot"

    def test_config_rejects_unknown(self):
        with pytest.raises(ValueError):
            RMPIConfig(attention_kind="cosine")

    def test_scaled_differs_from_dot(self, family_graph):
        scores = {}
        for kind in ("dot", "scaled_dot"):
            config = RMPIConfig(use_target_attention=True, attention_kind=kind)
            model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
            model.eval()
            scores[kind] = float(model.score_triples(family_graph, [(0, 0, 1)])[0])
        assert scores["dot"] != pytest.approx(scores["scaled_dot"])

    def test_scaled_variant_trains(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        config = RMPIConfig(
            embed_dim=16, use_target_attention=True, attention_kind="scaled_dot"
        )
        model = RMPI(b.num_relations, np.random.default_rng(0), config)
        history = train_model(
            model,
            b.train_graph,
            b.train_triples,
            config=TrainingConfig(epochs=2, seed=0, max_triples_per_epoch=40),
        )
        assert np.isfinite(history.losses).all()


class TestGatedFusion:
    def test_head_gate_convexity(self):
        head = ScoringHead(4, np.random.default_rng(0), fusion="gated", use_disclosing=True)
        assert head.gate is not None
        # With zero gate input bias the output lies between the two pure cases.
        a = Tensor(np.full((1, 4), 2.0))
        b = Tensor(np.full((1, 4), -2.0))
        fused_score = float(head(a, b).data[0, 0])
        only_a = float(head(a, a).data[0, 0])
        only_b = float(head(b, b).data[0, 0])
        low, high = min(only_a, only_b), max(only_a, only_b)
        assert low - 1e-9 <= fused_score <= high + 1e-9

    def test_gated_model_runs(self, family_graph):
        config = RMPIConfig(use_disclosing=True, fusion="gated")
        model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
        score = model.score_triples(family_graph, [(0, 0, 1)])
        assert np.isfinite(score).all()

    def test_gate_gradient_flows(self, family_graph):
        config = RMPIConfig(use_disclosing=True, fusion="gated")
        model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
        model.score_sample(model.prepare(family_graph, (0, 0, 1))).backward()
        assert model.head.gate.weight.grad is not None


class TestEntityClues:
    def test_variant_name(self):
        assert RMPIConfig(use_entity_clues=True).variant_name == "RMPI-EC"
        assert (
            RMPIConfig(use_disclosing=True, use_entity_clues=True).variant_name
            == "RMPI-NE-EC"
        )

    def test_sample_carries_clue(self, family_graph):
        config = RMPIConfig(use_entity_clues=True)
        model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
        sample = model.prepare(family_graph, (0, 0, 1))
        assert sample.entity_clue is not None
        assert sample.entity_clue.shape == (1, 6)  # 2 * (K+1) with K=2

    def test_clue_changes_score(self, family_graph):
        config = RMPIConfig(use_entity_clues=True)
        model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
        model.eval()
        sample = model.prepare(family_graph, (0, 0, 1))
        baseline = float(model.score_sample(sample).data[0, 0])
        from repro.core.model import RMPISample

        altered = RMPISample(
            sample.triple,
            sample.plan,
            sample.disclosing_relations,
            sample.enclosing_empty,
            entity_clue=sample.entity_clue + 1.0,
        )
        assert float(model.score_sample(altered).data[0, 0]) != pytest.approx(baseline)

    def test_clue_gradient_flows(self, family_graph):
        config = RMPIConfig(use_entity_clues=True)
        model = RMPI(family_graph.num_relations, np.random.default_rng(0), config)
        model.score_sample(model.prepare(family_graph, (0, 0, 1))).backward()
        assert model.head.clue_proj.weight.grad is not None

    def test_ec_variant_trains(self, tiny_partial_benchmark):
        b = tiny_partial_benchmark
        config = RMPIConfig(embed_dim=16, use_entity_clues=True)
        model = RMPI(b.num_relations, np.random.default_rng(0), config)
        history = train_model(
            model,
            b.train_graph,
            b.train_triples,
            config=TrainingConfig(epochs=2, seed=0, max_triples_per_epoch=40),
        )
        assert np.isfinite(history.losses).all()
