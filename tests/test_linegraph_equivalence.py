"""Vectorized vs legacy relation-view pipeline equivalence (the contract).

The numpy pairing kernel behind ``build_relational_graph`` /
``build_relational_graphs_many`` and the array plan compiler behind
``build_message_plan`` / ``build_message_plans_many`` must produce
*identical* values to the pure-Python reference paths — same node ordering
(target first, then subgraph triples in order), same deduplicated sorted
edge rows, same BFS hops, same per-layer schedules — on arbitrary
subgraphs, including self-loops, parallel edges (PARA/LOOP subsumption),
empty subgraphs, and disconnected targets.  A final class asserts fused
batched scoring stays equal to per-sample scoring through the new prepare
path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from engine_tolerances import score_tolerance
from repro.core import RMPI, RMPIConfig
from repro.kg import KnowledgeGraph, TripleSet
from repro.subgraph import (
    build_message_plan,
    build_message_plans_many,
    build_relational_graph,
    build_relational_graphs_many,
    extract_disclosing_subgraph,
    extract_enclosing_subgraph,
    extract_subgraphs_many,
    incoming_hops,
    legacy_build_message_plan,
    legacy_build_relational_graph,
    legacy_incoming_hops,
    target_one_hop_relations,
)


def random_graph(seed: int) -> KnowledgeGraph:
    rng = np.random.default_rng(seed)
    num_entities = int(rng.integers(3, 14))
    num_relations = int(rng.integers(2, 6))
    triples = sorted(
        {
            (
                int(rng.integers(num_entities)),
                int(rng.integers(num_relations)),
                int(rng.integers(num_entities)),
            )
            for _ in range(int(rng.integers(2, 36)))
        }
    )
    return KnowledgeGraph.from_triples(
        TripleSet(triples), num_entities=num_entities, num_relations=num_relations
    )


def assert_same_relational(a, b):
    """Exact equality: node ordering contract, relations, sorted edges."""
    assert a.node_triples == b.node_triples
    assert np.array_equal(a.node_relations, b.node_relations)
    assert a.edges.shape == b.edges.shape
    assert np.array_equal(a.edges, b.edges)
    assert a.target_node == b.target_node


def assert_same_plan(p, q):
    assert np.array_equal(p.node_ids, q.node_ids)
    assert np.array_equal(p.node_relations, q.node_relations)
    assert np.array_equal(p.hops, q.hops)
    assert p.target_index == q.target_index
    assert len(p.layers) == len(q.layers)
    for lp, lq in zip(p.layers, q.layers):
        assert np.array_equal(lp.edges, lq.edges)
        assert np.array_equal(lp.update_nodes, lq.update_nodes)


def subgraphs_for(graph, target, hops=2):
    return (
        extract_enclosing_subgraph(graph, target, hops),
        extract_disclosing_subgraph(graph, target, hops),
    )


class TestRelationalGraphEquivalence:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=50, deadline=None)
    def test_randomized_subgraphs(self, seed):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        rng = np.random.default_rng(seed + 1)
        targets = [
            graph.triples[seed % len(graph.triples)],  # a fact
            (  # an arbitrary (possibly disconnected non-fact) pair
                int(rng.integers(graph.num_entities)),
                int(rng.integers(graph.num_relations)),
                int(rng.integers(graph.num_entities)),
            ),
        ]
        for target in targets:
            for sub in subgraphs_for(graph, target):
                assert_same_relational(
                    build_relational_graph(sub), legacy_build_relational_graph(sub)
                )

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_batched_matches_per_subgraph(self, seed):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        targets = [graph.triples[i % len(graph.triples)] for i in range(6)]
        subs = extract_subgraphs_many(graph, targets, 2)
        for sub, rg in zip(subs, build_relational_graphs_many(subs)):
            assert_same_relational(rg, legacy_build_relational_graph(sub))

    def test_self_loops_and_parallel_edges(self):
        # Self-loops share head==tail; parallel edges must be typed PARA
        # (not H-H + T-T) and crossed pairs LOOP (not H-T + T-H).
        g = KnowledgeGraph.from_triples(
            [(0, 0, 0), (0, 1, 1), (0, 2, 1), (1, 0, 0), (1, 1, 1), (0, 0, 1)]
        )
        for target in [(0, 1, 1), (0, 0, 0), (1, 1, 1)]:
            for sub in subgraphs_for(g, target):
                assert_same_relational(
                    build_relational_graph(sub), legacy_build_relational_graph(sub)
                )

    def test_empty_subgraph(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        sub = extract_enclosing_subgraph(g, (0, 0, 3), 2)
        assert sub.is_empty
        rg = build_relational_graph(sub)
        assert_same_relational(rg, legacy_build_relational_graph(sub))
        assert rg.num_nodes == 1 and rg.num_edges == 0

    def test_disconnected_target(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (1, 1, 2), (3, 0, 4)])
        for sub in subgraphs_for(g, (0, 2, 4)):
            assert_same_relational(
                build_relational_graph(sub), legacy_build_relational_graph(sub)
            )

    def test_incoming_csr_matches_boolean_scan(self):
        for seed in range(12):
            graph = random_graph(seed)
            if len(graph.triples) == 0:
                continue
            sub = extract_enclosing_subgraph(
                graph, graph.triples[seed % len(graph.triples)], 2
            )
            rg = build_relational_graph(sub)
            for node in range(rg.num_nodes):
                expected = (
                    rg.edges[rg.edges[:, 2] == node]
                    if rg.num_edges
                    else np.empty((0, 3), dtype=np.int64)
                )
                assert np.array_equal(rg.incoming(node), expected)

    def test_target_one_hop_relations_order(self):
        # The vectorized mask must preserve triple order (the NE module's
        # ragged concat is keyed on it).
        g = KnowledgeGraph.from_triples(
            [(0, 0, 1), (1, 1, 2), (2, 2, 3), (1, 3, 0), (3, 0, 3)]
        )
        sub = extract_disclosing_subgraph(g, (0, 1, 1), 2)
        u, v = sub.head, sub.tail
        expected = [
            r for h, r, t in sub.triples if h == u or t == u or h == v or t == v
        ]
        assert target_one_hop_relations(sub) == expected


class TestMessagePlanEquivalence:
    @given(seed=st.integers(0, 400), num_layers=st.integers(1, 3))
    @settings(max_examples=50, deadline=None)
    def test_randomized_plans(self, seed, num_layers):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        target = graph.triples[seed % len(graph.triples)]
        for sub in subgraphs_for(graph, target):
            rg = build_relational_graph(sub)
            assert_same_plan(
                build_message_plan(rg, num_layers),
                legacy_build_message_plan(rg, num_layers),
            )
            assert incoming_hops(rg, num_layers) == legacy_incoming_hops(
                rg, num_layers
            )

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_batched_matches_per_graph(self, seed):
        graph = random_graph(seed)
        if len(graph.triples) == 0:
            return
        targets = [graph.triples[i % len(graph.triples)] for i in range(6)]
        relationals = build_relational_graphs_many(
            extract_subgraphs_many(graph, targets, 2)
        )
        for rg, plan in zip(relationals, build_message_plans_many(relationals, 2)):
            assert_same_plan(plan, legacy_build_message_plan(rg, 2))

    def test_empty_graph_plan(self):
        g = KnowledgeGraph.from_triples([(0, 0, 1), (2, 0, 3)])
        rg = build_relational_graph(extract_enclosing_subgraph(g, (0, 0, 3), 2))
        plan = build_message_plan(rg, 2)
        assert_same_plan(plan, legacy_build_message_plan(rg, 2))
        assert plan.num_nodes == 1
        assert all(len(layer.edges) == 0 for layer in plan.layers)

    def test_batch_mixes_empty_and_dense_graphs(self):
        g = KnowledgeGraph.from_triples(
            [(0, 0, 1), (1, 1, 2), (2, 2, 0), (3, 0, 4)]
        )
        targets = [(0, 0, 1), (0, 0, 4), (1, 1, 2)]  # middle one is empty
        relationals = build_relational_graphs_many(
            extract_subgraphs_many(g, targets, 2)
        )
        assert relationals[1].num_edges == 0
        for rg, plan in zip(relationals, build_message_plans_many(relationals, 2)):
            assert_same_plan(plan, legacy_build_message_plan(rg, 2))


class TestFusedScoreParity:
    """Fused batched scoring == per-sample scoring through the new
    batched prepare path (line graph + plan compiled in shared passes)."""

    @pytest.mark.parametrize(
        "config",
        [
            RMPIConfig(embed_dim=16, dropout=0.0),
            RMPIConfig(embed_dim=16, dropout=0.0, use_disclosing=True),
            RMPIConfig(
                embed_dim=16,
                dropout=0.0,
                use_disclosing=True,
                use_target_attention=True,
                fusion="concat",
            ),
        ],
        ids=["base", "NE", "NE-TA-concat"],
    )
    def test_fused_equals_per_sample(self, tiny_partial_benchmark, config):
        b = tiny_partial_benchmark
        model = RMPI(b.num_relations, np.random.default_rng(0), config)
        model.eval()
        triples = list(b.train_triples)[:8]
        samples = model.prepared_many(b.train_graph, triples)
        fused = model.score_samples_batched(samples).data.reshape(-1)
        single = np.asarray(
            [float(model.score_sample(s).data.reshape(-1)[0]) for s in samples]
        )
        np.testing.assert_allclose(fused, single, **score_tolerance())

    def test_ne_gradients_flow_through_batched_aggregator(
        self, tiny_partial_benchmark
    ):
        b = tiny_partial_benchmark
        model = RMPI(
            b.num_relations,
            np.random.default_rng(0),
            RMPIConfig(embed_dim=16, dropout=0.0, use_disclosing=True),
        )
        triples = list(b.train_triples)[:4]
        scores = model.score_batch_fused(b.train_graph, triples)
        scores.sum().backward()
        grads = [
            p.grad for p in model.parameters() if p.grad is not None
        ]
        assert grads and any(np.abs(g).sum() > 0 for g in grads)
