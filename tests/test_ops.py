"""Gradient checks for every functional op against numerical differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, ops


def make_param(shape, seed=0, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestArithmeticGradients:
    def test_add(self):
        a, b = make_param((3, 2), 1), make_param((3, 2), 2)
        check_gradients(lambda: ops.sum(ops.add(a, b)), [a, b])

    def test_add_broadcast(self):
        a, b = make_param((3, 2), 1), make_param((2,), 2)
        check_gradients(lambda: ops.sum(ops.add(a, b)), [a, b])

    def test_sub(self):
        a, b = make_param((4,), 1), make_param((4,), 2)
        check_gradients(lambda: ops.sum(ops.sub(a, b)), [a, b])

    def test_mul(self):
        a, b = make_param((2, 3), 1), make_param((2, 3), 2)
        check_gradients(lambda: ops.sum(ops.mul(a, b)), [a, b])

    def test_mul_broadcast_column(self):
        a, b = make_param((4, 3), 1), make_param((4, 1), 2)
        check_gradients(lambda: ops.sum(ops.mul(a, b)), [a, b])

    def test_div(self):
        a = make_param((3,), 1)
        b = make_param((3,), 2, positive=True)
        check_gradients(lambda: ops.sum(ops.div(a, b)), [a, b])

    def test_power(self):
        a = make_param((3,), 1, positive=True)
        check_gradients(lambda: ops.sum(ops.power(a, 3.0)), [a])


class TestLinalgGradients:
    def test_matmul_2d(self):
        a, b = make_param((3, 4), 1), make_param((4, 2), 2)
        check_gradients(lambda: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_vec_mat(self):
        a, b = make_param((4,), 1), make_param((4, 2), 2)
        check_gradients(lambda: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_mat_vec(self):
        a, b = make_param((3, 4), 1), make_param((4,), 2)
        check_gradients(lambda: ops.sum(ops.matmul(a, b)), [a, b])

    def test_matmul_vec_vec(self):
        a, b = make_param((4,), 1), make_param((4,), 2)
        check_gradients(lambda: ops.matmul(a, b), [a, b])

    def test_transpose(self):
        a = make_param((2, 5), 1)
        weights = Tensor(np.arange(10.0).reshape(5, 2))
        check_gradients(lambda: ops.sum(ops.mul(ops.transpose(a), weights)), [a])

    def test_reshape(self):
        a = make_param((2, 6), 1)
        weights = Tensor(np.arange(12.0).reshape(3, 4))
        check_gradients(lambda: ops.sum(ops.mul(ops.reshape(a, (3, 4)), weights)), [a])


class TestReductionGradients:
    def test_sum_all(self):
        a = make_param((3, 3), 1)
        check_gradients(lambda: ops.sum(a), [a])

    def test_sum_axis(self):
        a = make_param((3, 4), 1)
        weights = Tensor(np.arange(4.0))
        check_gradients(lambda: ops.sum(ops.mul(ops.sum(a, axis=0), weights)), [a])

    def test_mean_all(self):
        a = make_param((5,), 1)
        check_gradients(lambda: ops.mean(a), [a])

    def test_mean_axis_keepdims(self):
        a = make_param((3, 4), 1)
        check_gradients(lambda: ops.sum(ops.mean(a, axis=1, keepdims=True)), [a])

    def test_max_along(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        out = ops.sum(ops.max_along(a, axis=1))
        out.backward()
        expected = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        assert np.allclose(a.grad, expected)


class TestNonlinearityGradients:
    def test_relu(self):
        a = make_param((10,), 1)
        a.data += 0.05  # avoid the kink
        check_gradients(lambda: ops.sum(ops.relu(a)), [a])

    def test_leaky_relu(self):
        a = make_param((10,), 1)
        a.data += 0.05
        check_gradients(lambda: ops.sum(ops.leaky_relu(a)), [a])

    def test_leaky_relu_negative_slope_value(self):
        a = Tensor([-2.0])
        assert ops.leaky_relu(a, 0.2).data == pytest.approx([-0.4])

    def test_sigmoid(self):
        a = make_param((6,), 1)
        check_gradients(lambda: ops.sum(ops.sigmoid(a)), [a])

    def test_tanh(self):
        a = make_param((6,), 1)
        check_gradients(lambda: ops.sum(ops.tanh(a)), [a])

    def test_exp(self):
        a = make_param((6,), 1)
        check_gradients(lambda: ops.sum(ops.exp(a)), [a])

    def test_log(self):
        a = make_param((6,), 1, positive=True)
        check_gradients(lambda: ops.sum(ops.log(a)), [a])

    def test_softmax_rows_sum_to_one(self):
        a = make_param((4, 7), 1)
        out = ops.softmax(a, axis=1)
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_gradient(self):
        a = make_param((3, 5), 1)
        weights = Tensor(np.arange(15.0).reshape(3, 5))
        check_gradients(lambda: ops.sum(ops.mul(ops.softmax(a, axis=1), weights)), [a])


class TestShapeOps:
    def test_concat_gradient(self):
        a, b = make_param((2, 3), 1), make_param((4, 3), 2)
        weights = Tensor(np.arange(18.0).reshape(6, 3))
        check_gradients(
            lambda: ops.sum(ops.mul(ops.concat([a, b], axis=0), weights)), [a, b]
        )

    def test_concat_axis1(self):
        a, b = make_param((2, 2), 1), make_param((2, 3), 2)
        out = ops.concat([a, b], axis=1)
        assert out.shape == (2, 5)

    def test_stack(self):
        a, b = make_param((3,), 1), make_param((3,), 2)
        weights = Tensor(np.arange(6.0).reshape(2, 3))
        check_gradients(lambda: ops.sum(ops.mul(ops.stack([a, b]), weights)), [a, b])

    def test_index_select_gradient(self):
        a = make_param((5, 2), 1)
        idx = np.array([0, 3, 3])
        weights = Tensor(np.arange(6.0).reshape(3, 2))
        check_gradients(lambda: ops.sum(ops.mul(ops.index_select(a, idx), weights)), [a])

    def test_clip(self):
        a = Tensor([-2.0, 0.5, 3.0], requires_grad=True)
        out = ops.clip(a, -1.0, 1.0)
        ops.sum(out).backward()
        assert np.allclose(out.data, [-1.0, 0.5, 1.0])
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_maximum_gradient_no_ties(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        ops.sum(ops.maximum(a, b)).backward()
        assert np.allclose(a.grad, [0.0, 1.0])
        assert np.allclose(b.grad, [1.0, 0.0])

    def test_maximum_splits_ties(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        ops.sum(ops.maximum(a, b)).backward()
        assert a.grad == pytest.approx([0.5])
        assert b.grad == pytest.approx([0.5])


class TestDropout:
    def test_eval_mode_is_identity(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones((10, 10)))
        out = ops.dropout(a, 0.5, rng, training=False)
        assert out is a

    def test_training_scales_kept(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones((200, 200)))
        out = ops.dropout(a, 0.5, rng, training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 0.45 < (out.data > 0).mean() < 0.55

    def test_invalid_rate(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ops.dropout(Tensor([1.0]), 1.0, rng)

    def test_gradient_masks_match(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones(100), requires_grad=True)
        out = ops.dropout(a, 0.5, rng, training=True)
        ops.sum(out).backward()
        assert np.allclose((a.grad > 0), (out.data > 0))
