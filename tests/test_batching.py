"""Batched (disjoint-union) scoring tests: equivalence with per-sample."""

import numpy as np
import pytest

from repro.core import RMPI, RMPIConfig
from repro.core.batching import merge_plans


@pytest.fixture
def bench(tiny_partial_benchmark):
    return tiny_partial_benchmark


def some_triples(bench, n=12):
    return list(bench.train_triples)[:n]


class TestMergePlans:
    def test_node_counts_add_up(self, bench):
        model = RMPI(bench.num_relations, np.random.default_rng(0))
        plans = [
            model.prepared(bench.train_graph, t).plan for t in some_triples(bench, 5)
        ]
        merged = merge_plans(plans)
        assert merged.num_nodes == sum(p.num_nodes for p in plans)
        assert merged.num_samples == 5

    def test_targets_point_at_relation_of_sample(self, bench):
        model = RMPI(bench.num_relations, np.random.default_rng(0))
        triples = some_triples(bench, 5)
        plans = [model.prepared(bench.train_graph, t).plan for t in triples]
        merged = merge_plans(plans)
        for i, triple in enumerate(triples):
            assert merged.node_relations[merged.target_indices[i]] == triple[1]

    def test_edges_stay_within_sample_blocks(self, bench):
        model = RMPI(bench.num_relations, np.random.default_rng(0))
        plans = [
            model.prepared(bench.train_graph, t).plan for t in some_triples(bench, 6)
        ]
        merged = merge_plans(plans)
        bounds = list(merged.sample_offsets) + [merged.num_nodes]
        for layer in merged.layers:
            for src, _etype, dst in layer.edges:
                # src and dst fall in the same sample block.
                block_src = np.searchsorted(bounds, src, side="right") - 1
                block_dst = np.searchsorted(bounds, dst, side="right") - 1
                assert block_src == block_dst

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            merge_plans([])

    def test_mixed_depth_raises(self, bench):
        model2 = RMPI(bench.num_relations, np.random.default_rng(0), RMPIConfig(num_layers=2))
        model1 = RMPI(bench.num_relations, np.random.default_rng(0), RMPIConfig(num_layers=1))
        triple = some_triples(bench, 1)[0]
        plan2 = model2.prepare(bench.train_graph, triple).plan
        plan1 = model1.prepare(bench.train_graph, triple).plan
        with pytest.raises(ValueError):
            merge_plans([plan2, plan1])


@pytest.mark.parametrize(
    "config",
    [
        RMPIConfig(embed_dim=16, dropout=0.0),
        RMPIConfig(embed_dim=16, dropout=0.0, use_target_attention=True),
        RMPIConfig(embed_dim=16, dropout=0.0, use_disclosing=True),
        RMPIConfig(
            embed_dim=16,
            dropout=0.0,
            use_disclosing=True,
            use_target_attention=True,
            fusion="concat",
        ),
        RMPIConfig(embed_dim=16, dropout=0.0, use_entity_clues=True),
    ],
    ids=["base", "TA", "NE", "NE-TA-concat", "EC"],
)
class TestBatchedEquivalence:
    def test_matches_per_sample_scores(self, bench, config):
        model = RMPI(bench.num_relations, np.random.default_rng(0), config)
        model.eval()
        triples = some_triples(bench, 10)
        per_sample = model.score_batch(bench.train_graph, triples).data.reshape(-1)
        fused = model.score_batch_fused(bench.train_graph, triples).data.reshape(-1)
        assert np.allclose(per_sample, fused, atol=1e-10)

    def test_gradients_flow_through_fused_path(self, bench, config):
        model = RMPI(bench.num_relations, np.random.default_rng(0), config)
        model.eval()
        scores = model.score_batch_fused(bench.train_graph, some_triples(bench, 4))
        scores.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
