"""Metric tests: AUC-PR, ranks, MRR, Hits@n — incl. hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import average_precision, hits_at, mrr, rank_of_first


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 1, 0, 0], [4, 3, 2, 1]) == pytest.approx(1.0)

    def test_worst_ranking(self):
        # Positives at the bottom of 4: AP = (1/3 + 2/4) / 2
        ap = average_precision([0, 0, 1, 1], [4, 3, 2, 1])
        assert ap == pytest.approx((1 / 3 + 2 / 4) / 2)

    def test_single_positive_middle(self):
        ap = average_precision([0, 1, 0], [3, 2, 1])
        assert ap == pytest.approx(0.5)

    def test_no_positives(self):
        assert average_precision([0, 0], [1, 2]) == 0.0

    def test_all_positives(self):
        assert average_precision([1, 1, 1], [3, 1, 2]) == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            average_precision([1], [1.0, 2.0])

    def test_matches_sklearn_formula_on_random(self):
        # Cross-check against a direct O(n^2) computation.
        rng = np.random.default_rng(0)
        labels = rng.integers(2, size=30)
        if labels.sum() == 0:
            labels[0] = 1
        scores = rng.normal(size=30)
        order = np.argsort(-scores, kind="stable")
        sorted_labels = labels[order]
        expected = 0.0
        hits = 0
        for k, lab in enumerate(sorted_labels, start=1):
            if lab:
                hits += 1
                expected += hits / k
        expected /= labels.sum()
        assert average_precision(labels, scores) == pytest.approx(expected)

    @given(
        n=st.integers(2, 40),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(2, size=n)
        scores = rng.normal(size=n)
        ap = average_precision(labels, scores)
        assert 0.0 <= ap <= 1.0

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_under_perfect_separation(self, seed):
        rng = np.random.default_rng(seed)
        n = 20
        labels = np.array([1] * 5 + [0] * 15)
        scores = np.where(labels == 1, rng.uniform(1, 2, n), rng.uniform(-2, -1, n))
        assert average_precision(labels, scores) == pytest.approx(1.0)


class TestRankOfFirst:
    def test_best(self):
        assert rank_of_first([10.0, 1.0, 2.0]) == 1.0

    def test_worst(self):
        assert rank_of_first([0.0, 1.0, 2.0]) == 3.0

    def test_ties_get_mean_rank(self):
        # All equal among 3: mean rank = 2.
        assert rank_of_first([1.0, 1.0, 1.0]) == 2.0

    def test_constant_scorer_is_chance_not_perfect(self):
        # The guard against optimistic-rank inflation.
        ranks = [rank_of_first([0.0] * 50) for _ in range(5)]
        assert all(r == 25.5 for r in ranks)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            rank_of_first([])


class TestMRRHits:
    def test_mrr_percent(self):
        assert mrr([1, 2, 4]) == pytest.approx((1 + 0.5 + 0.25) / 3 * 100)

    def test_hits_at_10(self):
        assert hits_at([1, 5, 11, 50], 10) == pytest.approx(50.0)

    def test_hits_at_1(self):
        assert hits_at([1, 2, 1], 1) == pytest.approx(200 / 3)

    def test_empty_sequences(self):
        assert mrr([]) == 0.0
        assert hits_at([], 10) == 0.0

    @given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_property_ranges(self, ranks):
        assert 0.0 <= mrr(ranks) <= 100.0
        assert 0.0 <= hits_at(ranks, 10) <= 100.0
        # Hits@n is monotone in n.
        assert hits_at(ranks, 1) <= hits_at(ranks, 10) <= hits_at(ranks, 100)
