"""Transductive embedding model tests."""

import numpy as np
import pytest

from repro.kg import TripleSet
from repro.transductive import (
    MODEL_REGISTRY,
    ComplEx,
    DistMult,
    RotatE,
    TransE,
    TransH,
    TransductiveTrainingConfig,
    create_model,
    evaluate_link_prediction,
    train_transductive,
)


def toy_triples():
    """A small graph with clear structure: a ring under r0, plus r1 = r0^-1."""
    ring = [(i, 0, (i + 1) % 8) for i in range(8)]
    inverse = [(t, 1, h) for h, t in ((i, (i + 1) % 8) for i in range(8))]
    return TripleSet(ring + inverse)


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
class TestAllModels:
    def test_score_shape_and_finiteness(self, name):
        model = create_model(name, 10, 3, 8, np.random.default_rng(0))
        scores = model.score_array([(0, 0, 1), (2, 1, 3)])
        assert scores.shape == (2,)
        assert np.isfinite(scores).all()

    def test_gradients_flow(self, name):
        model = create_model(name, 10, 3, 8, np.random.default_rng(0))
        heads = np.array([0, 1])
        rels = np.array([0, 1])
        tails = np.array([2, 3])
        model.score(heads, rels, tails).sum().backward()
        assert model.entities.weight.grad is not None

    def test_training_reduces_loss(self, name):
        model = create_model(name, 8, 2, 8, np.random.default_rng(0))
        losses = train_transductive(
            model,
            toy_triples(),
            TransductiveTrainingConfig(epochs=30, learning_rate=0.05, seed=0),
        )
        assert losses[-1] < losses[0]

    def test_positives_beat_random_after_training(self, name):
        model = create_model(name, 8, 2, 8, np.random.default_rng(0))
        triples = toy_triples()
        train_transductive(
            model,
            triples,
            TransductiveTrainingConfig(epochs=60, learning_rate=0.05, seed=0),
        )
        pos = model.score_array(list(triples)).mean()
        rng = np.random.default_rng(1)
        random_triples = [
            (int(rng.integers(8)), int(rng.integers(2)), int(rng.integers(8)))
            for _ in range(32)
        ]
        neg = model.score_array(
            [t for t in random_triples if t not in set(triples)]
        ).mean()
        assert pos > neg

    def test_relation_vectors_shape(self, name):
        model = create_model(name, 10, 4, 8, np.random.default_rng(0))
        assert model.relation_vectors().shape == (4, 8)


class TestModelSpecifics:
    def test_transe_translation_score(self):
        model = TransE(4, 2, 4, np.random.default_rng(0))
        # Force h + r == t exactly: score must be 0 (maximal).
        model.entities.weight.data[0] = np.array([1.0, 0, 0, 0])
        model.relations.weight.data[0] = np.array([0, 1.0, 0, 0])
        model.entities.weight.data[1] = np.array([1.0, 1.0, 0, 0])
        assert model.score_array([(0, 0, 1)])[0] == pytest.approx(0.0)

    def test_distmult_symmetric(self):
        model = DistMult(6, 2, 8, np.random.default_rng(0))
        forward = model.score_array([(0, 0, 1)])
        backward = model.score_array([(1, 0, 0)])
        assert forward[0] == pytest.approx(backward[0])

    def test_complex_asymmetric(self):
        model = ComplEx(6, 2, 8, np.random.default_rng(0))
        forward = model.score_array([(0, 0, 1)])
        backward = model.score_array([(1, 0, 0)])
        assert forward[0] != pytest.approx(backward[0])

    def test_complex_requires_even_dim(self):
        with pytest.raises(ValueError):
            ComplEx(4, 2, 7, np.random.default_rng(0))

    def test_rotate_zero_phase_is_identity_rotation(self):
        model = RotatE(4, 1, 4, np.random.default_rng(0))
        model.relations.weight.data[:] = 0.0  # zero phases
        model.entities.weight.data[0] = np.array([1.0, 2.0, 3.0, 4.0])
        model.entities.weight.data[1] = np.array([1.0, 2.0, 3.0, 4.0])
        # h rotated by 0 equals t -> distance 0.
        assert model.score_array([(0, 0, 1)])[0] == pytest.approx(0.0)

    def test_transh_projection_orthogonal(self):
        model = TransH(4, 2, 4, np.random.default_rng(0))
        from repro.autograd import Tensor

        vectors = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        normals = Tensor(np.random.default_rng(2).normal(size=(3, 4)))
        projected = model._project(vectors, normals)
        unit = normals.data / np.linalg.norm(normals.data, axis=1, keepdims=True)
        dots = (projected.data * unit).sum(axis=1)
        assert np.allclose(dots, 0.0, atol=1e-7)

    def test_unknown_model_name(self):
        with pytest.raises(ValueError):
            create_model("PairRE", 4, 2, 4, np.random.default_rng(0))


class TestTrainerAndEval:
    def test_softplus_loss_path(self):
        model = TransE(8, 2, 8, np.random.default_rng(0))
        losses = train_transductive(
            model,
            toy_triples(),
            TransductiveTrainingConfig(epochs=10, loss="softplus", seed=0),
        )
        assert np.isfinite(losses).all()

    def test_invalid_loss_name(self):
        with pytest.raises(ValueError):
            TransductiveTrainingConfig(loss="nll")

    def test_link_prediction_after_training(self):
        model = DistMult(8, 2, 16, np.random.default_rng(0))
        triples = toy_triples()
        train_transductive(
            model,
            triples,
            TransductiveTrainingConfig(epochs=80, learning_rate=0.05, seed=0),
        )
        result = evaluate_link_prediction(
            model, triples.sample(8, np.random.default_rng(0)), triples,
            num_negatives=5,
        )
        assert result.mrr > 40.0  # well above the ~37% chance level for n=6


class TestSchemaPretrainingBackends:
    @pytest.mark.parametrize("name", ["TransE", "DistMult", "RotatE"])
    def test_backend_produces_vectors(self, name):
        from repro.kg import build_ontology
        from repro.schema import build_schema_graph
        from repro.schema.pretraining import pretrain_schema_with
        from repro.transductive import TransductiveTrainingConfig

        ontology = build_ontology(10, num_concepts=6, seed=1)
        schema = build_schema_graph(ontology)
        vectors = pretrain_schema_with(
            schema,
            name,
            dim=8,
            config=TransductiveTrainingConfig(epochs=5, seed=0),
        )
        assert vectors.shape == (10, 8)
        assert np.isfinite(vectors).all()
