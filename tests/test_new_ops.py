"""Gradient checks for the trigonometric / softplus / sqrt ops."""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, ops


def make_param(shape, seed=0, positive=False):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.5
    return Tensor(data, requires_grad=True)


class TestTrig:
    def test_sin_values(self):
        a = Tensor([0.0, np.pi / 2])
        assert np.allclose(ops.sin(a).data, [0.0, 1.0])

    def test_cos_values(self):
        a = Tensor([0.0, np.pi])
        assert np.allclose(ops.cos(a).data, [1.0, -1.0])

    def test_sin_gradient(self):
        a = make_param((6,), 1)
        check_gradients(lambda: ops.sum(ops.sin(a)), [a])

    def test_cos_gradient(self):
        a = make_param((6,), 2)
        check_gradients(lambda: ops.sum(ops.cos(a)), [a])

    def test_pythagorean_identity(self):
        a = make_param((10,), 3)
        s, c = ops.sin(a), ops.cos(a)
        total = ops.add(ops.mul(s, s), ops.mul(c, c))
        assert np.allclose(total.data, 1.0)


class TestSqrt:
    def test_values(self):
        assert np.allclose(ops.sqrt(Tensor([4.0, 9.0])).data, [2.0, 3.0])

    def test_gradient(self):
        a = make_param((6,), 1, positive=True)
        check_gradients(lambda: ops.sum(ops.sqrt(a)), [a])

    def test_negative_clamped_to_zero(self):
        assert ops.sqrt(Tensor([-1.0])).data == pytest.approx([0.0])


class TestSoftplus:
    def test_values(self):
        out = ops.softplus(Tensor([0.0]))
        assert out.data == pytest.approx([np.log(2.0)])

    def test_large_input_linear(self):
        out = ops.softplus(Tensor([100.0]))
        assert out.data == pytest.approx([100.0], rel=1e-6)

    def test_gradient_is_sigmoid(self):
        a = Tensor([0.0], requires_grad=True)
        ops.sum(ops.softplus(a)).backward()
        assert a.grad == pytest.approx([0.5])

    def test_gradcheck(self):
        a = make_param((8,), 4)
        check_gradients(lambda: ops.sum(ops.softplus(a)), [a])
