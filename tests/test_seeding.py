"""Deterministic-seeding infrastructure tests (:mod:`repro.utils.seeding`).

The load-bearing regression here is checkpoint determinism: two identical
data-parallel training runs — worker processes, dropout on, the works —
must produce bitwise-identical checkpoints, because every RNG stream a
worker touches is derived from ``(seed, rank)`` rather than inherited
fork state or OS entropy.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import RMPI, RMPIConfig
from repro.kg import KnowledgeGraph, TripleSet
from repro.parallel.trainer import DataParallelTrainer
from repro.train import ParallelConfig, TrainingConfig, load_checkpoint, save_checkpoint
from repro.utils.seeding import derive_seed, seed_everything, worker_rng

TRIPLES = [
    (0, 0, 1), (2, 1, 0), (1, 2, 2), (3, 4, 1), (0, 3, 3),
    (0, 3, 4), (1, 5, 5), (5, 6, 1), (2, 2, 3), (4, 1, 5),
]


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, 1, 2) == derive_seed(0, 1, 2)

    def test_components_matter(self):
        seeds = {
            derive_seed(0),
            derive_seed(0, 0),
            derive_seed(0, 1),
            derive_seed(1, 0),
            derive_seed(0, 0, 0),
        }
        assert len(seeds) == 5

    def test_in_numpy_seed_range(self):
        assert 0 <= derive_seed(2**62, 999) < 2**63


class TestWorkerRng:
    def test_streams_reproduce(self):
        a = worker_rng(0, 3).random(8)
        b = worker_rng(0, 3).random(8)
        assert np.array_equal(a, b)

    def test_ranks_decorrelated(self):
        draws = [worker_rng(0, rank).random(8) for rank in range(4)]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.array_equal(draws[i], draws[j])

    def test_extra_components_decorrelate_within_rank(self):
        # Several RNG-bearing submodules on one rank each get a distinct
        # stream (used by the pool's recursive RNG pinning).
        a = worker_rng(0, 1, 0).random(8)
        b = worker_rng(0, 1, 1).random(8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, worker_rng(0, 1).random(8))


class TestSeedEverything:
    def test_pins_stdlib_and_numpy(self, pinned_seeds):
        seed_everything(123)
        first = (random.random(), np.random.random())
        seed_everything(123)
        assert (random.random(), np.random.random()) == first


@pytest.mark.parallel
class TestParallelRunDeterminism:
    """Two identical parallel runs ⇒ identical checkpoints (satellite 2)."""

    def _train_once(self, tmp_path, tag: str, workers: int) -> str:
        graph = KnowledgeGraph(TripleSet(TRIPLES), num_entities=6, num_relations=7)
        # dropout ON: the exact case where unpinned fork-inherited RNG
        # state would silently destroy run-to-run reproducibility.
        model = RMPI(
            7, np.random.default_rng(0), RMPIConfig(embed_dim=8, dropout=0.5)
        )
        config = TrainingConfig(
            epochs=2,
            batch_size=4,
            seed=11,
            parallel=ParallelConfig(workers=workers),
        )
        DataParallelTrainer(
            model, graph, TripleSet(TRIPLES[:8]), config=config
        ).fit()
        return save_checkpoint(model, str(tmp_path / tag))

    @pytest.mark.parametrize("workers", (2, 4))
    def test_identical_checkpoints(self, tmp_path, workers, max_workers, pinned_seeds):
        if workers > max_workers:
            pytest.skip(f"--workers caps the sweep at {max_workers}")
        first = self._train_once(tmp_path, "run-a", workers)
        second = self._train_once(tmp_path, "run-b", workers)
        model_a = RMPI(7, np.random.default_rng(1), RMPIConfig(embed_dim=8))
        model_b = RMPI(7, np.random.default_rng(2), RMPIConfig(embed_dim=8))
        load_checkpoint(model_a, first)
        load_checkpoint(model_b, second)
        state_a, state_b = model_a.state_dict(), model_b.state_dict()
        assert sorted(state_a) == sorted(state_b)
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), (
                f"{name} differs between identical {workers}-worker runs"
            )
