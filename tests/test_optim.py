"""Optimizer tests: convergence on quadratics, state handling, clipping."""

import numpy as np
import pytest

from repro.autograd import SGD, Adam, Parameter, Tensor, clip_grad_norm, ops


def quadratic_loss(param, target):
    diff = ops.sub(param, Tensor(target))
    return ops.sum(ops.mul(diff, diff))


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0]))
        target = np.array([1.0, 2.0])
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(param, target).backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.array([10.0]))
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(30):
                opt.zero_grad()
                quadratic_loss(param, np.array([0.0])).backward()
                opt.step()
            return abs(float(param.data[0]))

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        # Loss contributes zero gradient; only decay acts.
        param.grad = np.zeros(1)
        opt.step()
        assert param.data[0] == pytest.approx(0.9)

    def test_skips_parameters_without_grad(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        opt.step()  # no grad: must not crash or move
        assert param.data[0] == 1.0

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([5.0, -3.0, 0.5]))
        target = np.array([1.0, 2.0, 0.0])
        opt = Adam([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            quadratic_loss(param, target).backward()
            opt.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_first_step_size_near_lr(self):
        # Bias correction makes the first Adam step ~= lr in magnitude.
        param = Parameter(np.array([1.0]))
        opt = Adam([param], lr=0.01)
        opt.zero_grad()
        quadratic_loss(param, np.array([0.0])).backward()
        opt.step()
        assert abs(1.0 - param.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_beats_sgd_on_badly_scaled_problem(self):
        scales = np.array([100.0, 0.01])

        def run(opt_cls, **kwargs):
            param = Parameter(np.array([1.0, 1.0]))
            opt = opt_cls([param], **kwargs)
            for _ in range(100):
                opt.zero_grad()
                loss = ops.sum(ops.mul(Tensor(scales), ops.mul(param, param)))
                loss.backward()
                opt.step()
            return float(np.abs(param.data).sum())

        assert run(Adam, lr=0.05) < run(SGD, lr=0.001)


class TestClipGradNorm:
    def test_returns_preclip_norm(self):
        param = Parameter(np.array([3.0, 4.0]))
        param.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([param], max_norm=100.0)
        assert norm == pytest.approx(5.0)
        assert np.allclose(param.grad, [3.0, 4.0])  # unchanged under max

    def test_scales_down(self):
        param = Parameter(np.array([3.0, 4.0]))
        param.grad = np.array([3.0, 4.0])
        clip_grad_norm([param], max_norm=1.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_handles_no_grads(self):
        param = Parameter(np.array([1.0]))
        assert clip_grad_norm([param], 1.0) == 0.0
