"""End-to-end integration tests across the full pipeline.

These are the "does the system do what the paper's system does" tests:
train on a training graph, predict on a testing graph with unseen entities
(and relations), and verify learning actually happened — trained models must
beat untrained ones.
"""

import numpy as np
import pytest

from repro.baselines import MaKEr, ScopedMaKEr, train_maker
from repro.core import RMPI, RMPIConfig
from repro.eval import evaluate_both, evaluate_triple_classification
from repro.experiments import run_experiment, run_full_experiment
from repro.train import TrainingConfig, train_model


class TestPartiallyInductivePipeline:
    def test_trained_beats_untrained(self, tiny_partial_benchmark):
        # An untrained GNN already produces structure-correlated scores, so
        # compare means over several evaluation draws, not single samples.
        b = tiny_partial_benchmark
        trained = RMPI(b.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=16))
        untrained = RMPI(b.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=16))
        train_model(
            trained,
            b.train_graph,
            b.train_triples,
            config=TrainingConfig(epochs=12, seed=0),
        )

        def mean_auc(model):
            values = [
                evaluate_triple_classification(
                    model, b.test_graph, b.test_triples, np.random.default_rng(seed)
                ).auc_pr
                for seed in (11, 12, 13, 14)
            ]
            return float(np.mean(values))

        assert mean_auc(trained) > mean_auc(untrained)

    def test_generalises_to_unseen_entities(self, tiny_partial_benchmark):
        # Better-than-chance AUC-PR on a graph whose entities were never seen
        # in training: the inductive claim.  This benchmark is extremely
        # sparse (~60% empty enclosing subgraphs), so use the NE variant —
        # the paper's answer to exactly this regime.
        b = tiny_partial_benchmark
        model = RMPI(
            b.num_relations,
            np.random.default_rng(0),
            RMPIConfig(embed_dim=16, use_disclosing=True),
        )
        train_model(
            model, b.train_graph, b.train_triples, config=TrainingConfig(epochs=10, seed=0)
        )
        aucs = [
            evaluate_triple_classification(
                model, b.test_graph, b.test_triples, np.random.default_rng(seed)
            ).auc_pr
            for seed in (1, 2, 3)
        ]
        assert float(np.mean(aucs)) > 55.0  # chance is 50


class TestFullyInductivePipeline:
    def test_semi_and_fully_settings_run(self, tiny_full_benchmark):
        result_semi = run_full_experiment(
            tiny_full_benchmark,
            "RMPI-NE",
            "semi",
            TrainingConfig(epochs=3, seed=0, max_triples_per_epoch=60),
            embed_dim=16,
        )
        result_fully = run_full_experiment(
            tiny_full_benchmark,
            "RMPI-NE",
            "fully",
            TrainingConfig(epochs=3, seed=0, max_triples_per_epoch=60),
            embed_dim=16,
        )
        for result in (result_semi, result_fully):
            assert np.isfinite(list(result.metrics.values())).all()

    def test_unseen_relations_scored_via_neighbors(self, tiny_full_benchmark):
        b = tiny_full_benchmark
        model = RMPI(b.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=16))
        train_model(
            model, b.train_graph, b.train_triples, config=TrainingConfig(epochs=3, seed=0)
        )
        unseen_targets = [t for t in b.semi_test_triples if t[1] not in b.seen_relations]
        if unseen_targets:
            scores = model.score_triples(b.semi_test_graph, unseen_targets[:5])
            assert np.isfinite(scores).all()

    def test_schema_enhanced_pipeline(self, tiny_full_benchmark):
        result = run_full_experiment(
            tiny_full_benchmark,
            "RMPI-base",
            "semi",
            TrainingConfig(epochs=2, seed=0, max_triples_per_epoch=40),
            use_schema=True,
            embed_dim=16,
        )
        assert "+schema" in result.model
        assert np.isfinite(list(result.metrics.values())).all()


class TestExtPipeline:
    def test_maker_on_ext_benchmark(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        model = MaKEr(b.num_relations, np.random.default_rng(0), embed_dim=16)
        train_maker(model, b.train_graph, b.train_triples, episodes=20, seed=0)
        scoped = ScopedMaKEr(model, b.seen_relations)
        for category, targets in b.targets.items():
            if len(targets) == 0:
                continue
            report = evaluate_both(scoped, b.test_graph, targets, seed=0, num_negatives=9)
            assert np.isfinite(list(report.as_dict().values())).all()

    def test_rmpi_on_ext_benchmark(self, tiny_ext_benchmark):
        b = tiny_ext_benchmark
        model = RMPI(b.num_relations, np.random.default_rng(0), RMPIConfig(embed_dim=16))
        train_model(
            model,
            b.train_graph,
            b.train_triples,
            config=TrainingConfig(epochs=2, seed=0, max_triples_per_epoch=40),
        )
        for targets in b.targets.values():
            if len(targets) == 0:
                continue
            report = evaluate_both(model, b.test_graph, targets, seed=0, num_negatives=9)
            assert np.isfinite(list(report.as_dict().values())).all()


class TestCrossModelComparability:
    def test_all_models_on_same_benchmark(self, tiny_partial_benchmark):
        # The Table VI setting: every method trains and evaluates on the
        # same benchmark without errors and produces sane metric ranges.
        for name in ("GraIL", "TACT-base", "CoMPILE", "RMPI-NE-TA"):
            result = run_experiment(
                tiny_partial_benchmark,
                name,
                TrainingConfig(epochs=1, seed=0, max_triples_per_epoch=30),
                num_negatives=9,
                embed_dim=8,
            )
            for key, value in result.metrics.items():
                assert 0.0 <= value <= 100.0, f"{name} {key}={value}"
