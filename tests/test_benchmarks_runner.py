"""Tests for :mod:`repro.benchmarks` — records, runner, CLI, loadgen math.

The runner is exercised against a stub workload module injected into
``sys.modules`` so tier-1 never runs a real benchmark; the real workloads
are smoke-run by the CI ``obs`` step instead.
"""

from __future__ import annotations

import json
import sys
import types

import pytest

from repro.benchmarks import records
from repro.benchmarks.__main__ import main as bench_main
from repro.benchmarks.loadgen import LoadLevelResult, LoadSweepResult
from repro.benchmarks.records import MetricSpec
from repro.benchmarks.runner import WORKLOADS, record_path, run_workload
from repro.benchmarks.timing import best_of, best_of_interleaved, timed


# ---------------------------------------------------------------------------
# Delta math
# ---------------------------------------------------------------------------
class TestDeltas:
    def test_lower_direction_flags_slowdowns(self):
        specs = {"step_s": MetricSpec("lower", threshold_pct=10.0)}
        deltas = records.compute_deltas(
            {"step_s": 0.12}, {"step_s": 0.10}, specs
        )
        assert deltas["step_s"]["delta_pct"] == pytest.approx(20.0)
        assert deltas["step_s"]["regression"] is True

    def test_lower_direction_improvement_is_not_a_regression(self):
        specs = {"step_s": MetricSpec("lower", threshold_pct=10.0)}
        deltas = records.compute_deltas(
            {"step_s": 0.05}, {"step_s": 0.10}, specs
        )
        assert deltas["step_s"]["delta_pct"] == pytest.approx(-50.0)
        assert deltas["step_s"]["regression"] is False

    def test_higher_direction_flags_throughput_drops(self):
        specs = {"qps": MetricSpec("higher", threshold_pct=10.0)}
        deltas = records.compute_deltas({"qps": 50.0}, {"qps": 100.0}, specs)
        assert deltas["qps"]["regression"] is True
        up = records.compute_deltas({"qps": 200.0}, {"qps": 100.0}, specs)
        assert up["qps"]["regression"] is False

    def test_informational_metrics_never_regress(self):
        specs = {"queries": MetricSpec("higher", threshold_pct=None)}
        deltas = records.compute_deltas(
            {"queries": 1.0}, {"queries": 100.0}, specs
        )
        assert deltas["queries"]["regression"] is False

    def test_drift_within_threshold_passes(self):
        deltas = records.compute_deltas(
            {"step_s": 0.11}, {"step_s": 0.10}, {"step_s": MetricSpec("lower")}
        )
        assert deltas["step_s"]["regression"] is False  # 10% < default 25%

    def test_metrics_missing_from_baseline_are_skipped(self):
        deltas = records.compute_deltas({"new_metric": 1.0}, {}, {})
        assert deltas == {}

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            MetricSpec("sideways")

    def test_fact_direction_never_regresses(self):
        """Environment facts (e.g. worker counts) carry their delta but can
        never be a regression — halving ``workers`` is a different
        experiment, not a −50% drop on a ``higher`` metric."""
        specs = {"workers": MetricSpec("fact", threshold_pct=None)}
        deltas = records.compute_deltas({"workers": 2.0}, {"workers": 4.0}, specs)
        assert deltas["workers"]["delta_pct"] == pytest.approx(-50.0)
        assert deltas["workers"]["regression"] is False
        assert deltas["workers"]["direction"] == "fact"
        # Regardless of movement direction or a configured threshold.
        up = records.compute_deltas(
            {"workers": 8.0},
            {"workers": 4.0},
            {"workers": MetricSpec("fact", threshold_pct=1.0)},
        )
        assert up["workers"]["regression"] is False


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------
class TestRecords:
    def test_first_record_is_v1_without_baseline(self):
        record = records.build_record(
            "w", {"a": 1.0}, {}, timestamp="T", smoke=True, rev="abc"
        )
        assert record["schema"] == records.SCHEMA_VERSION
        assert record["version"] == 1
        assert record["git_rev"] == "abc"
        assert "baseline" not in record
        assert set(record["env"]) >= {"python", "numpy", "platform", "cpus"}

    def test_version_advances_past_baseline(self):
        baseline = records.build_record(
            "w", {"a": 1.0}, {}, timestamp="T", smoke=True, rev="abc"
        )
        record = records.build_record(
            "w",
            {"a": 1.5, "b": 2.0},
            {"a": MetricSpec("lower", threshold_pct=10.0)},
            timestamp="T2",
            smoke=True,
            baseline=baseline,
            rev="def",
        )
        assert record["version"] == 2
        assert record["baseline"]["version"] == 1
        assert record["baseline"]["regressions"] == ["a"]
        assert "b" not in record["baseline"]["deltas"]  # new metric

    def test_legacy_baseline_flattens_numeric_leaves(self):
        legacy = {
            "workers": 4,
            "prepare": {"serial_s": 1.0, "speedup": 2.0},
            "gate_enforced": True,  # bool: dropped
            "note": "text",  # string: dropped
        }
        flat = records.baseline_metrics(legacy)
        assert flat == {
            "workers": 4.0,
            "prepare.serial_s": 1.0,
            "prepare.speedup": 2.0,
        }

    def test_new_format_baseline_uses_metrics_block(self):
        record = records.build_record(
            "w", {"a": 1.0}, {}, timestamp="T", smoke=True, rev="abc"
        )
        assert records.baseline_metrics(record) == {"a": 1.0}

    def test_legacy_baseline_identity_is_not_null(self):
        """Regression: a pre-runner baseline has no version/git_rev/smoke
        fields; the new record must report a concrete identity instead of
        ``null``s."""
        legacy = {"workers": 4, "prepare": {"serial_s": 1.0}}
        identity = records.baseline_identity(legacy)
        assert identity == {"version": 0, "git_rev": "pre-runner", "smoke": None}
        record = records.build_record(
            "w",
            {"workers": 4.0},
            {"workers": MetricSpec("fact", threshold_pct=None)},
            timestamp="T",
            smoke=True,
            baseline=legacy,
            rev="abc",
        )
        assert record["version"] == 1  # legacy counts as v0
        assert record["baseline"]["version"] == 0
        assert record["baseline"]["git_rev"] == "pre-runner"
        report = records.render_report(record)
        assert "vs baseline v0 (rev pre-runner)" in report

    def test_schema_baseline_identity_passes_through(self):
        baseline = records.build_record(
            "w", {"a": 1.0}, {}, timestamp="T", smoke=True, rev="abc"
        )
        identity = records.baseline_identity(baseline)
        assert identity == {"version": 1, "git_rev": "abc", "smoke": True}

    def test_render_report_labels_fact_metrics(self):
        baseline = records.build_record(
            "w",
            {"workers": 4.0},
            {"workers": MetricSpec("fact", threshold_pct=None)},
            timestamp="T",
            smoke=True,
            rev="abc",
        )
        record = records.build_record(
            "w",
            {"workers": 2.0},
            {"workers": MetricSpec("fact", threshold_pct=None)},
            timestamp="T2",
            smoke=True,
            baseline=baseline,
            rev="def",
        )
        report = records.render_report(record)
        assert "[environment fact]" in report
        assert "REGRESSION" not in report

    def test_write_and_load_round_trip(self, tmp_path):
        record = records.build_record(
            "w", {"a": 1.0}, {}, timestamp="T", smoke=False, rev="abc"
        )
        path = records.write_record(record, str(tmp_path / "r" / "BENCH_w.json"))
        assert records.load_baseline(path) == record

    def test_load_baseline_tolerates_missing_and_garbage(self, tmp_path):
        assert records.load_baseline(str(tmp_path / "nope.json")) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert records.load_baseline(str(bad)) is None

    def test_render_report_marks_regressions(self):
        baseline = records.build_record(
            "w", {"a": 1.0}, {}, timestamp="T", smoke=True, rev="abc"
        )
        record = records.build_record(
            "w",
            {"a": 2.0},
            {"a": MetricSpec("lower", threshold_pct=10.0)},
            timestamp="T2",
            smoke=True,
            baseline=baseline,
            rev="def",
        )
        report = records.render_report(record)
        assert "REGRESSION" in report
        assert "regressions: a" in report


# ---------------------------------------------------------------------------
# Runner + CLI (stub workload, no real benchmarks in tier-1)
# ---------------------------------------------------------------------------
STUB_METRICS = {"step_s": 0.1, "steps_per_s": 10.0}


@pytest.fixture
def stub_workload(monkeypatch):
    """Install a fake ``stub`` workload whose metrics tests can mutate."""
    module = types.ModuleType("repro.benchmarks._stub_workload")
    module.SPECS = {
        "step_s": MetricSpec("lower", threshold_pct=10.0),
        "steps_per_s": MetricSpec("higher", threshold_pct=10.0),
    }
    state = {"metrics": dict(STUB_METRICS), "extras": None}

    def run(smoke):
        info = {"smoke": smoke}
        if state["extras"] is not None:
            return dict(state["metrics"]), info, state["extras"]
        return dict(state["metrics"]), info

    module.run = run
    sys.modules[module.__name__] = module
    monkeypatch.setitem(WORKLOADS, "stub", module.__name__)
    try:
        yield state
    finally:
        sys.modules.pop(module.__name__, None)


class TestRunner:
    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            run_workload("nope", timestamp="T")

    def test_first_run_writes_v1_record(self, stub_workload, tmp_path):
        record, regressions = run_workload(
            "stub", timestamp="T", smoke=True, results_dir=str(tmp_path)
        )
        assert record["version"] == 1
        assert regressions == []
        on_disk = json.loads(
            (tmp_path / "BENCH_stub.json").read_text(encoding="utf-8")
        )
        assert on_disk["metrics"] == STUB_METRICS

    def test_second_run_versions_against_committed(self, stub_workload, tmp_path):
        run_workload("stub", timestamp="T", results_dir=str(tmp_path))
        record, regressions = run_workload(
            "stub", timestamp="T2", results_dir=str(tmp_path)
        )
        assert record["version"] == 2
        assert regressions == []
        assert record["baseline"]["deltas"]["step_s"]["delta_pct"] == 0.0

    def test_regression_detected_and_reported(self, stub_workload, tmp_path):
        run_workload("stub", timestamp="T", results_dir=str(tmp_path))
        stub_workload["metrics"] = {"step_s": 0.2, "steps_per_s": 5.0}
        record, regressions = run_workload(
            "stub", timestamp="T2", results_dir=str(tmp_path)
        )
        assert regressions == ["step_s", "steps_per_s"]

    def test_no_write_leaves_baseline_untouched(self, stub_workload, tmp_path):
        run_workload("stub", timestamp="T", results_dir=str(tmp_path))
        before = (tmp_path / "BENCH_stub.json").read_text(encoding="utf-8")
        run_workload("stub", timestamp="T2", results_dir=str(tmp_path), write=False)
        assert (tmp_path / "BENCH_stub.json").read_text(encoding="utf-8") == before

    def test_extras_archived_with_stamps(self, stub_workload, tmp_path):
        stub_workload["extras"] = {"BENCH_stub_load.json": {"qps": 5.0}}
        run_workload("stub", timestamp="T", results_dir=str(tmp_path))
        extra = json.loads(
            (tmp_path / "BENCH_stub_load.json").read_text(encoding="utf-8")
        )
        assert extra["qps"] == 5.0
        assert extra["timestamp"] == "T"
        assert extra["git_rev"]

    def test_record_path_defaults_to_repo_results_dir(self):
        assert record_path("serving").endswith("benchmarks/results/BENCH_serving.json")


class TestCli:
    def test_run_exits_zero_without_regressions(self, stub_workload, tmp_path, capsys):
        argv = ["run", "--workload", "stub", "--results-dir", str(tmp_path)]
        assert bench_main(argv + ["--smoke"]) == 0
        assert "establishes v1" in capsys.readouterr().out

    def test_check_exits_nonzero_on_regression(self, stub_workload, tmp_path, capsys):
        argv = ["run", "--workload", "stub", "--results-dir", str(tmp_path)]
        assert bench_main(argv) == 0
        stub_workload["metrics"] = {"step_s": 0.5, "steps_per_s": 1.0}
        assert bench_main(argv + ["--check"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_check_passes_when_within_thresholds(self, stub_workload, tmp_path):
        argv = ["run", "--workload", "stub", "--results-dir", str(tmp_path)]
        assert bench_main(argv) == 0
        assert bench_main(argv + ["--check"]) == 0

    def test_list_shows_baseline_versions(self, stub_workload, tmp_path, capsys):
        bench_main(["run", "--workload", "stub", "--results-dir", str(tmp_path)])
        capsys.readouterr()
        assert bench_main(["list", "--results-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "stub" in out and "v1" in out
        assert "no baseline" in out  # the real workloads have none here

    def test_compare_rerenders_committed_record(self, stub_workload, tmp_path, capsys):
        bench_main(["run", "--workload", "stub", "--results-dir", str(tmp_path)])
        capsys.readouterr()
        assert (
            bench_main(
                ["compare", "--workload", "stub", "--results-dir", str(tmp_path)]
            )
            == 0
        )
        assert "workload stub v1" in capsys.readouterr().out

    def test_compare_missing_record_fails(self, stub_workload, tmp_path, capsys):
        assert (
            bench_main(
                ["compare", "--workload", "stub", "--results-dir", str(tmp_path)]
            )
            == 1
        )


# ---------------------------------------------------------------------------
# Timing helpers
# ---------------------------------------------------------------------------
class TestTiming:
    def test_timed_returns_elapsed_and_result(self):
        elapsed, result = timed(lambda: 42)
        assert result == 42
        assert elapsed >= 0.0

    def test_best_of_takes_the_minimum(self):
        calls = []

        def fn():
            calls.append(1)

        best = best_of(3, fn)
        assert len(calls) == 3
        assert best >= 0.0
        with pytest.raises(ValueError):
            best_of(0, fn)

    def test_best_of_interleaved_returns_one_best_per_fn(self):
        order = []
        fns = [lambda i=i: order.append(i) for i in range(3)]
        best = best_of_interleaved(2, *fns)
        assert len(best) == 3
        assert order == [0, 1, 2, 0, 1, 2]  # interleaved, not grouped


# ---------------------------------------------------------------------------
# Load-generator result math (no live server in tier-1)
# ---------------------------------------------------------------------------
class TestLoadResults:
    def test_level_result_as_dict(self):
        level = LoadLevelResult(
            clients=2,
            requests=50,
            errors=0,
            elapsed_s=0.5,
            qps=100.0,
            p50_ms=2.0,
            p99_ms=9.0,
        )
        data = level.as_dict()
        assert data["clients"] == 2
        assert data["qps"] == 100.0

    def test_sweep_result_reports_saturation_level(self):
        levels = [
            LoadLevelResult(1, 25, 0, 1.0, 25.0, 2.0, 5.0),
            LoadLevelResult(2, 50, 0, 1.0, 50.0, 3.0, 8.0),
            LoadLevelResult(4, 100, 0, 2.5, 40.0, 6.0, 20.0),
        ]
        sweep = LoadSweepResult(
            levels=tuple(levels), saturation_qps=50.0, saturation_clients=2
        )
        data = sweep.as_dict()
        assert data["saturation_qps"] == 50.0
        assert data["saturation_clients"] == 2
        assert [lvl["clients"] for lvl in data["levels"]] == [1, 2, 4]
